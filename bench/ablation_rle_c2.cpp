// Ablation: RLE's budget split c2 (Formula (59) leaves it free). Small c2
// reserves budget for future picks (larger clear-out radius c1); large c2
// tolerates more accumulated interference. The bench sweeps c2 and reports
// delivered throughput and feasibility-margin statistics.
#include <cstdio>
#include <vector>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/constants.hpp"
#include "sched/rle.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_rle_c2", "RLE budget-split (c2) ablation");
  auto& num_seeds = cli.AddInt("seeds", 10, "topologies per c2 value");
  auto& num_links = cli.AddInt("links", 300, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"c2", "c1", "links_scheduled", "expected_throughput",
                        "always_feasible", "worst_margin_pct"});
  for (double c2 : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    sched::RleOptions options;
    options.c2 = c2;
    const sched::RleScheduler rle(options);
    mathx::RunningStats scheduled;
    mathx::RunningStats throughput;
    bool always_feasible = true;
    double worst_margin = 0.0;  // max observed Σf / γ_ε over all links
    for (long long seed = 1; seed <= num_seeds; ++seed) {
      rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
      const net::LinkSet links = net::MakeUniformScenario(
          static_cast<std::size_t>(num_links), {}, gen);
      const auto result = rle.Schedule(links, params);
      const channel::InterferenceCalculator calc(links, params);
      always_feasible &=
          channel::ScheduleIsFeasible(calc, result.schedule);
      for (const auto& entry :
           channel::AnalyzeSchedule(calc, result.schedule)) {
        worst_margin = std::max(
            worst_margin, entry.sum_factor / params.GammaEpsilon());
      }
      scheduled.Add(static_cast<double>(result.schedule.size()));
      throughput.Add(sim::ComputeExpectedMetrics(links, params,
                                                 result.schedule)
                         .expected_throughput);
    }
    util::CsvRowBuilder(table)
        .Add(util::FormatDouble(c2, 2))
        .Add(util::FormatDouble(sched::RleC1(params, c2), 2))
        .Add(util::FormatDouble(scheduled.Mean(), 2))
        .Add(util::FormatDouble(throughput.Mean(), 3))
        .Add(std::string(always_feasible ? "yes" : "no"))
        .Add(util::FormatDouble(100.0 * worst_margin, 1))
        .Commit();
  }
  std::printf("# Ablation: RLE c2 sweep (N=%lld, alpha=3, eps=0.01)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
