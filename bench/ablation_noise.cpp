// Ablation: ambient noise N₀ (extension — the paper argues N₀ is
// negligible and sets it to 0). The sweep expresses noise as a fraction of
// the γ_ε budget of the longest generated link (length 20) and traces how
// scheduled links / delivered throughput decay as noise erodes the budget.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_noise",
                      "ambient noise sweep (extension; paper sets N0=0)");
  auto& num_seeds = cli.AddInt("seeds", 8, "topologies per point");
  auto& num_links = cli.AddInt("links", 300, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  util::CsvTable table({"noise_rel_budget", "algorithm", "links_scheduled",
                        "expected_throughput", "expected_failed"});
  for (double rel : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.5}) {
    channel::ChannelParams params;
    params.alpha = 3.0;
    params.noise_power = rel * params.GammaEpsilon() *
                         params.MeanPower(20.0) / params.gamma_th;
    for (const char* name : {"ldp", "rle", "fading_greedy"}) {
      const auto scheduler = sched::MakeScheduler(name);
      mathx::RunningStats scheduled;
      mathx::RunningStats throughput;
      mathx::RunningStats failed;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(
            static_cast<std::size_t>(num_links), {}, gen);
        const auto result = scheduler->Schedule(links, params);
        const auto metrics =
            sim::ComputeExpectedMetrics(links, params, result.schedule);
        scheduled.Add(static_cast<double>(result.schedule.size()));
        throughput.Add(metrics.expected_throughput);
        failed.Add(metrics.expected_failed);
      }
      util::CsvRowBuilder(table)
          .Add(util::FormatDouble(rel, 2))
          .Add(std::string(name))
          .Add(util::FormatDouble(scheduled.Mean(), 2))
          .Add(util::FormatDouble(throughput.Mean(), 3))
          .Add(util::FormatDouble(failed.Mean(), 4))
          .Commit();
    }
    std::fprintf(stderr, "[noise] rel=%g done\n", rel);
  }
  std::printf("# Ablation: ambient noise (fraction of a length-20 link's "
              "gamma_eps budget; N=%lld, alpha=3, eps=0.01)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
