// DLS protocol-cost bench (extension): convergence rounds, local-estimate
// work, and resulting throughput of the decentralized scheduler as the
// network grows, with slotted ALOHA as the zero-coordination floor and
// centralized RLE as the coordinated reference.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/aloha.hpp"
#include "sched/dls.hpp"
#include "sched/rle.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("dls_convergence",
                      "decentralized scheduling cost and quality vs N");
  auto& num_seeds = cli.AddInt("seeds", 5, "topologies per point");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"num_links", "dls_rounds", "dls_estimates_per_link",
                        "dls_throughput", "aloha_throughput",
                        "rle_throughput", "dls_expected_failed",
                        "aloha_expected_failed"});
  const sched::DlsScheduler dls;
  const sched::AlohaScheduler aloha;
  const sched::RleScheduler rle;
  for (std::size_t n : {100, 200, 400, 800}) {
    mathx::RunningStats rounds;
    mathx::RunningStats estimates;
    mathx::RunningStats dls_tput;
    mathx::RunningStats aloha_tput;
    mathx::RunningStats rle_tput;
    mathx::RunningStats dls_failed;
    mathx::RunningStats aloha_failed;
    for (long long seed = 1; seed <= num_seeds; ++seed) {
      rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
      const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);
      sched::DlsStats stats;
      const auto dls_result = dls.ScheduleWithStats(links, params, stats);
      rounds.Add(static_cast<double>(stats.rounds_used));
      estimates.Add(static_cast<double>(stats.estimates) /
                    static_cast<double>(n));
      const auto dls_metrics =
          sim::ComputeExpectedMetrics(links, params, dls_result.schedule);
      dls_tput.Add(dls_metrics.expected_throughput);
      dls_failed.Add(dls_metrics.expected_failed);
      const auto aloha_result = aloha.Schedule(links, params);
      const auto aloha_metrics =
          sim::ComputeExpectedMetrics(links, params, aloha_result.schedule);
      aloha_tput.Add(aloha_metrics.expected_throughput);
      aloha_failed.Add(aloha_metrics.expected_failed);
      rle_tput.Add(sim::ComputeExpectedMetrics(
                       links, params, rle.Schedule(links, params).schedule)
                       .expected_throughput);
    }
    util::CsvRowBuilder(table)
        .Add(n)
        .Add(util::FormatDouble(rounds.Mean(), 1))
        .Add(util::FormatDouble(estimates.Mean(), 1))
        .Add(util::FormatDouble(dls_tput.Mean(), 2))
        .Add(util::FormatDouble(aloha_tput.Mean(), 2))
        .Add(util::FormatDouble(rle_tput.Mean(), 2))
        .Add(util::FormatDouble(dls_failed.Mean(), 3))
        .Add(util::FormatDouble(aloha_failed.Mean(), 3))
        .Commit();
    std::fprintf(stderr, "[dls] n=%zu done\n", n);
  }
  std::printf("# Decentralized scheduling: DLS protocol cost vs ALOHA floor "
              "and RLE reference (alpha=3, eps=0.01)\n");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
