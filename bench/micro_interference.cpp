// Microbenchmark: batched interference-matrix construction and factor
// queries, across instance sizes. Emits BENCH_interference.json with the
// serial-baseline vs tiled vs precision-ladder (SIMD) build timings the
// engine's speedup claims rest on, random vs row-blocked query costs (the
// cache cliff once the matrix outgrows the LLC), and a ULP differential
// check: tiled/tables vs the reference calculator, and both ladder builds
// (dispatched tier and forced scalar) vs the exact matrix build. With
// --check the exit code reflects ONLY those differential checks — timings
// are reported but never gate anything. Run with FADESCHED_NO_SIMD=1 to
// measure the forced-scalar dispatch path end to end.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "channel/interference.hpp"
#include "channel/simd_dispatch.hpp"
#include "mathx/ulp.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/greedy.hpp"
#include "sched/rle.hpp"
#include "util/atomic_io.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fadesched;

// The ULP budget for the fast kernel vs the reference expression; a real
// formula divergence shows up orders of magnitude above this.
constexpr std::uint64_t kUlpTolerance = 16;

net::LinkSet MakeInstance(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams params;
  // Grow the region with sqrt(N) to hold density constant across sizes.
  params.region_size = 500.0 * std::sqrt(static_cast<double>(n) / 300.0);
  return net::MakeUniformScenario(n, params, gen);
}

double BestOf(int reps, const std::function<void()>& work) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    work();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

struct SizeReport {
  std::size_t n = 0;
  double serial_build_ms = 0.0;
  double tiled_build_ms = 0.0;
  double tiled_pool_build_ms = 0.0;
  double fast_build_ms = 0.0;         // precision ladder, dispatched tier
  double fast_scalar_build_ms = 0.0;  // precision ladder, forced scalar
  std::size_t working_set_bytes = 0;  // n·n·8: the matrix the queries walk
  double calculator_ns_per_pair = 0.0;
  double tables_ns_per_pair = 0.0;
  double matrix_ns_per_pair = 0.0;
  // Same query pairs sorted by victim row: row-major locality instead of
  // random walks over the n²·8-byte working set. The random-vs-blocked
  // gap is the cache cliff once the matrix outgrows L2/L3 (N ≥ 4000).
  double matrix_blocked_ns_per_pair = 0.0;
  double rle_calculator_ms = 0.0;
  double rle_tables_ms = 0.0;
  double greedy_calculator_ms = 0.0;
  double greedy_tables_ms = 0.0;
  std::uint64_t max_ulp = 0;
  // Fast (ladder) builds vs the exact matrix build — the ladder's own
  // accuracy contract, measured at the dispatched tier and forced scalar.
  std::uint64_t max_ulp_fast_simd = 0;
  std::uint64_t max_ulp_fast_scalar = 0;
  std::size_t entries_checked = 0;
  channel::LadderStats ladder;  // stats of the dispatched-tier fast build
};

std::string Json(const std::vector<SizeReport>& reports, std::uint64_t seed,
                 long long reps, unsigned threads, bool check_passed) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n";
  out << "  \"benchmark\": \"micro_interference\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"ulp_tolerance\": " << kUlpTolerance << ",\n";
  out << "  \"simd_level\": \""
      << channel::SimdLevelName(channel::ActiveSimdLevel()) << "\",\n";
  out << "  \"differential_check_passed\": "
      << (check_passed ? "true" : "false") << ",\n";
  out << "  \"sizes\": [\n";
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const SizeReport& r = reports[k];
    out << "    {\n";
    out << "      \"n\": " << r.n << ",\n";
    out << "      \"build\": {\n";
    out << "        \"serial_ms\": " << r.serial_build_ms << ",\n";
    out << "        \"tiled_ms\": " << r.tiled_build_ms << ",\n";
    out << "        \"tiled_pool_ms\": " << r.tiled_pool_build_ms << ",\n";
    out << "        \"fast_ms\": " << r.fast_build_ms << ",\n";
    out << "        \"fast_scalar_ms\": " << r.fast_scalar_build_ms << ",\n";
    out << "        \"speedup_tiled_vs_serial\": "
        << (r.tiled_build_ms > 0.0 ? r.serial_build_ms / r.tiled_build_ms
                                   : 0.0)
        << ",\n";
    out << "        \"speedup_fast_vs_tiled\": "
        << (r.fast_build_ms > 0.0 ? r.tiled_build_ms / r.fast_build_ms : 0.0)
        << "\n";
    out << "      },\n";
    out << "      \"ladder\": {\n";
    out << "        \"level\": \"" << channel::SimdLevelName(r.ladder.level)
        << "\",\n";
    out << "        \"entries\": " << r.ladder.entries << ",\n";
    out << "        \"promoted_domain\": " << r.ladder.promoted_domain
        << ",\n";
    out << "        \"promoted_verify\": " << r.ladder.promoted_verify
        << ",\n";
    out << "        \"promoted_rows\": " << r.ladder.promoted_rows << ",\n";
    out << "        \"verified_entries\": " << r.ladder.verified_entries
        << ",\n";
    out << "        \"verified_rows\": " << r.ladder.verified_rows << "\n";
    out << "      },\n";
    out << "      \"query\": {\n";
    out << "        \"working_set_bytes\": " << r.working_set_bytes << ",\n";
    out << "        \"calculator_ns_per_pair\": " << r.calculator_ns_per_pair
        << ",\n";
    out << "        \"tables_ns_per_pair\": " << r.tables_ns_per_pair
        << ",\n";
    out << "        \"matrix_ns_per_pair\": " << r.matrix_ns_per_pair
        << ",\n";
    out << "        \"matrix_blocked_ns_per_pair\": "
        << r.matrix_blocked_ns_per_pair << "\n";
    out << "      },\n";
    out << "      \"schedule\": {\n";
    out << "        \"rle_calculator_ms\": " << r.rle_calculator_ms << ",\n";
    out << "        \"rle_tables_ms\": " << r.rle_tables_ms << ",\n";
    out << "        \"greedy_calculator_ms\": " << r.greedy_calculator_ms
        << ",\n";
    out << "        \"greedy_tables_ms\": " << r.greedy_tables_ms << "\n";
    out << "      },\n";
    out << "      \"check\": {\n";
    out << "        \"max_ulp\": " << r.max_ulp << ",\n";
    out << "        \"max_ulp_fast_simd\": " << r.max_ulp_fast_simd << ",\n";
    out << "        \"max_ulp_fast_scalar\": " << r.max_ulp_fast_scalar
        << ",\n";
    out << "        \"entries_checked\": " << r.entries_checked << "\n";
    out << "      }\n";
    out << "    }" << (k + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("micro_interference",
                      "Interference-matrix build/query microbenchmark; "
                      "writes BENCH_interference.json");
  std::string& sizes_flag =
      cli.AddString("sizes", "100,500,2000,8000", "comma-separated N values");
  long long& reps = cli.AddInt("reps", 3, "repetitions (best-of) per timing");
  long long& threads =
      cli.AddInt("threads", 0, "pool threads for the parallel build "
                               "(0 = hardware concurrency)");
  long long& seed = cli.AddInt("seed", 1234, "scenario seed");
  std::string& out_path =
      cli.AddString("out", "BENCH_interference.json", "output JSON path");
  bool& check_only = cli.AddBool(
      "check", false,
      "exit nonzero iff the differential ULP check fails (never on timing)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  util::ThreadPool pool(static_cast<unsigned>(threads));
  channel::ChannelParams params;
  params.alpha = 3.0;

  std::vector<SizeReport> reports;
  bool check_passed = true;
  for (const std::string& token : util::Split(sizes_flag, ',')) {
    const std::size_t n = static_cast<std::size_t>(std::stoull(token));
    const net::LinkSet links =
        MakeInstance(n, static_cast<std::uint64_t>(seed));
    SizeReport report;
    report.n = n;

    report.serial_build_ms =
        1e3 * BestOf(static_cast<int>(reps), [&] {
          const channel::InterferenceMatrix matrix(links, params);
        });
    report.tiled_build_ms =
        1e3 * BestOf(static_cast<int>(reps), [&] {
          const channel::InterferenceMatrix matrix =
              channel::BuildInterferenceMatrixTiled(links, params, {});
        });
    report.tiled_pool_build_ms =
        1e3 * BestOf(static_cast<int>(reps), [&] {
          channel::TiledBuildOptions options;
          options.pool = &pool;
          const channel::InterferenceMatrix matrix =
              channel::BuildInterferenceMatrixTiled(links, params, options);
        });

    // Precision-ladder (fast SIMD) engine builds: dispatched tier and
    // forced scalar. Timed serially like tiled_ms so fast/tiled compare
    // one thread against one thread; the ladder's sampled verification
    // work is part of the timed build, as in production.
    channel::EngineOptions fast_options;
    fast_options.backend = channel::FactorBackend::kMatrix;
    fast_options.ladder.enabled = true;
    channel::EngineOptions fast_scalar_options = fast_options;
    fast_scalar_options.ladder.force_level = channel::SimdLevel::kScalar;
    report.fast_build_ms = 1e3 * BestOf(static_cast<int>(reps), [&] {
      const channel::InterferenceEngine engine(links, params, fast_options);
    });
    report.fast_scalar_build_ms = 1e3 * BestOf(static_cast<int>(reps), [&] {
      const channel::InterferenceEngine engine(links, params,
                                               fast_scalar_options);
    });
    const channel::InterferenceEngine fast(links, params, fast_options);
    const channel::InterferenceEngine fast_scalar(links, params,
                                                  fast_scalar_options);
    report.ladder = fast.Ladder();
    report.working_set_bytes = n * n * sizeof(double);

    // Query timings: random pairs through each backend. The sink defeats
    // dead-code elimination.
    const channel::InterferenceCalculator calc(links, params);
    const channel::InterferenceEngine tables(links, params, {});
    channel::EngineOptions matrix_options;
    matrix_options.backend = channel::FactorBackend::kMatrix;
    const channel::InterferenceEngine matrix(links, params, matrix_options);
    const std::size_t pairs = std::min<std::size_t>(n * n, 1u << 20);
    std::vector<std::uint32_t> idx(2 * pairs);
    rng::Xoshiro256 pair_gen(static_cast<std::uint64_t>(seed) ^ n);
    for (auto& v : idx) {
      v = static_cast<std::uint32_t>(pair_gen.Next() % n);
    }
    double sink = 0.0;
    const auto time_queries = [&](const auto& factor_fn) {
      return 1e9 *
             BestOf(static_cast<int>(reps),
                    [&] {
                      for (std::size_t k = 0; k < pairs; ++k) {
                        sink += factor_fn(idx[2 * k], idx[2 * k + 1]);
                      }
                    }) /
             static_cast<double>(pairs);
    };
    report.calculator_ns_per_pair = time_queries(
        [&](std::size_t i, std::size_t j) { return calc.Factor(i, j); });
    report.tables_ns_per_pair = time_queries(
        [&](std::size_t i, std::size_t j) { return tables.Factor(i, j); });
    report.matrix_ns_per_pair = time_queries(
        [&](std::size_t i, std::size_t j) { return matrix.Factor(i, j); });

    // The same pairs sorted by victim row, i.e. the order a row-blocked
    // consumer (tiled scheduler sweep) touches the matrix. Random order
    // takes a cache miss per query once n²·8 bytes outgrow the LLC
    // (N ≥ 4000 here); sorted order streams whole rows. Reporting both
    // makes the cliff a measured number instead of a surprise.
    {
      std::vector<std::uint32_t> blocked_idx = idx;
      std::vector<std::uint32_t> order(pairs);
      for (std::size_t k = 0; k < pairs; ++k) {
        order[k] = static_cast<std::uint32_t>(k);
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  // Victim-major: Factor(i, j) reads row j of the matrix.
                  if (idx[2 * a + 1] != idx[2 * b + 1]) {
                    return idx[2 * a + 1] < idx[2 * b + 1];
                  }
                  return idx[2 * a] < idx[2 * b];
                });
      for (std::size_t k = 0; k < pairs; ++k) {
        blocked_idx[2 * k] = idx[2 * order[k]];
        blocked_idx[2 * k + 1] = idx[2 * order[k] + 1];
      }
      report.matrix_blocked_ns_per_pair =
          1e9 *
          BestOf(static_cast<int>(reps),
                 [&] {
                   for (std::size_t k = 0; k < pairs; ++k) {
                     sink += matrix.Factor(blocked_idx[2 * k],
                                           blocked_idx[2 * k + 1]);
                   }
                 }) /
          static_cast<double>(pairs);
    }
    if (sink == 0.12345) std::cerr << "";  // keep `sink` observable

    // End-to-end schedule timings of the two engine-heavy schedulers on
    // the reference path vs the fast tables (micro_schedulers has the
    // full scheduler × backend grid).
    const auto time_schedule = [&](const auto& make_scheduler) {
      return 1e3 * BestOf(static_cast<int>(reps), [&] {
        sink += static_cast<double>(
            make_scheduler()->Schedule(links, params).schedule.size());
      });
    };
    channel::EngineOptions calc_backend;
    calc_backend.backend = channel::FactorBackend::kCalculator;
    report.rle_calculator_ms = time_schedule([&] {
      sched::RleOptions options;
      options.interference = calc_backend;
      return std::make_unique<sched::RleScheduler>(options);
    });
    report.rle_tables_ms = time_schedule(
        [&] { return std::make_unique<sched::RleScheduler>(); });
    report.greedy_calculator_ms = time_schedule([&] {
      sched::FadingGreedyOptions options;
      options.interference = calc_backend;
      return std::make_unique<sched::FadingGreedyScheduler>(options);
    });
    report.greedy_tables_ms = time_schedule(
        [&] { return std::make_unique<sched::FadingGreedyScheduler>(); });

    // Differential check: tiled matrix and fast tables vs the reference
    // calculator, plus both precision-ladder builds vs the exact matrix
    // build (the ladder's own ≤ band contract), over sampled entries
    // (full coverage for small N). Bit-equality short-circuits before
    // UlpDistance so promoted non-finite entries compare as exact.
    const auto ulp_or_equal = [](double got, double want) -> std::uint64_t {
      if (std::memcmp(&got, &want, sizeof(double)) == 0) return 0;
      return mathx::UlpDistance(got, want);
    };
    const channel::InterferenceMatrix tiled =
        channel::BuildInterferenceMatrixTiled(links, params, {});
    const std::size_t samples = std::min<std::size_t>(n * n, 1u << 18);
    rng::Xoshiro256 sample_gen(static_cast<std::uint64_t>(seed) + n);
    for (std::size_t k = 0; k < samples; ++k) {
      const std::size_t i = sample_gen.Next() % n;
      const std::size_t j = sample_gen.Next() % n;
      const double want = calc.Factor(i, j);
      const std::uint64_t ulp_matrix =
          mathx::UlpDistance(tiled.Factor(i, j), want);
      const std::uint64_t ulp_tables =
          mathx::UlpDistance(tables.Factor(i, j), want);
      report.max_ulp = std::max({report.max_ulp, ulp_matrix, ulp_tables});
      const double exact = matrix.Factor(i, j);
      report.max_ulp_fast_simd = std::max(
          report.max_ulp_fast_simd, ulp_or_equal(fast.Factor(i, j), exact));
      report.max_ulp_fast_scalar =
          std::max(report.max_ulp_fast_scalar,
                   ulp_or_equal(fast_scalar.Factor(i, j), exact));
    }
    report.entries_checked = samples;
    const std::uint64_t worst = std::max(
        {report.max_ulp, report.max_ulp_fast_simd, report.max_ulp_fast_scalar});
    if (worst > kUlpTolerance) {
      check_passed = false;
      std::cerr << "DIFFERENTIAL MISMATCH at n=" << n
                << ": max ULP distance " << worst << " > "
                << kUlpTolerance << "\n";
    }
    reports.push_back(report);
    std::cerr << "n=" << n << " serial=" << report.serial_build_ms
              << "ms tiled=" << report.tiled_build_ms
              << "ms pool=" << report.tiled_pool_build_ms
              << "ms fast=" << report.fast_build_ms
              << "ms fast_scalar=" << report.fast_scalar_build_ms
              << "ms max_ulp=" << report.max_ulp
              << " fast_ulp=" << report.max_ulp_fast_simd << "/"
              << report.max_ulp_fast_scalar << "\n";
  }

  util::AtomicWriteFile(
      out_path, Json(reports, static_cast<std::uint64_t>(seed), reps,
                     pool.NumThreads(), check_passed));
  std::cout << "wrote " << out_path << "\n";
  if (check_only && !check_passed) return 1;
  return 0;
}
