// Stability-frontier bench: the empirically measured λ* (largest stable
// per-link arrival rate) per scheduler × α × fading model, plus delivery
// delay percentiles as load approaches each frontier, plus the
// warm-subset vs cold-rebuild per-slot scheduling cost at N = 2000.
// Emits BENCH_stability.json.
//
// Both measurement grids run on the crash-safe RunMetricSweep harness
// (checkpoint/resume via --checkpoint/--resume, atomic --out-csv, exit
// code 3 on SIGINT/SIGTERM), and the JSON is assembled from the sweep
// tables so a resumed run produces the same file as an uninterrupted one.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "channel/params.hpp"
#include "dynamics/slotted_sim.hpp"
#include "dynamics/stability.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

namespace {

using namespace fadesched;

std::vector<double> ParseDoubleList(const std::string& text,
                                    const char* flag) {
  std::vector<double> values;
  for (const std::string& token : util::Split(text, ',')) {
    const auto value = util::ParseDouble(util::Trim(token));
    FS_CHECK_MSG(value.has_value(), std::string("malformed ") + flag +
                                        " value: '" + token + "'");
    values.push_back(*value);
  }
  FS_CHECK_MSG(!values.empty(), std::string(flag) + " must be non-empty");
  return values;
}

std::vector<std::string> ParseNameList(const std::string& text,
                                       const char* flag) {
  std::vector<std::string> names;
  for (const std::string& token : util::Split(text, ',')) {
    const std::string name(util::Trim(token));
    if (!name.empty()) names.push_back(name);
  }
  FS_CHECK_MSG(!names.empty(), std::string(flag) + " must be non-empty");
  return names;
}

sim::FadingOptions FadingByName(const std::string& name) {
  sim::FadingOptions fading;
  if (name == "rayleigh") {
    fading.model = sim::FadingModel::kRayleigh;
  } else if (name == "nakagami") {
    fading.model = sim::FadingModel::kNakagami;
    fading.nakagami_m = 2.0;
  } else if (name == "shadowed") {
    fading.model = sim::FadingModel::kShadowedRayleigh;
  } else {
    FS_CHECK_MSG(false, "unknown fading model '" + name +
                            "' (rayleigh | nakagami | shadowed)");
  }
  return fading;
}

std::string Num(double value) {
  std::ostringstream os;
  os.precision(10);
  os << value;
  return os.str();
}

/// Warm vs cold per-slot scheduling cost on a large saturated instance —
/// the acceptance measurement for the subset-view fast path.
struct SpeedupReport {
  std::size_t links = 0;
  std::size_t slots = 0;
  std::string scheduler;
  double warm_s_per_slot = 0.0;
  double cold_s_per_slot = 0.0;
  double speedup = 0.0;
  bool schedules_identical = false;
};

SpeedupReport MeasureWarmVsCold(std::size_t num_links, std::size_t num_slots,
                                const std::string& scheduler,
                                std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  const net::LinkSet links =
      net::MakeUniformScenario(num_links, {}, gen);
  channel::ChannelParams params;
  params.alpha = 3.0;

  dynamics::DynamicsOptions options;
  options.num_slots = num_slots;
  options.warmup_slots = 0;
  options.seed = seed;
  // Saturate every queue so the scheduler sees the full N-link instance
  // each slot — the regime where cold rebuilds pay the O(N²) factor bill.
  options.arrivals.family = dynamics::ArrivalFamily::kBernoulli;
  options.arrivals.rate = 1.0;
  options.backend = channel::FactorBackend::kMatrix;

  SpeedupReport report;
  report.links = num_links;
  report.slots = num_slots;
  report.scheduler = scheduler;

  std::vector<std::string> traces[2];
  for (int mode = 0; mode < 2; ++mode) {
    dynamics::DynamicsOptions run = options;
    run.engine_mode = mode == 0 ? dynamics::EngineMode::kWarmSubset
                                : dynamics::EngineMode::kColdRebuild;
    run.slot_observer = [&traces, mode](const dynamics::SlotRecord& record) {
      traces[mode].push_back(dynamics::FormatSlotRecord(record));
    };
    const dynamics::DynamicsResult result =
        dynamics::RunSlottedSimulation(links, params, scheduler, run);
    (mode == 0 ? report.warm_s_per_slot : report.cold_s_per_slot) =
        result.ScheduleSecondsPerSlot();
  }
  report.speedup = report.warm_s_per_slot > 0.0
                       ? report.cold_s_per_slot / report.warm_s_per_slot
                       : 0.0;
  report.schedules_identical = traces[0] == traces[1];
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("stability_frontier",
                      "per-scheduler stability frontier (lambda*) and delay "
                      "percentiles; writes BENCH_stability.json");
  auto& num_links = cli.AddInt("links", 120, "links in the universe");
  auto& num_slots = cli.AddInt("slots", 600, "slots per stability probe");
  auto& seed = cli.AddInt("seed", 5, "topology + simulation seed");
  auto& schedulers_text = cli.AddString(
      "schedulers", "ldp,rle,fading_greedy,approx_diversity",
      "comma-separated schedulers");
  auto& alphas_text = cli.AddString("alphas", "2.5,3",
                                    "comma-separated path-loss exponents");
  auto& fadings_text = cli.AddString(
      "fadings", "rayleigh,nakagami",
      "comma-separated fading models (rayleigh | nakagami | shadowed)");
  auto& family_text = cli.AddString(
      "arrivals", "bernoulli", "arrival family for the frontier probes");
  auto& iterations =
      cli.AddInt("iterations", 6, "bisection refinements per frontier");
  auto& lambda_hi =
      cli.AddDouble("lambda-hi", 0.3, "initial upper arrival-rate bracket");
  auto& fractions_text = cli.AddString(
      "load-fractions", "0.5,0.8,0.95",
      "delay percentiles measured at these fractions of each lambda*");
  auto& speedup_links = cli.AddInt(
      "speedup-links", 2000, "instance size for the warm-vs-cold timing");
  auto& speedup_slots =
      cli.AddInt("speedup-slots", 12, "slots for the warm-vs-cold timing");
  auto& speedup_scheduler = cli.AddString(
      "speedup-scheduler", "fading_greedy",
      "scheduler for the warm-vs-cold timing");
  auto& skip_speedup = cli.AddBool(
      "skip-speedup", false, "skip the N=2000 warm-vs-cold measurement");
  auto& checkpoint = cli.AddString(
      "checkpoint", "", "checkpoint file prefix (enables crash-safe resume)");
  auto& resume =
      cli.AddBool("resume", false, "resume from --checkpoint if it exists");
  auto& out_csv = cli.AddString(
      "out-csv", "", "also write the raw sweep tables here (atomic; prefix)");
  auto& out_path =
      cli.AddString("out", "BENCH_stability.json", "output JSON path");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  const auto schedulers = ParseNameList(schedulers_text, "--schedulers");
  const auto alphas = ParseDoubleList(alphas_text, "--alphas");
  const auto fadings = ParseNameList(fadings_text, "--fadings");
  const auto fractions = ParseDoubleList(fractions_text, "--load-fractions");
  dynamics::ArrivalFamily family = dynamics::ArrivalFamily::kBernoulli;
  FS_CHECK_MSG(dynamics::ParseArrivalFamily(family_text, family),
               "unknown --arrivals family '" + family_text + "'");

  // One fixed universe per α (geometry is seed-pure; α only changes the
  // channel), so frontiers are comparable across schedulers.
  rng::Xoshiro256 topo_gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet universe = net::MakeUniformScenario(
      static_cast<std::size_t>(num_links), {}, topo_gen);

  dynamics::DynamicsOptions base;
  base.num_slots = static_cast<std::size_t>(num_slots);
  base.warmup_slots = base.num_slots / 5;
  base.seed = static_cast<std::uint64_t>(seed);
  base.arrivals.family = family;

  dynamics::FrontierOptions frontier_options;
  frontier_options.lambda_hi = lambda_hi;
  frontier_options.iterations = static_cast<std::size_t>(iterations);

  // --- Grid 1: the frontier, on the crash-safe metric sweep. -------------
  sim::MetricSweepSpec frontier_spec;
  frontier_spec.name = "stability_frontier";
  frontier_spec.x_name = "alpha";
  frontier_spec.xs = alphas;
  for (const std::string& scheduler : schedulers) {
    for (const std::string& fading : fadings) {
      frontier_spec.series.push_back(scheduler + "@" + fading);
    }
  }
  frontier_spec.metrics = {"lambda_star", "lambda_lo", "lambda_hi",
                           "saturated", "probes"};
  frontier_spec.num_seeds = 1;
  {
    std::uint64_t h = sim::FingerprintInit();
    h = sim::FingerprintMix64(h, static_cast<std::uint64_t>(num_links));
    h = sim::FingerprintMix64(h, base.num_slots);
    h = sim::FingerprintMix64(h, base.seed);
    h = sim::FingerprintMix64(h, frontier_options.iterations);
    h = sim::FingerprintMixDouble(h, frontier_options.lambda_hi);
    h = sim::FingerprintMixString(h, family_text);
    frontier_spec.config_fingerprint = h;
  }
  const std::size_t num_fadings = fadings.size();
  frontier_spec.run_seed = [&](std::size_t point, std::size_t series,
                               std::size_t /*seed_index*/,
                               const util::Deadline& /*deadline*/) {
    channel::ChannelParams params;
    params.alpha = alphas[point];
    dynamics::DynamicsOptions options = base;
    options.fading = FadingByName(fadings[series % num_fadings]);
    const std::string& scheduler = schedulers[series / num_fadings];
    const dynamics::FrontierResult frontier = dynamics::FindStabilityFrontier(
        universe, params, scheduler, options, frontier_options);
    return std::vector<double>{
        frontier.lambda_star, frontier.lambda_lo, frontier.lambda_hi,
        frontier.saturated ? 1.0 : 0.0,
        static_cast<double>(frontier.probes)};
  };

  sim::MetricSweepOptions frontier_sweep;
  if (!checkpoint.empty()) {
    frontier_sweep.checkpoint_path = checkpoint + ".frontier";
  }
  frontier_sweep.resume = resume;
  if (!out_csv.empty()) frontier_sweep.out_path = out_csv + ".frontier.csv";
  std::fprintf(stderr, "[stability] frontier grid: %zu series x %zu alphas\n",
               frontier_spec.series.size(), frontier_spec.xs.size());
  const sim::MetricSweepResult frontier_result =
      sim::RunMetricSweep(frontier_spec, frontier_sweep);
  if (frontier_result.interrupted) return frontier_result.ExitCode();

  // lambda* per (series, alpha), pulled from the sweep table so resumed
  // runs see identical values.
  const auto frontier_cell = [&](const std::string& series, double alpha,
                                 const std::string& metric) {
    const util::CsvTable& table = frontier_result.table;
    for (std::size_t row = 0; row < table.NumRows(); ++row) {
      if (table.Cell(row, "series") == series &&
          table.CellAsDouble(row, "alpha") == alpha) {
        return table.CellAsDouble(row, metric + "_mean");
      }
    }
    FS_CHECK_MSG(false, "frontier table missing " + series);
    return 0.0;
  };

  // --- Grid 2: delay percentiles vs load fraction of each lambda*. -------
  sim::MetricSweepSpec delay_spec;
  delay_spec.name = "stability_delay_vs_load";
  delay_spec.x_name = "load_fraction";
  delay_spec.xs = fractions;
  delay_spec.series = frontier_spec.series;  // scheduler@fading
  delay_spec.metrics = {"offered_load",  "mean_backlog", "mean_delay",
                        "delay_p50",     "delay_p95",    "delay_p99",
                        "failure_rate_pct"};
  delay_spec.num_seeds = 1;
  delay_spec.config_fingerprint =
      sim::FingerprintMix64(frontier_spec.config_fingerprint, 0x9d1a);
  // Delay runs use the last α (the paper's default α = 3 with the stock
  // flag values).
  const double delay_alpha = alphas.back();
  delay_spec.run_seed = [&](std::size_t point, std::size_t series,
                            std::size_t /*seed_index*/,
                            const util::Deadline& /*deadline*/) {
    const double lambda_star =
        frontier_cell(delay_spec.series[series], delay_alpha, "lambda_star");
    channel::ChannelParams params;
    params.alpha = delay_alpha;
    dynamics::DynamicsOptions options = base;
    options.fading = FadingByName(fadings[series % num_fadings]);
    options.arrivals.rate = std::max(1e-4, lambda_star * fractions[point]);
    const std::string& scheduler = schedulers[series / num_fadings];
    dynamics::DynamicsResult result = dynamics::RunSlottedSimulation(
        universe, params, scheduler, options);
    std::sort(result.delay_samples.begin(), result.delay_samples.end());
    const auto pct = [&](double q) {
      return result.delay_samples.empty()
                 ? 0.0
                 : mathx::Percentile(result.delay_samples, q);
    };
    return std::vector<double>{options.arrivals.rate,
                               result.backlog.Mean(),
                               result.delay_slots.Mean(),
                               pct(0.5),
                               pct(0.95),
                               pct(0.99),
                               100.0 * result.FailureRate()};
  };

  sim::MetricSweepOptions delay_sweep;
  if (!checkpoint.empty()) delay_sweep.checkpoint_path = checkpoint + ".delay";
  delay_sweep.resume = resume;
  if (!out_csv.empty()) delay_sweep.out_path = out_csv + ".delay.csv";
  std::fprintf(stderr, "[stability] delay grid: %zu series x %zu loads\n",
               delay_spec.series.size(), delay_spec.xs.size());
  const sim::MetricSweepResult delay_result =
      sim::RunMetricSweep(delay_spec, delay_sweep);
  if (delay_result.interrupted) return delay_result.ExitCode();

  // --- Warm vs cold per-slot cost at N = 2000. ---------------------------
  SpeedupReport speedup;
  if (!skip_speedup) {
    std::fprintf(stderr, "[stability] warm-vs-cold timing at N=%lld\n",
                 speedup_links);
    speedup = MeasureWarmVsCold(static_cast<std::size_t>(speedup_links),
                                static_cast<std::size_t>(speedup_slots),
                                speedup_scheduler,
                                static_cast<std::uint64_t>(seed));
  }

  // --- JSON. -------------------------------------------------------------
  std::ostringstream json;
  json << "{\n";
  json << "  \"benchmark\": \"stability_frontier\",\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"links\": " << num_links << ",\n";
  json << "  \"slots\": " << num_slots << ",\n";
  json << "  \"warmup_slots\": " << base.warmup_slots << ",\n";
  json << "  \"arrival_family\": \"" << family_text << "\",\n";
  json << "  \"bisection_iterations\": " << iterations << ",\n";
  json << "  \"frontier\": [\n";
  bool first = true;
  for (const std::string& scheduler : schedulers) {
    for (const std::string& fading : fadings) {
      for (const double alpha : alphas) {
        const std::string series = scheduler + "@" + fading;
        if (!first) json << ",\n";
        first = false;
        json << "    {\"scheduler\": \"" << scheduler << "\", \"alpha\": "
             << Num(alpha) << ", \"fading\": \"" << fading
             << "\", \"lambda_star\": "
             << Num(frontier_cell(series, alpha, "lambda_star"))
             << ", \"lambda_lo\": "
             << Num(frontier_cell(series, alpha, "lambda_lo"))
             << ", \"lambda_hi\": "
             << Num(frontier_cell(series, alpha, "lambda_hi"))
             << ", \"saturated\": "
             << (frontier_cell(series, alpha, "saturated") != 0.0 ? "true"
                                                                  : "false")
             << ", \"probes\": "
             << static_cast<long long>(frontier_cell(series, alpha, "probes"))
             << "}";
      }
    }
  }
  json << "\n  ],\n";
  json << "  \"delay_vs_load\": [\n";
  first = true;
  {
    const util::CsvTable& table = delay_result.table;
    for (std::size_t row = 0; row < table.NumRows(); ++row) {
      const std::string series = table.Cell(row, "series");
      const std::size_t at = series.find('@');
      if (!first) json << ",\n";
      first = false;
      json << "    {\"scheduler\": \"" << series.substr(0, at)
           << "\", \"fading\": \"" << series.substr(at + 1)
           << "\", \"alpha\": " << Num(delay_alpha) << ", \"load_fraction\": "
           << Num(table.CellAsDouble(row, "load_fraction"))
           << ", \"offered_load\": "
           << Num(table.CellAsDouble(row, "offered_load_mean"))
           << ", \"mean_backlog\": "
           << Num(table.CellAsDouble(row, "mean_backlog_mean"))
           << ", \"mean_delay_slots\": "
           << Num(table.CellAsDouble(row, "mean_delay_mean"))
           << ", \"delay_p50\": "
           << Num(table.CellAsDouble(row, "delay_p50_mean"))
           << ", \"delay_p95\": "
           << Num(table.CellAsDouble(row, "delay_p95_mean"))
           << ", \"delay_p99\": "
           << Num(table.CellAsDouble(row, "delay_p99_mean"))
           << ", \"failure_rate_pct\": "
           << Num(table.CellAsDouble(row, "failure_rate_pct_mean")) << "}";
    }
  }
  json << "\n  ],\n";
  json << "  \"warm_vs_cold\": ";
  if (skip_speedup) {
    json << "null\n";
  } else {
    json << "{\n";
    json << "    \"links\": " << speedup.links << ",\n";
    json << "    \"slots\": " << speedup.slots << ",\n";
    json << "    \"scheduler\": \"" << speedup.scheduler << "\",\n";
    json << "    \"backend\": \"matrix\",\n";
    json << "    \"warm_s_per_slot\": " << Num(speedup.warm_s_per_slot)
         << ",\n";
    json << "    \"cold_s_per_slot\": " << Num(speedup.cold_s_per_slot)
         << ",\n";
    json << "    \"speedup\": " << Num(speedup.speedup) << ",\n";
    json << "    \"schedules_identical\": "
         << (speedup.schedules_identical ? "true" : "false") << "\n";
    json << "  }\n";
  }
  json << "}\n";

  util::AtomicWriteFile(out_path, json.str());
  std::printf("wrote %s\n", out_path.c_str());
  if (!skip_speedup) {
    std::printf("warm %.6f s/slot vs cold %.6f s/slot -> %.1fx (identical=%s)\n",
                speedup.warm_s_per_slot, speedup.cold_s_per_slot,
                speedup.speedup,
                speedup.schedules_identical ? "yes" : "no");
  }
  return 0;
}
