// Ablation: LDP's one-sided length classes (the paper's stated
// improvement over the two-sided classes of ApproxLogN [14]). One-sided
// classes are supersets, so each same-colour square sees more candidates
// — the bench quantifies the throughput gain on topologies with varying
// length diversity.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "net/topology_stats.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/ldp.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_ldp_classes",
                      "LDP one-sided vs two-sided length classes");
  auto& num_seeds = cli.AddInt("seeds", 10, "topologies per point");
  auto& num_links = cli.AddInt("links", 300, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  const sched::LdpScheduler one_sided{};
  sched::LdpOptions two;
  two.two_sided_classes = true;
  const sched::LdpScheduler two_sided(two);

  util::CsvTable table({"scenario", "mean_g_of_L", "one_sided_throughput",
                        "two_sided_throughput", "gain_pct"});
  struct Row {
    const char* name;
    std::size_t octaves;  // 0 = paper scenario
  };
  for (const Row& row : {Row{"paper_5_20", 0}, Row{"octaves_4", 4},
                         Row{"octaves_8", 8}}) {
    mathx::RunningStats diversity;
    mathx::RunningStats tput_one;
    mathx::RunningStats tput_two;
    for (long long seed = 1; seed <= num_seeds; ++seed) {
      rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
      net::LinkSet links;
      if (row.octaves == 0) {
        links = net::MakeUniformScenario(static_cast<std::size_t>(num_links),
                                         {}, gen);
      } else {
        net::DiverseLengthScenarioParams dp;
        dp.length_octaves = row.octaves;
        links = net::MakeDiverseLengthScenario(
            static_cast<std::size_t>(num_links), dp, gen);
      }
      diversity.Add(static_cast<double>(net::LengthDiversity(links)));
      tput_one.Add(sim::ComputeExpectedMetrics(
                       links, params, one_sided.Schedule(links, params).schedule)
                       .expected_throughput);
      tput_two.Add(sim::ComputeExpectedMetrics(
                       links, params, two_sided.Schedule(links, params).schedule)
                       .expected_throughput);
    }
    const double gain =
        100.0 * (tput_one.Mean() - tput_two.Mean()) /
        std::max(tput_two.Mean(), 1e-12);
    util::CsvRowBuilder(table)
        .Add(std::string(row.name))
        .Add(util::FormatDouble(diversity.Mean(), 2))
        .Add(util::FormatDouble(tput_one.Mean(), 3))
        .Add(util::FormatDouble(tput_two.Mean(), 3))
        .Add(util::FormatDouble(gain, 1))
        .Commit();
  }
  std::printf("# Ablation: LDP one-sided vs two-sided classes "
              "(N=%lld, alpha=3)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
