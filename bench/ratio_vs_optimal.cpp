// Empirical approximation ratios vs the exact optimum (branch and bound)
// on small dense instances — the measurable counterpart of Theorems 4.2
// and 4.4, which the paper states analytically but does not plot.
#include <cstdio>
#include <vector>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "net/topology_stats.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sched/exact.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ratio_vs_optimal",
                      "empirical approximation ratios on brute-forceable "
                      "instances (Theorems 4.2 / 4.4)");
  auto& num_seeds = cli.AddInt("seeds", 20, "instances per size");
  auto& max_links = cli.AddInt("max-links", 16, "largest instance size");
  auto& epsilon = cli.AddDouble("epsilon", 0.05, "outage budget");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = epsilon;

  const std::vector<std::string> algorithms{"ldp", "rle", "fading_greedy",
                                            "dls"};
  const sched::BranchAndBoundScheduler exact;

  util::CsvTable table({"num_links", "algorithm", "mean_ratio", "max_ratio",
                        "mean_g_of_L", "instances"});
  for (long long n = 8; n <= max_links; n += 4) {
    std::vector<mathx::RunningStats> ratios(algorithms.size());
    mathx::RunningStats diversity;
    for (long long seed = 1; seed <= num_seeds; ++seed) {
      rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed * 977 + n));
      net::UniformScenarioParams sp;
      sp.region_size = 150.0;  // dense enough for real conflicts
      const net::LinkSet links =
          net::MakeUniformScenario(static_cast<std::size_t>(n), sp, gen);
      const double optimal = exact.Schedule(links, params).claimed_rate;
      if (optimal <= 0.0) continue;
      diversity.Add(static_cast<double>(net::LengthDiversity(links)));
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const double rate = sched::MakeScheduler(algorithms[a])
                                ->Schedule(links, params)
                                .claimed_rate;
        ratios[a].Add(rate > 0.0 ? optimal / rate : 0.0);
      }
    }
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      util::CsvRowBuilder(table)
          .Add(n)
          .Add(algorithms[a])
          .Add(util::FormatDouble(ratios[a].Mean(), 3))
          .Add(util::FormatDouble(ratios[a].Max(), 3))
          .Add(util::FormatDouble(diversity.Mean(), 2))
          .Add(static_cast<long long>(ratios[a].Count()))
          .Commit();
    }
    std::fprintf(stderr, "[ratio] n=%lld done\n", n);
  }
  std::printf("# Empirical approximation ratio vs exact optimum "
              "(alpha=3, eps=%s)\n",
              util::FormatDouble(epsilon).c_str());
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
