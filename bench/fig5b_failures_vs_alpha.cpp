// Fig. 5(b) reproduction: number of failed transmissions per slot vs the
// path-loss exponent α at fixed N. Paper's observation: failures of the
// fading-susceptible baselines *decrease* as α grows (far interference
// attenuates faster); LDP/RLE stay at ≈ 0 throughout.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  bench::FigureFlags flags;
  if (!bench::ParseFigureFlags(
          argc, argv, "fig5b_failures_vs_alpha",
          "failed transmissions vs path-loss exponent (paper Fig. 5b)",
          flags)) {
    return flags.exit_code;
  }
  const auto result = bench::RunSweep(
      "fig5b_failures_vs_alpha", "alpha", {2.5, 3.0, 3.5, 4.0, 4.5},
      {"ldp", "rle", "approx_logn", "approx_diversity", "graph_greedy"},
      flags,
      [](double alpha) {
        sim::ExperimentPoint point;
        point.num_links = 300;
        point.channel.alpha = alpha;
        return point;
      });
  return bench::FinishFigure(
      "Fig 5(b): failed transmissions vs alpha (N=300, eps=0.01)", result,
      flags);
}
