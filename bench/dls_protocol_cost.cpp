// DLS as a real message-passing protocol (distsim): communication cost
// and schedule quality vs network size and sensing/broadcast radius.
// Complements dls_convergence (which measures the aggregate model) with
// actual message counts from the discrete-event run.
#include <cstdio>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "distsim/dls_protocol.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("dls_protocol_cost",
                      "message-passing DLS: cost vs N and sensing radius");
  auto& num_seeds = cli.AddInt("seeds", 3, "topologies per cell");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"num_links", "radius", "messages_per_link",
                        "links_scheduled", "expected_throughput",
                        "feasible_fraction"});
  for (std::size_t n : {100, 200, 400}) {
    for (double radius : {150.0, 400.0, 1500.0}) {
      mathx::RunningStats messages;
      mathx::RunningStats scheduled;
      mathx::RunningStats throughput;
      int feasible_count = 0;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);
        distsim::DlsProtocolOptions options;
        options.broadcast_radius = radius;
        const auto result = distsim::RunDlsProtocol(links, params, options);
        messages.Add(static_cast<double>(result.sim_stats.messages_sent) /
                     static_cast<double>(n));
        scheduled.Add(static_cast<double>(result.schedule.size()));
        throughput.Add(sim::ComputeExpectedMetrics(links, params,
                                                   result.schedule)
                           .expected_throughput);
        const channel::InterferenceCalculator calc(links, params);
        if (channel::ScheduleIsFeasible(calc, result.schedule)) {
          ++feasible_count;
        }
      }
      util::CsvRowBuilder(table)
          .Add(n)
          .Add(util::FormatDouble(radius, 0))
          .Add(util::FormatDouble(messages.Mean(), 1))
          .Add(util::FormatDouble(scheduled.Mean(), 1))
          .Add(util::FormatDouble(throughput.Mean(), 2))
          .Add(util::FormatDouble(
              static_cast<double>(feasible_count) /
                  static_cast<double>(num_seeds), 2))
          .Commit();
      std::fprintf(stderr, "[protocol] n=%zu r=%g done\n", n, radius);
    }
  }
  std::printf("# Message-passing DLS: protocol cost vs N and broadcast "
              "radius (alpha=3, eps=0.01)\n");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
