// Fig. 6(a) reproduction: throughput (rate successfully delivered under
// Rayleigh fading) vs the number of links. Paper's claims: RLE > LDP at
// every N, and throughput grows with N. We additionally report the
// fading-aware greedy and DLS extensions and the baselines' *delivered*
// throughput for context.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  bench::FigureFlags flags;
  if (!bench::ParseFigureFlags(
          argc, argv, "fig6a_throughput_vs_links",
          "delivered throughput vs number of links (paper Fig. 6a)", flags)) {
    return flags.exit_code;
  }
  const auto result = bench::RunSweep(
      "fig6a_throughput_vs_links", "num_links", {100, 200, 300, 400, 500},
      {"ldp", "rle", "fading_greedy", "dls"}, flags, [](double x) {
        sim::ExperimentPoint point;
        point.num_links = static_cast<std::size_t>(x);
        point.channel.alpha = 3.0;
        return point;
      });
  return bench::FinishFigure(
      "Fig 6(a): throughput vs #links (alpha=3, eps=0.01)", result, flags);
}
