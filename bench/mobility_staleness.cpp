// Mobility bench (extension): how fast does a schedule go stale as nodes
// move? A schedule is computed at t = 0 and kept while the topology
// drifts under random-waypoint mobility; we track its expected throughput
// and feasibility over time, and compare against rescheduling every k
// steps. Answers "how often must a fading-resistant schedule be
// recomputed in a mobile network".
#include <cstdio>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/stats.hpp"
#include "net/mobility.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("mobility_staleness",
                      "schedule staleness under random-waypoint mobility");
  auto& num_links = cli.AddInt("links", 200, "links in the network");
  auto& num_steps = cli.AddInt("steps", 200, "mobility steps to simulate");
  auto& num_seeds = cli.AddInt("seeds", 5, "independent runs");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;
  const auto scheduler = sched::MakeScheduler("rle");

  util::CsvTable table({"steps_since_schedule", "expected_throughput",
                        "still_feasible_fraction", "throughput_if_rescheduled"});
  const std::vector<long long> checkpoints{0, 5, 10, 20, 50, 100, 200};
  std::vector<mathx::RunningStats> throughput(checkpoints.size());
  std::vector<mathx::RunningStats> feasible(checkpoints.size());
  std::vector<mathx::RunningStats> fresh(checkpoints.size());

  for (long long seed = 1; seed <= num_seeds; ++seed) {
    rng::Xoshiro256 topo_gen(static_cast<std::uint64_t>(seed));
    const net::LinkSet initial = net::MakeUniformScenario(
        static_cast<std::size_t>(num_links), {}, topo_gen);
    net::RandomWaypointMobility mob(
        initial, {}, rng::Xoshiro256(static_cast<std::uint64_t>(seed) * 31));
    const net::Schedule frozen =
        scheduler->Schedule(initial, params).schedule;
    long long step = 0;
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      mob.Advance(static_cast<std::size_t>(checkpoints[c] - step));
      step = checkpoints[c];
      const net::LinkSet& now = mob.Current();
      const channel::InterferenceCalculator calc(now, params);
      throughput[c].Add(
          sim::ComputeExpectedMetrics(now, params, frozen).expected_throughput);
      feasible[c].Add(
          channel::ScheduleIsFeasible(calc, frozen) ? 1.0 : 0.0);
      fresh[c].Add(sim::ComputeExpectedMetrics(
                       now, params, scheduler->Schedule(now, params).schedule)
                       .expected_throughput);
    }
    std::fprintf(stderr, "[mobility] seed=%lld done\n", seed);
    (void)num_steps;
  }
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    util::CsvRowBuilder(table)
        .Add(checkpoints[c])
        .Add(util::FormatDouble(throughput[c].Mean(), 3))
        .Add(util::FormatDouble(feasible[c].Mean(), 2))
        .Add(util::FormatDouble(fresh[c].Mean(), 3))
        .Commit();
  }
  std::printf("# Mobility: staleness of a frozen RLE schedule "
              "(N=%lld, alpha=3, eps=0.01, random waypoint speeds 0.5-2)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
