// Robustness bench (extension): schedules calibrated for Rayleigh fading
// evaluated under other channels — Nakagami-m (m<1 harsher, m>1 milder)
// and log-normally shadowed Rayleigh. Reports the per-slot failure count
// of each scheduler's Rayleigh-optimal schedule under every model.
#include <cstdio>
#include <string>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("robustness_fading_models",
                      "Rayleigh-calibrated schedules under other channels");
  auto& num_seeds = cli.AddInt("seeds", 5, "topologies per cell");
  auto& trials = cli.AddInt("trials", 4000, "fading realizations");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  struct Channel {
    std::string label;
    sim::FadingOptions fading;
  };
  std::vector<Channel> channels;
  channels.push_back({"rayleigh", {}});
  for (double m : {0.5, 2.0, 4.0}) {
    sim::FadingOptions fading;
    fading.model = sim::FadingModel::kNakagami;
    fading.nakagami_m = m;
    channels.push_back({"nakagami_m=" + util::FormatDouble(m, 1), fading});
  }
  for (double sigma : {4.0, 8.0}) {
    sim::FadingOptions fading;
    fading.model = sim::FadingModel::kShadowedRayleigh;
    fading.shadowing_sigma_db = sigma;
    channels.push_back(
        {"shadowed_" + util::FormatDouble(sigma, 0) + "dB", fading});
  }

  util::CsvTable table({"channel", "algorithm", "failed_per_slot",
                        "throughput", "links_scheduled"});
  for (const Channel& ch : channels) {
    for (const char* name : {"rle", "fading_greedy", "approx_diversity"}) {
      const auto scheduler = sched::MakeScheduler(name);
      mathx::RunningStats failed;
      mathx::RunningStats throughput;
      mathx::RunningStats scheduled;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(300, {}, gen);
        const auto result = scheduler->Schedule(links, params);
        sim::SimOptions options;
        options.trials = static_cast<std::size_t>(trials);
        options.seed = static_cast<std::uint64_t>(seed) * 7919;
        options.fading = ch.fading;
        const sim::SimResult sim_result =
            sim::SimulateSchedule(links, params, result.schedule, options);
        failed.Add(sim_result.failed_per_trial.Mean());
        throughput.Add(sim_result.throughput_per_trial.Mean());
        scheduled.Add(static_cast<double>(result.schedule.size()));
      }
      util::CsvRowBuilder(table)
          .Add(ch.label)
          .Add(std::string(name))
          .Add(util::FormatDouble(failed.Mean(), 4))
          .Add(util::FormatDouble(throughput.Mean(), 2))
          .Add(util::FormatDouble(scheduled.Mean(), 1))
          .Commit();
    }
    std::fprintf(stderr, "[robustness] %s done\n", ch.label.c_str());
  }
  std::printf("# Robustness: Rayleigh-calibrated schedules under other "
              "fading models (N=300, alpha=3, eps=0.01)\n");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
