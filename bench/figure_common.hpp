// Shared scaffolding for the figure-reproduction binaries: CLI flags for
// scale control, the crash-safe sweep driver, and uniform printing.
//
// Every sweep bench runs through sim::RunExperimentSweep, so all of them
// inherit checkpoint/resume (--checkpoint/--resume), atomic CSV output
// (--out), per-seed watchdog deadlines (--seed-deadline), bounded retries
// (--retries), and graceful SIGINT/SIGTERM shutdown (exit code 3 after
// checkpointing). --crash-after-point is a fault drill: the process
// SIGKILLs itself right after the given point's checkpoint is persisted,
// so kill-and-resume can be exercised from CI and the shell.
#pragma once

#include <csignal>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace fadesched::bench {

struct FigureFlags {
  long long seeds = 5;      ///< topologies per sweep point
  long long trials = 1000;  ///< fading realizations per instance
  long long threads = 0;    ///< simulator threads (0 = hardware)
  bool csv_only = false;    ///< suppress the pretty table
  std::string out;          ///< atomic CSV output path ("" = stdout only)
  std::string checkpoint;   ///< checkpoint path ("" = no checkpointing)
  bool resume = false;      ///< resume from --checkpoint if present
  bool keep_checkpoint = false;     ///< keep checkpoint after success
  double seed_deadline = 0.0;       ///< per-seed watchdog (seconds; 0 = off)
  long long retries = 1;            ///< transient-failure retries per seed
  bool deterministic = false;       ///< zero the runtime column (diffable CSV)
  long long crash_after_point = -1; ///< fault drill: SIGKILL after point N
  int exit_code = 0;        ///< valid when ParseFigureFlags returns false
};

/// Registers the shared flags; returns false if the program should exit
/// (help requested or malformed input) with flags.exit_code as status.
inline bool ParseFigureFlags(int argc, char** argv, const std::string& name,
                             const std::string& description,
                             FigureFlags& flags) {
  util::CliParser cli(name, description);
  auto& seeds = cli.AddInt("seeds", flags.seeds, "topologies per point");
  auto& trials = cli.AddInt("trials", flags.trials,
                            "fading realizations per instance");
  auto& threads = cli.AddInt("threads", flags.threads,
                             "simulator threads (0 = hardware)");
  auto& csv_only = cli.AddBool("csv-only", flags.csv_only,
                               "print raw CSV without the aligned table");
  auto& out = cli.AddString("out", "", "write the CSV here (atomic)");
  auto& checkpoint = cli.AddString(
      "checkpoint", "", "sweep checkpoint file (enables crash-safe resume)");
  auto& resume = cli.AddBool("resume", false,
                             "resume from --checkpoint if it exists");
  auto& keep = cli.AddBool("keep-checkpoint", false,
                           "keep the checkpoint after a successful run");
  auto& deadline = cli.AddDouble(
      "seed-deadline", 0.0, "per-seed watchdog deadline in seconds (0 = off)");
  auto& retries = cli.AddInt(
      "retries", 1, "retries per seed for transient failures");
  auto& deterministic = cli.AddBool(
      "deterministic", false,
      "record sched_ms as 0 so reruns produce byte-identical CSV");
  auto& crash_after = cli.AddInt(
      "crash-after-point", -1,
      "fault drill: SIGKILL this process after point N checkpoints");
  if (!cli.Parse(argc, argv)) {
    flags.exit_code = cli.UsageExitCode();
    return false;
  }
  flags.seeds = seeds;
  flags.trials = trials;
  flags.threads = threads;
  flags.csv_only = csv_only;
  flags.out = out;
  flags.checkpoint = checkpoint;
  flags.resume = resume;
  flags.keep_checkpoint = keep;
  flags.seed_deadline = deadline;
  flags.retries = retries;
  flags.deterministic = deterministic;
  flags.crash_after_point = crash_after;
  return true;
}

/// Runs one sweep through the crash-safe driver: for each x in `xs`,
/// builds the experiment point and appends one row per algorithm,
/// checkpointing as configured. `name` keys the checkpoint fingerprint.
inline sim::SweepResult RunSweep(
    const std::string& name, const std::string& x_name,
    const std::vector<double>& xs, const std::vector<std::string>& algorithms,
    const FigureFlags& flags,
    const std::function<sim::ExperimentPoint(double)>& make_point) {
  sim::SweepSpec spec;
  spec.name = name;
  spec.x_name = x_name;
  spec.xs = xs;
  spec.make_point = make_point;

  sim::SweepOptions options;
  options.config.algorithms = algorithms;
  options.config.num_seeds = static_cast<std::size_t>(flags.seeds);
  options.config.trials = static_cast<std::size_t>(flags.trials);
  options.config.threads =
      flags.threads <= 0 ? 0u : static_cast<unsigned>(flags.threads);
  options.retry.max_attempts = static_cast<std::size_t>(flags.retries) + 1;
  options.retry.seed_deadline_seconds = flags.seed_deadline;
  options.checkpoint_path = flags.checkpoint;
  options.resume = flags.resume;
  options.keep_checkpoint = flags.keep_checkpoint;
  options.out_path = flags.out;
  options.deterministic = flags.deterministic;
  if (flags.crash_after_point >= 0) {
    const auto crash_point = static_cast<std::size_t>(flags.crash_after_point);
    options.after_checkpoint = [crash_point](std::size_t point,
                                             std::size_t /*seeds_done*/,
                                             bool complete) {
      if (complete && point == crash_point) {
        std::fprintf(stderr, "[drill] SIGKILL after point %zu checkpoint\n",
                     point);
        std::raise(SIGKILL);
      }
    };
  }
  return sim::RunExperimentSweep(spec, options);
}

/// Prints the result in both machine (CSV) and human (aligned) form, and
/// writes it atomically to `out` when given.
inline void EmitTable(const std::string& title, const util::CsvTable& table,
                      bool csv_only, const std::string& out) {
  std::printf("# %s\n", title.c_str());
  std::fputs(table.ToString().c_str(), stdout);
  if (!csv_only) {
    std::printf("\n%s\n", table.ToPrettyString().c_str());
  }
  if (!out.empty()) table.Save(out);
}

/// Back-compat shim for benches that build their own tables.
inline void PrintFigure(const std::string& title, const util::CsvTable& table,
                        bool csv_only) {
  EmitTable(title, table, csv_only, "");
}

/// Prints the sweep outcome and returns the bench's process exit code
/// (0, or 3 when the sweep was interrupted). Degraded seeds are reported
/// on stderr so a clean-looking CSV cannot hide them. The sweep driver
/// already wrote --out atomically.
inline int FinishFigure(const std::string& title,
                        const sim::SweepResult& result,
                        const FigureFlags& flags) {
  EmitTable(title, result.table, flags.csv_only, "");
  if (result.failed_seeds > 0 || result.timed_out_seeds > 0) {
    std::fprintf(stderr,
                 "warning: %zu seed(s) failed (%zu timed out) and were "
                 "excluded from the aggregates\n",
                 result.failed_seeds, result.timed_out_seeds);
  }
  if (result.interrupted) {
    std::fprintf(stderr,
                 "interrupted: %zu/%zu points complete; checkpoint %s\n",
                 result.points_completed, result.points_total,
                 flags.checkpoint.empty() ? "disabled — rerun from scratch"
                                          : flags.checkpoint.c_str());
  }
  return result.ExitCode();
}

}  // namespace fadesched::bench
