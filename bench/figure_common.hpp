// Shared scaffolding for the figure-reproduction binaries: CLI flags for
// scale control, a sweep driver, and uniform printing.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace fadesched::bench {

struct FigureFlags {
  long long seeds = 5;      ///< topologies per sweep point
  long long trials = 1000;  ///< fading realizations per instance
  long long threads = 0;    ///< simulator threads (0 = hardware)
  bool csv_only = false;    ///< suppress the pretty table
};

/// Registers the shared flags; returns false if the program should exit
/// (help requested or malformed input).
inline bool ParseFigureFlags(int argc, char** argv, const std::string& name,
                             const std::string& description,
                             FigureFlags& flags) {
  util::CliParser cli(name, description);
  auto& seeds = cli.AddInt("seeds", flags.seeds, "topologies per point");
  auto& trials = cli.AddInt("trials", flags.trials,
                            "fading realizations per instance");
  auto& threads = cli.AddInt("threads", flags.threads,
                             "simulator threads (0 = hardware)");
  auto& csv_only = cli.AddBool("csv-only", flags.csv_only,
                               "print raw CSV without the aligned table");
  if (!cli.Parse(argc, argv)) return false;
  flags.seeds = seeds;
  flags.trials = trials;
  flags.threads = threads;
  flags.csv_only = csv_only;
  return true;
}

/// Runs one sweep: for each x in `xs`, builds the experiment point and
/// appends one row per algorithm.
inline util::CsvTable RunSweep(
    const std::string& x_name, const std::vector<double>& xs,
    const std::vector<std::string>& algorithms, const FigureFlags& flags,
    const std::function<sim::ExperimentPoint(double)>& make_point) {
  sim::ExperimentConfig config;
  config.algorithms = algorithms;
  config.num_seeds = static_cast<std::size_t>(flags.seeds);
  config.trials = static_cast<std::size_t>(flags.trials);

  util::ThreadPool pool(flags.threads <= 0
                            ? 0u
                            : static_cast<unsigned>(flags.threads));
  util::CsvTable table = sim::MakeSummaryTable(x_name);
  for (double x : xs) {
    util::Stopwatch watch;
    const auto summaries =
        sim::RunExperimentPoint(make_point(x), config, pool);
    sim::AppendSummaryRows(table, x, summaries);
    std::fprintf(stderr, "[%s] %s=%g done in %.1fs\n", x_name.c_str(),
                 x_name.c_str(), x, watch.Seconds());
  }
  return table;
}

/// Prints the result in both machine (CSV) and human (aligned) form.
inline void PrintFigure(const std::string& title, const util::CsvTable& table,
                        bool csv_only) {
  std::printf("# %s\n", title.c_str());
  std::fputs(table.ToString().c_str(), stdout);
  if (!csv_only) {
    std::printf("\n%s\n", table.ToPrettyString().c_str());
  }
}

}  // namespace fadesched::bench
