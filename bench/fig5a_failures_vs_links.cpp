// Fig. 5(a) reproduction: number of failed transmissions per slot vs the
// number of links, for the two fading-resistant schedulers (LDP, RLE) and
// the two fading-susceptible baselines (ApproxLogN, ApproxDiversity).
//
// Paper setup (§V): 500×500 region, link lengths U[5,20], ε = 0.01,
// γ_th = 1, λ = 1, α = 3. Expected shape: LDP/RLE ≈ 0 failures; the
// baselines' failures grow with N.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  bench::FigureFlags flags;
  if (!bench::ParseFigureFlags(
          argc, argv, "fig5a_failures_vs_links",
          "failed transmissions vs number of links (paper Fig. 5a)", flags)) {
    return flags.exit_code;
  }
  const auto result = bench::RunSweep(
      "fig5a_failures_vs_links", "num_links", {100, 200, 300, 400, 500},
      {"ldp", "rle", "approx_logn", "approx_diversity", "graph_greedy"},
      flags,
      [](double x) {
        sim::ExperimentPoint point;
        point.num_links = static_cast<std::size_t>(x);
        point.channel.alpha = 3.0;
        return point;
      });
  return bench::FinishFigure(
      "Fig 5(a): failed transmissions vs #links (alpha=3, eps=0.01)", result,
      flags);
}
