// google-benchmark: scheduler wall-time scaling with instance size.
#include <benchmark/benchmark.h>

#include "channel/params.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"

namespace {

using namespace fadesched;

net::LinkSet MakeInstance(std::size_t n) {
  rng::Xoshiro256 gen(1234);
  net::UniformScenarioParams params;
  // Grow the region with sqrt(N) to hold density constant across sizes.
  params.region_size = 500.0 * std::sqrt(static_cast<double>(n) / 300.0);
  return net::MakeUniformScenario(n, params, gen);
}

void RunScheduler(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const net::LinkSet links = MakeInstance(n);
  channel::ChannelParams params;
  params.alpha = 3.0;
  const auto scheduler = sched::MakeScheduler(name);
  std::size_t scheduled = 0;
  for (auto _ : state) {
    const auto result = scheduler->Schedule(links, params);
    scheduled = result.schedule.size();
    benchmark::DoNotOptimize(result.claimed_rate);
  }
  state.counters["links_scheduled"] = static_cast<double>(scheduled);
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_Ldp(benchmark::State& state) { RunScheduler(state, "ldp"); }
void BM_Rle(benchmark::State& state) { RunScheduler(state, "rle"); }
void BM_ApproxLogN(benchmark::State& state) {
  RunScheduler(state, "approx_logn");
}
void BM_ApproxDiversity(benchmark::State& state) {
  RunScheduler(state, "approx_diversity");
}
void BM_FadingGreedy(benchmark::State& state) {
  RunScheduler(state, "fading_greedy");
}
void BM_Dls(benchmark::State& state) { RunScheduler(state, "dls"); }

BENCHMARK(BM_Ldp)->RangeMultiplier(4)->Range(64, 4096)->Complexity();
BENCHMARK(BM_Rle)->RangeMultiplier(4)->Range(64, 4096)->Complexity();
BENCHMARK(BM_ApproxLogN)->RangeMultiplier(4)->Range(64, 4096)->Complexity();
BENCHMARK(BM_ApproxDiversity)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();
BENCHMARK(BM_FadingGreedy)->RangeMultiplier(4)->Range(64, 1024)->Complexity();
BENCHMARK(BM_Dls)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_ExactBranchAndBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const net::LinkSet links = MakeInstance(n);
  channel::ChannelParams params;
  params.alpha = 3.0;
  params.epsilon = 0.05;
  const auto scheduler = sched::MakeScheduler("exact_bb");
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->Schedule(links, params).claimed_rate);
  }
}
BENCHMARK(BM_ExactBranchAndBound)->DenseRange(10, 22, 4);

}  // namespace
