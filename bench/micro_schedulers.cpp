// Microbenchmark: end-to-end scheduler wall time per interference backend
// (reference calculator vs precomputed tables vs materialized matrix).
// Emits BENCH_schedulers.json. Every run re-verifies the differential
// guarantee — each scheduler must emit the identical schedule on every
// backend — and with --check the exit code reflects only that, never a
// timing.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/atomic_io.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

namespace {

using namespace fadesched;

net::LinkSet MakeInstance(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams params;
  params.region_size = 500.0 * std::sqrt(static_cast<double>(n) / 300.0);
  return net::MakeUniformScenario(n, params, gen);
}

std::unique_ptr<sched::Scheduler> MakeNamed(
    const std::string& name, const channel::EngineOptions& engine) {
  if (name == "rle") {
    sched::RleOptions options;
    options.interference = engine;
    return std::make_unique<sched::RleScheduler>(options);
  }
  if (name == "fading_greedy") {
    sched::FadingGreedyOptions options;
    options.interference = engine;
    return std::make_unique<sched::FadingGreedyScheduler>(options);
  }
  if (name == "ldp") {
    sched::LdpOptions options;
    options.interference = engine;
    return std::make_unique<sched::LdpScheduler>(options);
  }
  if (name == "approx_logn") {
    sched::ApproxLogNOptions options;
    options.interference = engine;
    return std::make_unique<sched::ApproxLogNScheduler>(options);
  }
  if (name == "approx_diversity") {
    sched::ApproxDiversityOptions options;
    options.interference = engine;
    return std::make_unique<sched::ApproxDiversityScheduler>(options);
  }
  std::cerr << "unknown scheduler: " << name << "\n";
  std::exit(2);
}

struct BackendTiming {
  const char* backend = "";
  double schedule_ms = 0.0;
};

struct SchedulerReport {
  std::string name;
  std::size_t n = 0;
  std::size_t scheduled = 0;
  bool backends_agree = true;
  std::vector<BackendTiming> timings;
};

std::string Json(const std::vector<SchedulerReport>& reports,
                 std::uint64_t seed, long long reps, bool check_passed) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n";
  out << "  \"benchmark\": \"micro_schedulers\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"differential_check_passed\": "
      << (check_passed ? "true" : "false") << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const SchedulerReport& r = reports[k];
    out << "    {\n";
    out << "      \"scheduler\": \"" << r.name << "\",\n";
    out << "      \"n\": " << r.n << ",\n";
    out << "      \"links_scheduled\": " << r.scheduled << ",\n";
    out << "      \"backends_agree\": "
        << (r.backends_agree ? "true" : "false") << ",\n";
    out << "      \"timings_ms\": {";
    for (std::size_t t = 0; t < r.timings.size(); ++t) {
      out << "\"" << r.timings[t].backend
          << "\": " << r.timings[t].schedule_ms
          << (t + 1 < r.timings.size() ? ", " : "");
    }
    out << "}\n";
    out << "    }" << (k + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("micro_schedulers",
                      "Per-backend scheduler timings + differential "
                      "verification; writes BENCH_schedulers.json");
  std::string& sizes_flag =
      cli.AddString("sizes", "100,500,2000", "comma-separated N values");
  std::string& schedulers_flag = cli.AddString(
      "schedulers", "rle,fading_greedy,ldp,approx_logn,approx_diversity",
      "comma-separated scheduler names");
  long long& reps = cli.AddInt("reps", 3, "repetitions (best-of) per timing");
  long long& seed = cli.AddInt("seed", 1234, "scenario seed");
  std::string& out_path =
      cli.AddString("out", "BENCH_schedulers.json", "output JSON path");
  bool& check_only = cli.AddBool(
      "check", false,
      "exit nonzero iff any backend changes a schedule (never on timing)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  struct Backend {
    const char* label;
    channel::FactorBackend backend;
  };
  const Backend backends[] = {
      {"calculator", channel::FactorBackend::kCalculator},
      {"tables", channel::FactorBackend::kTables},
      {"matrix", channel::FactorBackend::kMatrix},
  };

  std::vector<SchedulerReport> reports;
  bool check_passed = true;
  for (const std::string& token : util::Split(sizes_flag, ',')) {
    const std::size_t n = static_cast<std::size_t>(std::stoull(token));
    const net::LinkSet links =
        MakeInstance(n, static_cast<std::uint64_t>(seed));
    for (const std::string& name : util::Split(schedulers_flag, ',')) {
      SchedulerReport report;
      report.name = name;
      report.n = n;
      net::Schedule reference;
      for (const Backend& b : backends) {
        channel::EngineOptions engine;
        engine.backend = b.backend;
        const auto scheduler = MakeNamed(name, engine);
        net::Schedule schedule;
        double best = std::numeric_limits<double>::infinity();
        for (int r = 0; r < static_cast<int>(reps); ++r) {
          util::Stopwatch timer;
          schedule = scheduler->Schedule(links, params).schedule;
          best = std::min(best, timer.Seconds());
        }
        report.timings.push_back({b.label, 1e3 * best});
        if (b.backend == channel::FactorBackend::kCalculator) {
          reference = schedule;
          report.scheduled = schedule.size();
        } else if (schedule != reference) {
          report.backends_agree = false;
          check_passed = false;
          std::cerr << "DIFFERENTIAL MISMATCH: " << name << " n=" << n
                    << " backend=" << b.label
                    << " diverged from calculator path\n";
        }
      }
      std::cerr << name << " n=" << n << " scheduled=" << report.scheduled
                << (report.backends_agree ? "" : " MISMATCH") << "\n";
      reports.push_back(std::move(report));
    }
  }

  util::AtomicWriteFile(out_path,
                        Json(reports, static_cast<std::uint64_t>(seed), reps,
                             check_passed));
  std::cout << "wrote " << out_path << "\n";
  if (check_only && !check_passed) return 1;
  return 0;
}
