// Ablation: how much safety margin do the paper's derived constants carry?
// The feasibility proofs (Theorems 4.1 / 4.3) use generous ring bounds, so
// the grid factor β and elimination radius c1 may be shrinkable in
// practice. This bench scales both below 1.0 and reports when empirical
// feasibility first breaks — quantifying the slack in Formulas (37)/(59).
#include <cstdio>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_constants_slack",
                      "scale the derived constants below the provable values");
  auto& num_seeds = cli.AddInt("seeds", 8, "topologies per point");
  auto& num_links = cli.AddInt("links", 300, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"scale", "algorithm", "links_scheduled",
                        "expected_throughput", "feasible_fraction",
                        "expected_failed"});
  for (double scale : {0.25, 0.4, 0.55, 0.7, 0.85, 1.0}) {
    struct Entry {
      const char* name;
      sched::SchedulerPtr scheduler;
    };
    sched::LdpOptions ldp_options;
    ldp_options.beta_scale = scale;
    sched::RleOptions rle_options;
    rle_options.c1_scale = scale;
    Entry entries[2] = {
        {"ldp", std::make_unique<sched::LdpScheduler>(ldp_options)},
        {"rle", std::make_unique<sched::RleScheduler>(rle_options)},
    };
    for (const Entry& entry : entries) {
      mathx::RunningStats scheduled;
      mathx::RunningStats throughput;
      mathx::RunningStats failed;
      int feasible_count = 0;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(
            static_cast<std::size_t>(num_links), {}, gen);
        const auto result = entry.scheduler->Schedule(links, params);
        const channel::InterferenceCalculator calc(links, params);
        if (channel::ScheduleIsFeasible(calc, result.schedule)) {
          ++feasible_count;
        }
        const auto metrics =
            sim::ComputeExpectedMetrics(links, params, result.schedule);
        scheduled.Add(static_cast<double>(result.schedule.size()));
        throughput.Add(metrics.expected_throughput);
        failed.Add(metrics.expected_failed);
      }
      util::CsvRowBuilder(table)
          .Add(util::FormatDouble(scale, 2))
          .Add(std::string(entry.name))
          .Add(util::FormatDouble(scheduled.Mean(), 2))
          .Add(util::FormatDouble(throughput.Mean(), 3))
          .Add(util::FormatDouble(
              static_cast<double>(feasible_count) /
                  static_cast<double>(num_seeds), 3))
          .Add(util::FormatDouble(failed.Mean(), 4))
          .Commit();
    }
    std::fprintf(stderr, "[slack] scale=%g done\n", scale);
  }
  std::printf("# Ablation: constant-slack sweep (beta_scale / c1_scale; "
              "N=%lld, alpha=3, eps=0.01)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
