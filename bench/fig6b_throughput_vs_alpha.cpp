// Fig. 6(b) reproduction: throughput vs the path-loss exponent α at fixed
// N. Paper's claims: throughput grows with α for both LDP (smaller
// squares ⇒ more concurrent links) and RLE (smaller elimination radius),
// with RLE > LDP throughout.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  bench::FigureFlags flags;
  if (!bench::ParseFigureFlags(
          argc, argv, "fig6b_throughput_vs_alpha",
          "delivered throughput vs path-loss exponent (paper Fig. 6b)",
          flags)) {
    return flags.exit_code;
  }
  const auto result = bench::RunSweep(
      "fig6b_throughput_vs_alpha", "alpha", {2.5, 3.0, 3.5, 4.0, 4.5},
      {"ldp", "rle", "fading_greedy", "dls"},
      flags, [](double alpha) {
        sim::ExperimentPoint point;
        point.num_links = 300;
        point.channel.alpha = alpha;
        return point;
      });
  return bench::FinishFigure(
      "Fig 6(b): throughput vs alpha (N=300, eps=0.01)", result, flags);
}
