// Ablation: oblivious power assignment policies (extension — the paper
// assumes a common transmit power). Compares uniform / linear / sqrt
// assignments under each fading-resistant scheduler. Expected shape from
// the SINR power-control literature: sqrt dominates both extremes once
// link lengths are diverse, and linear helps long links at the expense of
// everyone near them.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "power/assignment.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_power",
                      "oblivious power-assignment policies (extension)");
  auto& num_seeds = cli.AddInt("seeds", 8, "topologies per point");
  auto& num_links = cli.AddInt("links", 250, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"scenario", "policy", "algorithm", "links_scheduled",
                        "expected_throughput"});
  struct Scen {
    const char* name;
    bool diverse;
  };
  for (const Scen& scen : {Scen{"paper_5_20", false}, Scen{"diverse", true}}) {
    for (power::PowerPolicy policy :
         {power::PowerPolicy::kUniform, power::PowerPolicy::kLinear,
          power::PowerPolicy::kSquareRoot}) {
      for (const char* name : {"rle", "fading_greedy"}) {
        const auto scheduler = sched::MakeScheduler(name);
        mathx::RunningStats scheduled;
        mathx::RunningStats throughput;
        for (long long seed = 1; seed <= num_seeds; ++seed) {
          rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
          net::LinkSet raw;
          if (scen.diverse) {
            net::DiverseLengthScenarioParams dp;
            dp.length_octaves = 5;
            raw = net::MakeDiverseLengthScenario(
                static_cast<std::size_t>(num_links), dp, gen);
          } else {
            raw = net::MakeUniformScenario(
                static_cast<std::size_t>(num_links), {}, gen);
          }
          const net::LinkSet links =
              power::AssignPower(raw, params, policy, params.tx_power);
          const auto result = scheduler->Schedule(links, params);
          scheduled.Add(static_cast<double>(result.schedule.size()));
          throughput.Add(sim::ComputeExpectedMetrics(links, params,
                                                     result.schedule)
                             .expected_throughput);
        }
        util::CsvRowBuilder(table)
            .Add(std::string(scen.name))
            .Add(std::string(power::PolicyName(policy)))
            .Add(std::string(name))
            .Add(util::FormatDouble(scheduled.Mean(), 2))
            .Add(util::FormatDouble(throughput.Mean(), 3))
            .Commit();
      }
      std::fprintf(stderr, "[power] %s/%s done\n", scen.name,
                   power::PolicyName(policy));
    }
  }
  std::printf("# Ablation: power-assignment policies (alpha=3, eps=0.01, "
              "max power = channel P)\n");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
