// Graceful degradation of the distributed DLS protocol under control-plane
// faults: sweep beacon drop probability × node crash fraction, and report
// how the surviving schedule degrades (size, residual Corollary 3.1
// violations) plus what a feedback retry layer recovers on the data plane.
//
// The headline question: the paper proves the *fault-free* protocol ends
// Corollary 3.1-feasible — how fast does that guarantee erode when the
// control channel itself fades?
#include <cstdio>

#include "channel/interference.hpp"
#include "distsim/dls_protocol.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/feedback.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("fault_tolerance",
                      "DLS protocol degradation: drop prob x crash fraction");
  auto& num_seeds = cli.AddInt("seeds", 3, "topologies per cell");
  auto& num_links = cli.AddInt("links", 200, "links per topology");
  auto& outage = cli.AddDouble("outage", 0.0,
                               "crash outage seconds (<= 0 = permanent)");
  auto& csv_only = cli.AddBool("csv-only", false, "suppress pretty table");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"drop_prob", "crash_fraction", "scheduled",
                        "beacons_lost_frac", "violation_rate",
                        "silent_pruned", "retry_delivered_frac",
                        "retry_mean_delay"});
  const auto n = static_cast<std::size_t>(num_links);
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    for (double crash_fraction : {0.0, 0.1, 0.3}) {
      mathx::RunningStats scheduled, lost_frac, violation, pruned;
      mathx::RunningStats delivered, delay;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);

        distsim::DlsProtocolOptions options;
        options.fault.drop_probability = drop;
        options.fault.seed = 0xbadfade5ULL + static_cast<std::uint64_t>(seed);
        const double horizon =
            (options.contention_rounds + options.resolution_rounds + 1.0) *
            options.round_duration;
        options.fault.crashes = distsim::SampleCrashWindows(
            n, crash_fraction, horizon, outage,
            static_cast<std::uint64_t>(seed) * 977);

        const auto result = distsim::RunDlsProtocol(links, params, options);
        scheduled.Add(static_cast<double>(result.schedule.size()));
        lost_frac.Add(result.sim_stats.messages_sent == 0
                          ? 0.0
                          : static_cast<double>(result.beacons_lost) /
                                static_cast<double>(
                                    result.sim_stats.messages_sent));
        violation.Add(result.residual_violation_rate);
        pruned.Add(static_cast<double>(result.agents_silent_pruned));

        sched::FeedbackOptions retry;
        retry.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
        const auto fb = sched::RunFeedbackSchedule(links, params,
                                                   result.schedule, retry);
        delivered.Add(fb.delivered_rate_fraction);
        delay.Add(fb.delay_slots.Count() > 0 ? fb.delay_slots.Mean() : 0.0);
      }
      util::CsvRowBuilder(table)
          .Add(util::FormatDouble(drop, 2))
          .Add(util::FormatDouble(crash_fraction, 2))
          .Add(util::FormatDouble(scheduled.Mean(), 1))
          .Add(util::FormatDouble(lost_frac.Mean(), 3))
          .Add(util::FormatDouble(violation.Mean(), 3))
          .Add(util::FormatDouble(pruned.Mean(), 1))
          .Add(util::FormatDouble(delivered.Mean(), 3))
          .Add(util::FormatDouble(delay.Mean(), 2))
          .Commit();
      std::fprintf(stderr, "[fault] drop=%.2f crash=%.2f done\n", drop,
                   crash_fraction);
    }
  }
  std::printf("# DLS protocol degradation under control-plane faults "
              "(alpha=3, eps=0.01, n=%zu)\n", n);
  std::fputs(table.ToString().c_str(), stdout);
  if (!csv_only) std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
