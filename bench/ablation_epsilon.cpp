// Ablation: the outage budget ε. Larger ε loosens γ_ε = ln(1/(1-ε)),
// shrinking LDP's squares and RLE's elimination radius — more concurrent
// links at the cost of a higher tolerated failure rate. The bench traces
// that throughput/reliability frontier.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("ablation_epsilon", "outage-budget (epsilon) sweep");
  auto& num_seeds = cli.AddInt("seeds", 8, "topologies per point");
  auto& num_links = cli.AddInt("links", 300, "links per topology");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  util::CsvTable table({"epsilon", "algorithm", "links_scheduled",
                        "expected_throughput", "expected_failed"});
  for (double epsilon : {0.001, 0.005, 0.01, 0.05, 0.1, 0.2}) {
    channel::ChannelParams params;
    params.alpha = 3.0;
    params.epsilon = epsilon;
    for (const char* name : {"ldp", "rle", "fading_greedy"}) {
      const auto scheduler = sched::MakeScheduler(name);
      mathx::RunningStats scheduled;
      mathx::RunningStats throughput;
      mathx::RunningStats failed;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(
            static_cast<std::size_t>(num_links), {}, gen);
        const auto result = scheduler->Schedule(links, params);
        const auto metrics =
            sim::ComputeExpectedMetrics(links, params, result.schedule);
        scheduled.Add(static_cast<double>(result.schedule.size()));
        throughput.Add(metrics.expected_throughput);
        failed.Add(metrics.expected_failed);
      }
      util::CsvRowBuilder(table)
          .Add(util::FormatDouble(epsilon, 4))
          .Add(std::string(name))
          .Add(util::FormatDouble(scheduled.Mean(), 2))
          .Add(util::FormatDouble(throughput.Mean(), 3))
          .Add(util::FormatDouble(failed.Mean(), 4))
          .Commit();
    }
    std::fprintf(stderr, "[epsilon] %g done\n", epsilon);
  }
  std::printf("# Ablation: epsilon sweep (N=%lld, alpha=3)\n",
              static_cast<long long>(num_links));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
