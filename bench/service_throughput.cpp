// Service-level benchmark: cold vs warm request latency through the
// scenario/response cache, byte-determinism under a multi-worker batcher,
// and admission-control shedding under overload. Emits BENCH_service.json.
//
// With --check the exit code gates the PR's serving claims:
//   * warm (cached) serving ≥ 5× faster than cold at N = 2000 links,
//   * zero byte-level response divergence across ≥ 4 worker threads,
//   * a saturated queue sheds (status=shed, kind=transient, exit code 1).
#include <cmath>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "testing/corpus.hpp"
#include "util/atomic_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fadesched;

testing::ScenarioCase MakeCase(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams scenario;
  // Hold density constant across sizes so interference stays comparable.
  scenario.region_size = 500.0 * std::sqrt(static_cast<double>(n) / 300.0);
  testing::ScenarioCase out;
  out.links = net::MakeUniformScenario(n, scenario, gen);
  out.params.Validate();
  return out;
}

service::SchedulingRequest MakeRequest(const testing::ScenarioCase& scenario,
                                       const std::string& scheduler,
                                       const std::string& id) {
  service::SchedulingRequest request;
  request.scenario = scenario;
  request.scheduler = scheduler;
  request.id = id;
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("service_throughput",
                      "cold/warm cache latency, multi-worker determinism, "
                      "and overload shedding of the scheduling service");
  auto& n_links = cli.AddInt("links", 2000, "instance size for cold vs warm");
  auto& scheduler = cli.AddString("scheduler", "rle", "scheduler under test");
  auto& warm_reps = cli.AddInt("warm-reps", 20, "warm-path repetitions");
  auto& det_workers = cli.AddInt("det-workers", 4,
                                 "batcher workers for the determinism run");
  auto& det_requests = cli.AddInt("det-requests", 200,
                                  "requests in the determinism run");
  auto& out_path = cli.AddString("out", "BENCH_service.json", "JSON output");
  auto& check = cli.AddBool(
      "check", false, "exit 1 unless speedup >= 5, zero divergence, and the "
      "overloaded queue shed");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  // --- 1. Cold vs warm at N = n_links -------------------------------------
  const testing::ScenarioCase big =
      MakeCase(static_cast<std::size_t>(n_links), 20260805);
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::string cold_line, warm_line;
  {
    service::SchedulingService svc;  // fresh cache: first request is cold
    const service::SchedulingRequest request =
        MakeRequest(big, scheduler, "cold");
    util::Stopwatch cold_timer;
    service::SchedulingResponse response = svc.HandleNow(request);
    cold_ms = cold_timer.Seconds() * 1e3;
    if (!response.Ok()) {
      std::fprintf(stderr, "cold request failed: %s\n",
                   response.message.c_str());
      return util::kExitRuntime;
    }
    cold_line = service::FormatResponseLine(response);

    double best = cold_ms;
    for (long long r = 0; r < warm_reps; ++r) {
      util::Stopwatch warm_timer;
      response = svc.HandleNow(request);
      const double ms = warm_timer.Seconds() * 1e3;
      if (r == 0 || ms < best) best = ms;
      warm_line = service::FormatResponseLine(response);
    }
    warm_ms = best;
  }
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const bool deterministic_pair = cold_line == warm_line;

  // --- 2. Byte-determinism under a multi-worker batcher -------------------
  std::size_t det_mismatches = 0;
  {
    service::ServiceOptions options;
    options.batcher.num_workers = static_cast<std::size_t>(det_workers);
    service::SchedulingService svc(options);
    constexpr std::size_t kPool = 8;
    std::vector<testing::ScenarioCase> pool;
    for (std::size_t i = 0; i < kPool; ++i) {
      pool.push_back(MakeCase(80, 1000 + i));
    }
    std::vector<std::future<service::SchedulingResponse>> futures;
    futures.reserve(static_cast<std::size_t>(det_requests));
    for (long long i = 0; i < det_requests; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) % kPool;
      futures.push_back(svc.Submit(
          MakeRequest(pool[p], scheduler, "r" + std::to_string(p))));
    }
    std::vector<std::string> first(kPool);
    for (long long i = 0; i < det_requests; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) % kPool;
      const std::string line = service::FormatResponseLine(
          futures[static_cast<std::size_t>(i)].get());
      if (first[p].empty()) {
        first[p] = line;
      } else if (first[p] != line) {
        ++det_mismatches;
      }
    }
    svc.Drain();
  }

  // --- 3. Overload: a saturated queue must shed ---------------------------
  std::size_t shed_count = 0;
  int shed_exit_code = 0;
  std::string shed_kind;
  {
    service::ServiceOptions options;
    options.batcher.num_workers = 1;
    options.batcher.queue_capacity = 8;
    service::SchedulingService svc(options);
    const testing::ScenarioCase slow = MakeCase(300, 7);
    std::vector<std::future<service::SchedulingResponse>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(svc.Submit(
          MakeRequest(slow, scheduler, "o" + std::to_string(i))));
    }
    for (auto& future : futures) {
      const service::SchedulingResponse response = future.get();
      if (response.status == service::ResponseStatus::kShed) {
        ++shed_count;
        shed_exit_code = response.ExitCode();
        shed_kind = util::ErrorKindName(response.error_kind);
      }
    }
    svc.Drain();
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"links\": " << n_links << ",\n";
  json << "  \"scheduler\": \"" << scheduler << "\",\n";
  json.precision(4);
  json << std::fixed;
  json << "  \"cold_ms\": " << cold_ms << ",\n";
  json << "  \"warm_ms\": " << warm_ms << ",\n";
  json << "  \"warm_speedup\": " << speedup << ",\n";
  json << "  \"cold_warm_bytes_identical\": "
       << (deterministic_pair ? "true" : "false") << ",\n";
  json << "  \"determinism\": {\"workers\": " << det_workers
       << ", \"requests\": " << det_requests
       << ", \"mismatches\": " << det_mismatches << "},\n";
  json << "  \"overload\": {\"queue_capacity\": 8, \"submitted\": 64, "
       << "\"shed\": " << shed_count << ", \"shed_error_kind\": \""
       << shed_kind << "\", \"shed_exit_code\": " << shed_exit_code << "}\n";
  json << "}\n";
  util::AtomicWriteFile(out_path, json.str());
  std::fputs(json.str().c_str(), stdout);

  if (check) {
    const bool ok = speedup >= 5.0 && deterministic_pair &&
                    det_mismatches == 0 && shed_count > 0 &&
                    shed_exit_code == util::kExitRuntime;
    if (!ok) {
      std::fprintf(stderr, "service_throughput --check FAILED\n");
      return util::kExitRuntime;
    }
  }
  return util::kExitOk;
}
