// Service-level benchmark: cold vs warm request latency through the
// scenario/response cache, byte-determinism under a multi-worker batcher,
// and admission-control shedding under overload. Emits BENCH_service.json.
//
// With --check the exit code gates the PR's serving claims:
//   * warm (cached) serving ≥ 5× faster than cold at N = 2000 links,
//   * zero byte-level response divergence across ≥ 4 worker threads,
//   * a saturated queue sheds (status=shed, kind=transient, exit code 1).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <filesystem>
#include <memory>

#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "service/client.hpp"
#include "service/loadgen.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/shard/shard_server.hpp"
#include "testing/corpus.hpp"
#include "util/atomic_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fadesched;

testing::ScenarioCase MakeCase(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  net::UniformScenarioParams scenario;
  // Hold density constant across sizes so interference stays comparable.
  scenario.region_size = 500.0 * std::sqrt(static_cast<double>(n) / 300.0);
  testing::ScenarioCase out;
  out.links = net::MakeUniformScenario(n, scenario, gen);
  out.params.Validate();
  return out;
}

service::SchedulingRequest MakeRequest(const testing::ScenarioCase& scenario,
                                       const std::string& scheduler,
                                       const std::string& id) {
  service::SchedulingRequest request;
  request.scenario = scenario;
  request.scheduler = scheduler;
  request.id = id;
  return request;
}

// Same deterministic warm/cold interleaving as the loadgen: request i is
// warm iff the Bresenham accumulator crosses an integer at i.
bool IsWarmIndex(std::size_t i, double hot_fraction) {
  return std::floor(static_cast<double>(i + 1) * hot_fraction) >
         std::floor(static_cast<double>(i) * hot_fraction);
}

// One point of the open-loop throughput/latency curve.
struct LoadPoint {
  double multiplier = 0.0;
  double offered_rps = 0.0;
  /// Submissions per second the pacing thread actually achieved; when
  /// this falls below offered_rps the arrival process, not the service,
  /// was the bottleneck, and the point understates the intended load.
  double achieved_rps = 0.0;
  std::size_t requests = 0;
  std::size_t warm_ok = 0, cold_ok = 0;
  std::size_t warm_shed = 0, cold_shed = 0;
  std::size_t timed_out = 0;
  /// Service-side percentiles (enqueue → response ready, per-class
  /// histograms in ServiceMetrics): the latency the serving tier is
  /// answerable for, free of the bench's own client-thread scheduling
  /// noise — which on a small CI box dwarfs the service's contribution.
  double warm_p50_ms = 0.0, warm_p99_ms = 0.0, cold_p99_ms = 0.0;
  /// Client-observed p99s (submit → future consumed) for comparison.
  double observed_warm_p99_ms = 0.0, observed_cold_p99_ms = 0.0;
  std::uint64_t brownout_entries = 0;
};

// One row of the shard-scaling series.
struct ShardPoint {
  std::size_t shards = 0;
  double capacity_rps = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::size_t requests = 0;
  std::size_t ok = 0, shed = 0;
  double warm_p50_ms = 0.0, warm_p99_ms = 0.0;
  double warm_corrected_p99_ms = 0.0;
  double cold_p99_ms = 0.0, cold_corrected_p99_ms = 0.0;
  double warm_hit_rate = 0.0;
};

// Response-cache hit rate over the *measured* window only: the delta of
// the tier-aggregate counters, so the fill pass and the calibration burst
// don't dilute the number.
double HitRateDelta(const service::StatsSnapshot& before,
                    const service::StatsSnapshot& after) {
  service::StatsSnapshot delta;
  delta.response_hits = after.response_hits - before.response_hits;
  delta.response_misses = after.response_misses - before.response_misses;
  return delta.WarmHitRate();
}

std::string ShardSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("fs_bench_shard_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("service_throughput",
                      "cold/warm cache latency, multi-worker determinism, "
                      "and overload shedding of the scheduling service");
  auto& n_links = cli.AddInt("links", 2000, "instance size for cold vs warm");
  auto& scheduler = cli.AddString("scheduler", "rle", "scheduler under test");
  auto& warm_reps = cli.AddInt("warm-reps", 20, "warm-path repetitions");
  auto& det_workers = cli.AddInt("det-workers", 4,
                                 "batcher workers for the determinism run");
  auto& det_requests = cli.AddInt("det-requests", 200,
                                  "requests in the determinism run");
  auto& load_links = cli.AddInt("load-links", 600,
                                "instance size for the open-loop curve");
  auto& load_requests = cli.AddInt("load-requests", 400,
                                   "request floor per open-loop load point");
  auto& load_seconds = cli.AddDouble(
      "load-seconds", 1.2,
      "target duration per load point; must comfortably exceed the "
      "controller's interval or shedding can never engage");
  auto& load_workers = cli.AddInt("load-workers", 2,
                                  "batcher workers for the open-loop curve");
  // The default keeps the post-shed residual (warm work that cannot be
  // shed under the cold-only policy) well below capacity even at 2×
  // offered load — a controller can only defend the warm p99 when the
  // unsheddable work itself still fits the machine. On a single-core CI
  // box that means warm requests must be a modest share of the offered
  // *work*, hence 0.5 rather than a production-like 0.9.
  auto& hot_fraction = cli.AddDouble(
      "hot-fraction", 0.5, "warm share of the open-loop request mix");
  auto& shard_links = cli.AddInt("shard-links", 150,
                                 "instance size for the shard-scaling series");
  auto& shard_pool = cli.AddInt("shard-pool", 30,
                                "warm working set for the shard series; "
                                "sized to overflow ONE shard's cache");
  auto& shard_cache_kb = cli.AddInt(
      "shard-cache-kb", 2048,
      "per-shard scenario/response cache budget — the fixed resource that "
      "sharding multiplies");
  auto& shard_requests = cli.AddInt(
      "shard-requests", 600, "measured requests per shard-scaling point");
  auto& out_path = cli.AddString("out", "BENCH_service.json", "JSON output");
  auto& check = cli.AddBool(
      "check", false, "exit 1 unless speedup >= 5, zero divergence, the "
      "overloaded queue shed, sharding scales capacity, and affinity beats "
      "round-robin on warm hits");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  // --- 1. Cold vs warm at N = n_links -------------------------------------
  const testing::ScenarioCase big =
      MakeCase(static_cast<std::size_t>(n_links), 20260805);
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::string cold_line, warm_line;
  {
    service::SchedulingService svc;  // fresh cache: first request is cold
    const service::SchedulingRequest request =
        MakeRequest(big, scheduler, "cold");
    util::Stopwatch cold_timer;
    service::SchedulingResponse response = svc.HandleNow(request);
    cold_ms = cold_timer.Seconds() * 1e3;
    if (!response.Ok()) {
      std::fprintf(stderr, "cold request failed: %s\n",
                   response.message.c_str());
      return util::kExitRuntime;
    }
    cold_line = service::FormatResponseLine(response);

    double best = cold_ms;
    for (long long r = 0; r < warm_reps; ++r) {
      util::Stopwatch warm_timer;
      response = svc.HandleNow(request);
      const double ms = warm_timer.Seconds() * 1e3;
      if (r == 0 || ms < best) best = ms;
      warm_line = service::FormatResponseLine(response);
    }
    warm_ms = best;
  }
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const bool deterministic_pair = cold_line == warm_line;

  // --- 2. Byte-determinism under a multi-worker batcher -------------------
  std::size_t det_mismatches = 0;
  {
    service::ServiceOptions options;
    options.batcher.num_workers = static_cast<std::size_t>(det_workers);
    // This section measures byte-determinism, not admission: every request
    // in the burst is a first-touch cold (responses are not cached at
    // submit time), so the queue must hold all of them. The cold-lane
    // bulkhead caps colds at half the shared bound, hence capacity = 2×
    // the burst size, and the delay controller is off (target 0).
    options.batcher.queue_capacity = 2 * static_cast<std::size_t>(det_requests);
    options.batcher.overload.queue_delay_target_ms = 0.0;
    service::SchedulingService svc(options);
    constexpr std::size_t kPool = 8;
    std::vector<testing::ScenarioCase> pool;
    for (std::size_t i = 0; i < kPool; ++i) {
      pool.push_back(MakeCase(80, 1000 + i));
    }
    std::vector<std::future<service::SchedulingResponse>> futures;
    futures.reserve(static_cast<std::size_t>(det_requests));
    for (long long i = 0; i < det_requests; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) % kPool;
      futures.push_back(svc.Submit(
          MakeRequest(pool[p], scheduler, "r" + std::to_string(p))));
    }
    std::vector<std::string> first(kPool);
    for (long long i = 0; i < det_requests; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) % kPool;
      const std::string line = service::FormatResponseLine(
          futures[static_cast<std::size_t>(i)].get());
      if (first[p].empty()) {
        first[p] = line;
      } else if (first[p] != line) {
        ++det_mismatches;
      }
    }
    svc.Drain();
  }

  // --- 3. Overload: a saturated queue must shed ---------------------------
  std::size_t shed_count = 0;
  int shed_exit_code = 0;
  std::string shed_kind;
  {
    service::ServiceOptions options;
    options.batcher.num_workers = 1;
    options.batcher.queue_capacity = 8;
    service::SchedulingService svc(options);
    const testing::ScenarioCase slow = MakeCase(300, 7);
    std::vector<std::future<service::SchedulingResponse>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(svc.Submit(
          MakeRequest(slow, scheduler, "o" + std::to_string(i))));
    }
    for (auto& future : futures) {
      const service::SchedulingResponse response = future.get();
      if (response.status == service::ResponseStatus::kShed) {
        ++shed_count;
        shed_exit_code = response.ExitCode();
        shed_kind = util::ErrorKindName(response.error_kind);
      }
    }
    svc.Drain();
  }

  // --- 4. Open-loop throughput vs client-observed p99 ---------------------
  // Offered load is paced by the wall clock (open loop: a slow service
  // does not slow the arrival process), at multiples of an empirically
  // calibrated capacity. The controller's job under 2× overload: shed
  // cold requests, keep warm p99 near the uncontended value. Each series
  // entry reports achieved_rps next to offered_rps — on a small CI box
  // the pacing thread timeshares with the workers, and the delta is the
  // honest record of how much of the intended load actually arrived.
  // Timing here is recorded, never gated — CI boxes are too noisy for
  // latency assertions.
  const std::size_t kLoadLinks = static_cast<std::size_t>(load_links);
  const std::size_t kLoadWorkers = static_cast<std::size_t>(load_workers);
  const std::size_t kLoadRequests = static_cast<std::size_t>(load_requests);
  double cold_small_ms = 0.0;
  double warm_small_ms = 0.0;
  {
    service::SchedulingService svc;
    for (int i = 0; i < 3; ++i) {
      const testing::ScenarioCase scenario =
          MakeCase(kLoadLinks, 5000 + static_cast<std::uint64_t>(i));
      util::Stopwatch timer;
      svc.HandleNow(MakeRequest(scenario, scheduler, "m" + std::to_string(i)));
      cold_small_ms += timer.Seconds() * 1e3 / 3.0;
    }
    const service::SchedulingRequest warm_probe =
        MakeRequest(MakeCase(kLoadLinks, 5000), scheduler, "m0");
    double best = cold_small_ms;
    for (int r = 0; r < 10; ++r) {
      util::Stopwatch timer;
      svc.HandleNow(warm_probe);
      best = std::min(best, timer.Seconds() * 1e3);
    }
    warm_small_ms = best;
  }
  // Capacity is calibrated empirically — a closed-loop burst of the same
  // warm/cold mix through the same Submit path, controller off and the
  // queue wide open so nothing sheds. This folds in every real cost the
  // analytic workers/service-time figure misses: fingerprinting on the
  // submit thread, scenario generation for colds, and (on small CI boxes)
  // the arrival and service paths timesharing the same cores.
  double capacity_rps = 0.0;
  {
    service::ServiceOptions options;
    options.batcher.num_workers = kLoadWorkers;
    options.batcher.queue_capacity = 1 << 14;
    options.batcher.overload.queue_delay_target_ms = 0.0;
    service::SchedulingService svc(options);
    constexpr std::size_t kPool = 8;
    std::vector<service::SchedulingRequest> warm_pool;
    for (std::size_t p = 0; p < kPool; ++p) {
      warm_pool.push_back(MakeRequest(MakeCase(kLoadLinks, 8000 + p),
                                      scheduler, "w" + std::to_string(p)));
      svc.HandleNow(warm_pool.back());
    }
    constexpr std::size_t kCalibration = 1000;
    std::vector<std::future<service::SchedulingResponse>> futures;
    futures.reserve(kCalibration);
    util::Stopwatch timer;
    for (std::size_t i = 0; i < kCalibration; ++i) {
      futures.push_back(svc.Submit(
          IsWarmIndex(i, hot_fraction)
              ? warm_pool[i % kPool]
              : MakeRequest(MakeCase(kLoadLinks, 7000 + i), scheduler,
                            "k" + std::to_string(i))));
    }
    for (auto& future : futures) future.get();
    capacity_rps = static_cast<double>(kCalibration) / timer.Seconds();
    svc.Drain();
  }

  std::vector<LoadPoint> curve;
  for (const double multiplier : {0.5, 1.0, 2.0}) {
    LoadPoint point;
    point.multiplier = multiplier;
    point.offered_rps = multiplier * capacity_rps;
    // Each point must run long enough for sustained queue delay to
    // outlast the controller's interval, so the request count scales
    // with the offered rate instead of being fixed.
    point.requests = std::max(
        kLoadRequests,
        static_cast<std::size_t>(point.offered_rps * load_seconds));

    service::ServiceOptions options;
    options.batcher.num_workers = kLoadWorkers;
    // Tighter than the production defaults (5 ms target / 100 ms
    // interval): at these request rates an interval of queued work is
    // what the warm tail rides out, so a fast-reacting controller is
    // what keeps the p99 curve flat. Brownout likewise engages early —
    // on a small box every cold build milli-second is CPU stolen from
    // the warm lane's worker.
    options.batcher.overload.queue_delay_target_ms = 1.0;
    options.batcher.overload.interval_ms = 10.0;
    options.batcher.overload.brownout_enter_factor = 2.0;
    options.batcher.overload.brownout_exit_factor = 0.5;
    service::SchedulingService svc(options);

    // Pre-warmed pool: these are the cache hits of the steady state.
    constexpr std::size_t kPool = 8;
    std::vector<service::SchedulingRequest> warm_pool;
    for (std::size_t p = 0; p < kPool; ++p) {
      warm_pool.push_back(MakeRequest(MakeCase(kLoadLinks, 8000 + p),
                                      scheduler, "w" + std::to_string(p)));
      svc.HandleNow(warm_pool.back());
    }
    using SteadyClock = std::chrono::steady_clock;
    struct Pending {
      std::future<service::SchedulingResponse> future;
      SteadyClock::time_point submitted;
    };
    // One collector per class: within a class the batcher is FIFO, so
    // in-order get() observes completion times faithfully. A single
    // shared collector would charge a lagging cold build's wait to every
    // warm completion queued behind it in the inbox — exactly the skew
    // the warm-priority queue exists to remove.
    struct Lane {
      std::deque<Pending> inbox;
      std::mutex mutex;
      std::condition_variable ready;
      bool done = false;
      std::size_t ok = 0, shed = 0, timed_out = 0;
      service::LatencyHistogram hist;
      std::thread collector;

      void Start() {
        collector = std::thread([this] {
          for (;;) {
            Pending pending;
            {
              std::unique_lock<std::mutex> lock(mutex);
              ready.wait(lock, [this] { return !inbox.empty() || done; });
              if (inbox.empty()) return;
              pending = std::move(inbox.front());
              inbox.pop_front();
            }
            const service::SchedulingResponse response =
                pending.future.get();
            if (response.Ok()) {
              hist.Record(std::chrono::duration<double>(SteadyClock::now() -
                                                        pending.submitted)
                              .count());
              ok += 1;
            } else if (response.status == service::ResponseStatus::kShed) {
              shed += 1;
            } else if (response.status ==
                       service::ResponseStatus::kTimeout) {
              timed_out += 1;
            }
          }
        });
      }
      void Push(Pending pending) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          inbox.push_back(std::move(pending));
        }
        ready.notify_one();
      }
      void Finish() {
        {
          std::lock_guard<std::mutex> lock(mutex);
          done = true;
        }
        ready.notify_all();
        collector.join();
      }
    };
    Lane warm_lane, cold_lane;
    warm_lane.Start();
    cold_lane.Start();

    const auto interarrival =
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(1.0 / point.offered_rps));
    const SteadyClock::time_point start = SteadyClock::now();
    std::size_t cold_next = 0;
    for (std::size_t i = 0; i < point.requests; ++i) {
      std::this_thread::sleep_until(
          start + interarrival * static_cast<std::int64_t>(i));
      const bool warm = IsWarmIndex(i, hot_fraction);
      // Cold scenarios are unique (guaranteed cache misses), generated
      // lazily here so a long run never holds thousands of instances in
      // memory at once. The clock for this request starts *after*
      // generation — scenario construction is the client's cost, not the
      // service's.
      service::SchedulingRequest request =
          warm ? warm_pool[i % kPool]
               : MakeRequest(MakeCase(kLoadLinks, 9000 + i), scheduler,
                             "c" + std::to_string(cold_next++));
      Pending pending;
      pending.submitted = SteadyClock::now();
      pending.future = svc.Submit(std::move(request));
      (warm ? warm_lane : cold_lane).Push(std::move(pending));
    }
    point.achieved_rps =
        static_cast<double>(point.requests) /
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    warm_lane.Finish();
    cold_lane.Finish();
    svc.Drain();

    point.warm_ok = warm_lane.ok;
    point.cold_ok = cold_lane.ok;
    point.warm_shed = warm_lane.shed;
    point.cold_shed = cold_lane.shed;
    point.timed_out = warm_lane.timed_out + cold_lane.timed_out;
    point.warm_p50_ms = svc.Metrics().warm_total_latency.Percentile(0.50) * 1e3;
    point.warm_p99_ms = svc.Metrics().warm_total_latency.Percentile(0.99) * 1e3;
    point.cold_p99_ms = svc.Metrics().cold_total_latency.Percentile(0.99) * 1e3;
    point.observed_warm_p99_ms = warm_lane.hist.Percentile(0.99) * 1e3;
    point.observed_cold_p99_ms = cold_lane.hist.Percentile(0.99) * 1e3;
    point.brownout_entries = svc.Metrics().brownout_entries.load();
    curve.push_back(point);
  }

  // --- 5. Shard scaling: cache capacity is the multiplied resource --------
  // On a single-core box sharding cannot add CPU, so the scaling story is
  // the one the consistent-hash router actually tells: each shard worker
  // owns a fixed-size cache, and fingerprint affinity makes the tier's
  // effective cache capacity N× one shard's. The warm pool is sized to
  // overflow one shard's cache (LRU + cyclic replay → every "warm" request
  // is really a rebuild) but to fit comfortably once split 8 ways — so
  // aggregate throughput at a fixed p99 budget rises with the shard count
  // even though the core count does not.
  const std::size_t kShardLinks = static_cast<std::size_t>(shard_links);
  const std::size_t kShardPool = static_cast<std::size_t>(shard_pool);
  const std::size_t kShardRequests = static_cast<std::size_t>(shard_requests);
  const std::size_t kShardCacheBytes =
      static_cast<std::size_t>(shard_cache_kb) << 10;

  const auto run_shard_point = [&](std::size_t shards,
                                   service::shard::RoutingMode routing,
                                   std::size_t pool, std::size_t requests,
                                   double hot, const char* tag) {
    service::shard::ShardServerOptions options;
    options.server.unix_socket_path = ShardSocketPath(tag);
    options.server.service.batcher.num_workers = 1;
    options.server.service.cache.capacity_bytes = kShardCacheBytes;
    // Matrix backend: the memoized engine carries the O(N²) factor matrix,
    // which makes a cache entry genuinely expensive to rebuild (~1 ms at
    // N=150) and expensive to hold (~210 KB) — the regime where cache
    // capacity, the resource sharding multiplies, decides throughput. The
    // default tables backend would make entries so small and rebuilds so
    // cheap that every shard count would serve the pool equally well.
    options.server.service.cache.engine.backend =
        channel::FactorBackend::kMatrix;
    options.num_shards = shards;
    options.routing = routing;
    options.completion_threads_per_shard = 1;
    options.supervisor.drain_grace_seconds = 10.0;
    service::shard::ShardServer server(options);
    server.Start();
    std::thread serving([&server] { server.Serve(); });

    ShardPoint point;
    point.shards = shards;
    try {
      service::LoadgenOptions load;
      load.unix_socket_path = options.server.unix_socket_path;
      load.connections = 4;
      load.pool_size = pool;
      load.links = kShardLinks;
      load.seed = 42;
      load.scheduler = scheduler;
      load.hot_fraction = hot;
      load.multiplex = true;

      // Fill pass: one visit per pool entry, so the measured passes start
      // from whatever steady state this shard count can actually hold.
      load.num_requests = pool;
      service::RunLoadgen(load);

      // Closed-loop calibration: the tier's capacity for this mix.
      load.num_requests = requests;
      const service::LoadgenReport calibration = service::RunLoadgen(load);
      point.capacity_rps = calibration.throughput_rps;

      service::Client stats_client;
      stats_client.ConnectUnix(options.server.unix_socket_path);
      const service::StatsSnapshot before = stats_client.Stats();

      // Open loop at 0.8× capacity: below saturation, so the p99s are
      // queue-free and comparable across shard counts at a fixed budget.
      load.rate_per_sec = 0.8 * point.capacity_rps;
      const service::LoadgenReport measured = service::RunLoadgen(load);
      const service::StatsSnapshot after = stats_client.Stats();
      stats_client.Close();

      point.offered_rps = load.rate_per_sec;
      point.achieved_rps = measured.throughput_rps;
      point.requests = measured.sent;
      point.ok = measured.ok;
      point.shed = measured.shed;
      point.warm_p50_ms = measured.warm_p50_ms;
      point.warm_p99_ms = measured.warm_p99_ms;
      point.warm_corrected_p99_ms = measured.warm_corrected_p99_ms;
      point.cold_p99_ms = measured.cold_p99_ms;
      point.cold_corrected_p99_ms = measured.cold_corrected_p99_ms;
      point.warm_hit_rate = HitRateDelta(before, after);
    } catch (...) {
      server.Stop();
      serving.join();
      throw;
    }
    server.Stop();
    serving.join();
    return point;
  };

  // 90% pool replays + 10% unique colds: the colds populate the cold
  // percentiles and keep a trickle of eviction pressure on every shard.
  std::vector<ShardPoint> shard_series;
  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    shard_series.push_back(
        run_shard_point(shards, service::shard::RoutingMode::kAffinity,
                        kShardPool, kShardRequests, 0.9,
                        ("s" + std::to_string(shards)).c_str()));
  }

  // Routing comparison at 4 shards: identical seeded traffic, only the
  // placement policy differs. Pool size 25 fits each shard's cache under
  // affinity (~6 scenarios per shard) and, being coprime with 4, makes
  // round-robin cycle every scenario across every shard — each shard then
  // sees the whole pool and thrashes. Any hit-rate gap is pure routing.
  const ShardPoint affinity_point =
      run_shard_point(4, service::shard::RoutingMode::kAffinity, 25,
                      kShardRequests, 1.0, "aff");
  const ShardPoint round_robin_point =
      run_shard_point(4, service::shard::RoutingMode::kRoundRobin, 25,
                      kShardRequests, 1.0, "rr");

  std::ostringstream json;
  json << "{\n";
  json << "  \"links\": " << n_links << ",\n";
  json << "  \"scheduler\": \"" << scheduler << "\",\n";
  json.precision(4);
  json << std::fixed;
  json << "  \"cold_ms\": " << cold_ms << ",\n";
  json << "  \"warm_ms\": " << warm_ms << ",\n";
  json << "  \"warm_speedup\": " << speedup << ",\n";
  json << "  \"cold_warm_bytes_identical\": "
       << (deterministic_pair ? "true" : "false") << ",\n";
  json << "  \"determinism\": {\"workers\": " << det_workers
       << ", \"requests\": " << det_requests
       << ", \"mismatches\": " << det_mismatches << "},\n";
  json << "  \"overload\": {\"queue_capacity\": 8, \"submitted\": 64, "
       << "\"shed\": " << shed_count << ", \"shed_error_kind\": \""
       << shed_kind << "\", \"shed_exit_code\": " << shed_exit_code << "},\n";
  json << "  \"throughput_vs_p99\": {\n";
  json << "    \"links\": " << load_links << ",\n";
  json << "    \"workers\": " << load_workers << ",\n";
  json << "    \"hot_fraction\": " << hot_fraction << ",\n";
  json << "    \"cold_ms\": " << cold_small_ms << ",\n";
  json << "    \"warm_ms\": " << warm_small_ms << ",\n";
  json << "    \"capacity_rps\": " << capacity_rps << ",\n";
  json << "    \"series\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const LoadPoint& point = curve[i];
    json << "      {\"multiplier\": " << point.multiplier
         << ", \"offered_rps\": " << point.offered_rps
         << ", \"achieved_rps\": " << point.achieved_rps
         << ", \"requests\": " << point.requests
         << ", \"warm_ok\": " << point.warm_ok
         << ", \"cold_ok\": " << point.cold_ok
         << ", \"warm_shed\": " << point.warm_shed
         << ", \"cold_shed\": " << point.cold_shed
         << ", \"timed_out\": " << point.timed_out
         << ", \"warm_p50_ms\": " << point.warm_p50_ms
         << ", \"warm_p99_ms\": " << point.warm_p99_ms
         << ", \"cold_p99_ms\": " << point.cold_p99_ms
         << ", \"observed_warm_p99_ms\": " << point.observed_warm_p99_ms
         << ", \"observed_cold_p99_ms\": " << point.observed_cold_p99_ms
         << ", \"brownout_entries\": " << point.brownout_entries << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "    ]\n";
  json << "  },\n";
  json << "  \"shard_scaling\": {\n";
  json << "    \"links\": " << shard_links << ",\n";
  json << "    \"pool\": " << shard_pool << ",\n";
  json << "    \"per_shard_cache_bytes\": " << kShardCacheBytes << ",\n";
  json << "    \"series\": [\n";
  for (std::size_t i = 0; i < shard_series.size(); ++i) {
    const ShardPoint& point = shard_series[i];
    json << "      {\"shards\": " << point.shards
         << ", \"capacity_rps\": " << point.capacity_rps
         << ", \"offered_rps\": " << point.offered_rps
         << ", \"achieved_rps\": " << point.achieved_rps
         << ", \"requests\": " << point.requests
         << ", \"ok\": " << point.ok
         << ", \"shed\": " << point.shed
         << ", \"warm_p50_ms\": " << point.warm_p50_ms
         << ", \"warm_p99_ms\": " << point.warm_p99_ms
         << ", \"warm_corrected_p99_ms\": " << point.warm_corrected_p99_ms
         << ", \"cold_p99_ms\": " << point.cold_p99_ms
         << ", \"cold_corrected_p99_ms\": " << point.cold_corrected_p99_ms
         << ", \"warm_hit_rate\": " << point.warm_hit_rate << "}"
         << (i + 1 < shard_series.size() ? "," : "") << "\n";
  }
  json << "    ],\n";
  json << "    \"routing_comparison\": {\"shards\": 4, \"pool\": 25, "
       << "\"affinity_hit_rate\": " << affinity_point.warm_hit_rate
       << ", \"affinity_capacity_rps\": " << affinity_point.capacity_rps
       << ", \"round_robin_hit_rate\": " << round_robin_point.warm_hit_rate
       << ", \"round_robin_capacity_rps\": "
       << round_robin_point.capacity_rps << "}\n";
  json << "  }\n";
  json << "}\n";
  util::AtomicWriteFile(out_path, json.str());
  std::fputs(json.str().c_str(), stdout);

  if (check) {
    // Shard gates mirror the issue's acceptance criteria: the tier's
    // capacity must grow with the shard count (cache multiplication, not
    // CPU — so the bar is 1.3×, not N×), and fingerprint affinity must
    // strictly beat round-robin on warm hits under identical traffic.
    const bool shards_scale =
        shard_series.back().capacity_rps >
        1.3 * shard_series.front().capacity_rps;
    const bool affinity_wins =
        affinity_point.warm_hit_rate > round_robin_point.warm_hit_rate;
    const bool ok = speedup >= 5.0 && deterministic_pair &&
                    det_mismatches == 0 && shed_count > 0 &&
                    shed_exit_code == util::kExitRuntime && shards_scale &&
                    affinity_wins;
    if (!ok) {
      std::fprintf(stderr,
                   "service_throughput --check FAILED "
                   "(shards_scale=%d affinity_wins=%d)\n",
                   shards_scale ? 1 : 0, affinity_wins ? 1 : 0);
      return util::kExitRuntime;
    }
  }
  return util::kExitOk;
}
