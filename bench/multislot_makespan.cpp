// Multi-slot extension bench (paper §VII future work): slots needed to
// schedule *all* links, by one-shot scheduler, as N grows. Also reports
// the rate-weighted mean completion slot (a latency proxy) and validity
// of every slot under the fading criterion.
#include <cstdio>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "multislot/coloring.hpp"
#include "multislot/multislot.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("multislot_makespan",
                      "slots to schedule all links (paper's future work)");
  auto& num_seeds = cli.AddInt("seeds", 5, "topologies per point");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  util::CsvTable table({"num_links", "algorithm", "slots",
                        "mean_links_per_slot", "rate_weighted_completion",
                        "all_slots_feasible"});
  for (std::size_t n : {100, 200, 300, 400}) {
    for (const char* name :
         {"ldp", "rle", "fading_greedy", "dls", "graph_coloring"}) {
      mathx::RunningStats slots;
      mathx::RunningStats completion;
      bool all_feasible = true;
      for (long long seed = 1; seed <= num_seeds; ++seed) {
        rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
        const net::LinkSet links = net::MakeUniformScenario(n, {}, gen);
        const multislot::Frame frame =
            std::string(name) == "graph_coloring"
                ? multislot::ColorConflictGraph(links, params)
                : multislot::ScheduleAllLinks(links, params, name);
        slots.Add(static_cast<double>(frame.NumSlots()));
        completion.Add(frame.RateWeightedCompletion(links));
        all_feasible &= multislot::FrameIsValid(links, params, frame);
      }
      util::CsvRowBuilder(table)
          .Add(n)
          .Add(std::string(name))
          .Add(util::FormatDouble(slots.Mean(), 1))
          .Add(util::FormatDouble(static_cast<double>(n) / slots.Mean(), 2))
          .Add(util::FormatDouble(completion.Mean(), 1))
          .Add(std::string(all_feasible ? "yes" : "no"))
          .Commit();
    }
    std::fprintf(stderr, "[multislot] n=%zu done\n", n);
  }
  std::printf("# Multi-slot extension: frame length to drain all links "
              "(alpha=3, eps=0.01)\n");
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
