// Queue-dynamics bench (extension): mean backlog, delivery delay, and
// per-transmission failure rate as offered load grows, per scheduler.
//
// A deliberately honest experiment: when only the *backlogged* links are
// rescheduled each slot, the active subsets are sparse at moderate loads,
// so the aggressive deterministic baseline delivers more and queues less
// despite its fading failures — per-slot capacity dominates queue
// stability. The fading-resistance guarantee buys per-transmission
// reliability (every scheduled packet arrives with prob ≥ 1−ε, relevant
// for deadline traffic), not raw queue throughput. The failure-rate
// column makes the trade explicit.
#include <cstdio>

#include "channel/params.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/queue_sim.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("queue_delay_vs_load",
                      "queueing delay vs offered load (extension)");
  auto& num_links = cli.AddInt("links", 150, "links in the network");
  auto& num_slots = cli.AddInt("slots", 1500, "simulated slots");
  auto& seed = cli.AddInt("seed", 5, "topology seed");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet links = net::MakeUniformScenario(
      static_cast<std::size_t>(num_links), {}, gen);

  util::CsvTable table({"arrival_prob", "algorithm", "mean_backlog",
                        "mean_delay_slots", "delivered", "failure_rate_pct"});
  for (double load : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    for (const char* name :
         {"ldp", "rle", "fading_greedy", "approx_diversity"}) {
      const auto scheduler = sched::MakeScheduler(name);
      sim::QueueSimOptions options;
      options.num_slots = static_cast<std::size_t>(num_slots);
      options.warmup_slots = options.num_slots / 5;
      options.arrival_probability = load;
      const sim::QueueSimResult result =
          sim::RunQueueSimulation(links, params, *scheduler, options);
      util::CsvRowBuilder(table)
          .Add(util::FormatDouble(load, 3))
          .Add(std::string(name))
          .Add(util::FormatDouble(result.backlog.Mean(), 1))
          .Add(util::FormatDouble(result.delay_slots.Mean(), 1))
          .Add(static_cast<long long>(result.delivered))
          .Add(util::FormatDouble(100.0 * result.FailureRate(), 2))
          .Commit();
    }
    std::fprintf(stderr, "[queue] load=%g done\n", load);
  }
  std::printf("# Queue dynamics: backlog/delay vs offered load "
              "(N=%lld, alpha=3, eps=0.01, %lld slots)\n",
              static_cast<long long>(num_links),
              static_cast<long long>(num_slots));
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%s\n", table.ToPrettyString().c_str());
  if (!out_path.empty()) table.Save(out_path);
  return 0;
}
