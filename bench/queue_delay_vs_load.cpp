// Queue-dynamics bench (extension): mean backlog, delivery delay (mean
// and p95), and per-transmission failure rate as offered load grows, per
// scheduler — now on the dynamics subsystem's slotted simulator and the
// crash-safe RunMetricSweep harness (checkpoint/resume, watchdog, atomic
// --out, exit code 3 on interrupt). The same numbers feed the
// delay_vs_load section of BENCH_stability.json (bench/stability_frontier).
//
// A deliberately honest experiment: when only the *backlogged* links are
// rescheduled each slot, the active subsets are sparse at moderate loads,
// so the aggressive deterministic baseline delivers more and queues less
// despite its fading failures — per-slot capacity dominates queue
// stability. The fading-resistance guarantee buys per-transmission
// reliability (every scheduled packet arrives with prob ≥ 1−ε, relevant
// for deadline traffic), not raw queue throughput. The failure-rate
// column makes the trade explicit.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "channel/params.hpp"
#include "dynamics/slotted_sim.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fadesched;
  util::CliParser cli("queue_delay_vs_load",
                      "queueing delay vs offered load (extension)");
  auto& num_links = cli.AddInt("links", 150, "links in the network");
  auto& num_slots = cli.AddInt("slots", 1500, "simulated slots");
  auto& seed = cli.AddInt("seed", 5, "topology seed");
  auto& seeds = cli.AddInt("seeds", 1, "simulation seeds per point");
  auto& loads_text = cli.AddString(
      "loads", "0.005,0.01,0.02,0.04,0.08", "comma-separated arrival rates");
  auto& algorithms_text = cli.AddString(
      "algorithms", "ldp,rle,fading_greedy,approx_diversity",
      "comma-separated schedulers");
  auto& family_text =
      cli.AddString("arrivals", "bernoulli", "arrival family");
  auto& checkpoint = cli.AddString(
      "checkpoint", "", "checkpoint file (enables crash-safe resume)");
  auto& resume =
      cli.AddBool("resume", false, "resume from --checkpoint if it exists");
  auto& out_path = cli.AddString("out", "", "write the CSV here (atomic)");
  if (!cli.Parse(argc, argv)) return cli.UsageExitCode();

  channel::ChannelParams params;
  params.alpha = 3.0;

  dynamics::ArrivalFamily family = dynamics::ArrivalFamily::kBernoulli;
  FS_CHECK_MSG(dynamics::ParseArrivalFamily(family_text, family),
               "unknown --arrivals family '" + family_text + "'");

  rng::Xoshiro256 gen(static_cast<std::uint64_t>(seed));
  const net::LinkSet links = net::MakeUniformScenario(
      static_cast<std::size_t>(num_links), {}, gen);

  sim::MetricSweepSpec spec;
  spec.name = "queue_delay_vs_load";
  spec.x_name = "arrival_prob";
  for (const std::string& token : util::Split(loads_text, ',')) {
    const auto value = util::ParseDouble(util::Trim(token));
    FS_CHECK_MSG(value.has_value(), "malformed --loads value: '" + token +
                                        "'");
    spec.xs.push_back(*value);
  }
  for (const std::string& token : util::Split(algorithms_text, ',')) {
    const std::string name(util::Trim(token));
    if (!name.empty()) spec.series.push_back(name);
  }
  spec.metrics = {"mean_backlog", "mean_delay_slots", "delay_p95",
                  "delivered", "failure_rate_pct"};
  spec.num_seeds = static_cast<std::size_t>(seeds);
  {
    std::uint64_t h = sim::FingerprintInit();
    h = sim::FingerprintMix64(h, static_cast<std::uint64_t>(num_links));
    h = sim::FingerprintMix64(h, static_cast<std::uint64_t>(num_slots));
    h = sim::FingerprintMix64(h, static_cast<std::uint64_t>(seed));
    h = sim::FingerprintMixString(h, family_text);
    spec.config_fingerprint = h;
  }
  spec.run_seed = [&](std::size_t point, std::size_t series,
                      std::size_t seed_index,
                      const util::Deadline& /*deadline*/) {
    dynamics::DynamicsOptions options;
    options.num_slots = static_cast<std::size_t>(num_slots);
    options.warmup_slots = options.num_slots / 5;
    options.seed = static_cast<std::uint64_t>(seed) + seed_index;
    options.arrivals.family = family;
    options.arrivals.rate = spec.xs[point];
    dynamics::DynamicsResult result = dynamics::RunSlottedSimulation(
        links, params, spec.series[series], options);
    std::sort(result.delay_samples.begin(), result.delay_samples.end());
    const double p95 = result.delay_samples.empty()
                           ? 0.0
                           : mathx::Percentile(result.delay_samples, 0.95);
    return std::vector<double>{result.backlog.Mean(),
                               result.delay_slots.Mean(), p95,
                               static_cast<double>(result.ledger.delivered),
                               100.0 * result.FailureRate()};
  };

  sim::MetricSweepOptions options;
  options.checkpoint_path = checkpoint;
  options.resume = resume;
  options.out_path = out_path;

  const sim::MetricSweepResult result = sim::RunMetricSweep(spec, options);
  std::printf("# Queue dynamics: backlog/delay vs offered load "
              "(N=%lld, alpha=3, eps=0.01, %lld slots, %s arrivals)\n",
              static_cast<long long>(num_links),
              static_cast<long long>(num_slots), family_text.c_str());
  std::fputs(result.table.ToString().c_str(), stdout);
  std::printf("\n%s\n", result.table.ToPrettyString().c_str());
  if (result.interrupted) {
    std::fprintf(stderr, "interrupted: %zu/%zu points complete\n",
                 result.points_completed, result.points_total);
  }
  return result.ExitCode();
}
