// google-benchmark: Monte-Carlo simulator throughput (trials/second) as a
// function of schedule size and thread count.
#include <benchmark/benchmark.h>

#include "channel/params.hpp"
#include "net/scenario.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace fadesched;

void BM_SimulateSchedule(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 gen(7);
  const net::LinkSet links = net::MakeUniformScenario(m, {}, gen);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  channel::ChannelParams params;
  params.alpha = 3.0;
  util::ThreadPool pool(1);
  sim::SimOptions options;
  options.trials = 200;
  for (auto _ : state) {
    const auto result =
        sim::SimulateSchedule(links, params, schedule, options, pool);
    benchmark::DoNotOptimize(result.failed_per_trial.Mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.trials));
}
// UseRealTime: the trials run on pool threads, so the main thread's CPU
// time is near zero and would make google-benchmark over-iterate wildly.
BENCHMARK(BM_SimulateSchedule)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->UseRealTime();

void BM_SimulateThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  rng::Xoshiro256 gen(8);
  const net::LinkSet links = net::MakeUniformScenario(64, {}, gen);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) schedule.push_back(i);
  channel::ChannelParams params;
  params.alpha = 3.0;
  util::ThreadPool pool(threads);
  sim::SimOptions options;
  options.trials = 1000;
  for (auto _ : state) {
    const auto result =
        sim::SimulateSchedule(links, params, schedule, options, pool);
    benchmark::DoNotOptimize(result.throughput_per_trial.Mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.trials));
}
BENCHMARK(BM_SimulateThreads)->DenseRange(1, 4, 1)->UseRealTime();

}  // namespace
