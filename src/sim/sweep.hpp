// Crash-safe, resumable sweep driver — the harness every figure bench
// runs on.
//
// RunExperimentSweep executes RunExperimentPoint-style work (points ×
// seeds × algorithms) with the robustness layer the fire-and-forget loop
// lacked:
//
//   * checkpoint/resume: progress is persisted atomically after every
//     completed seed; a killed sweep resumes from the checkpoint and
//     re-aggregates bit-identically to an uninterrupted run (guarded by a
//     config fingerprint so a changed sweep refuses a stale checkpoint);
//   * watchdog + bounded retries: each seed runs under an optional
//     deadline; transient failures are retried, timeouts and exhausted
//     retries degrade to a recorded failed_seeds count instead of
//     aborting the sweep, and fatal errors (programming bugs) still
//     abort loudly;
//   * graceful shutdown: SIGINT/SIGTERM checkpoints, flushes the partial
//     CSV atomically, and reports "interrupted" so callers can exit with
//     the distinct status code 3.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/csv.hpp"
#include "util/deadline.hpp"

namespace fadesched::sim {

/// What to sweep: one experiment point per x value.
struct SweepSpec {
  /// Stable sweep identifier (e.g. the bench name); part of the
  /// checkpoint fingerprint so two different benches cannot consume each
  /// other's checkpoints.
  std::string name;
  std::string x_name;
  std::vector<double> xs;
  std::function<ExperimentPoint(double)> make_point;
};

/// Bounded-retry + watchdog policy, applied per seed.
struct RetryPolicy {
  /// Total attempts per seed (first run + retries). Only transient
  /// errors are retried; timeouts and fatal errors never are.
  std::size_t max_attempts = 2;
  /// Per-seed watchdog deadline in seconds; 0 disables the watchdog.
  double seed_deadline_seconds = 0.0;
};

struct SweepOptions {
  ExperimentConfig config;
  RetryPolicy retry;

  /// Checkpoint file; empty disables checkpointing. The file is written
  /// atomically after every completed seed and removed after a fully
  /// successful sweep unless keep_checkpoint is set.
  std::string checkpoint_path;
  /// Resume from checkpoint_path if it exists. A checkpoint written
  /// under a different configuration refuses to load (fatal error).
  bool resume = false;
  bool keep_checkpoint = false;

  /// Final CSV destination (atomic write); empty = caller handles the
  /// table. On interruption the partial table is still flushed here.
  std::string out_path;

  /// Record scheduler runtimes as 0 so the output CSV is byte-identical
  /// across runs — required by the kill-and-resume golden test and any
  /// caller diffing CSVs. Folded into the checkpoint fingerprint.
  bool deterministic = false;

  /// Fault-drill/test hook, invoked after every checkpoint persist with
  /// (point_index, seeds_done, point_complete). The kill-and-resume
  /// test SIGKILLs itself from here.
  std::function<void(std::size_t, std::size_t, bool)> after_checkpoint;
};

struct SweepResult {
  util::CsvTable table;
  bool interrupted = false;         ///< stopped on SIGINT/SIGTERM
  std::size_t points_total = 0;
  std::size_t points_completed = 0; ///< includes resumed points
  std::size_t points_resumed = 0;   ///< complete before this run started
  std::size_t seeds_resumed = 0;    ///< seeds restored from checkpoint
  std::size_t failed_seeds = 0;     ///< degraded, excluded from aggregates
  std::size_t timed_out_seeds = 0;  ///< subset of failed: watchdog fired
  std::size_t retried_seeds = 0;    ///< transient failures that retried

  /// 0 on success (even with degraded seeds), 3 when interrupted.
  [[nodiscard]] int ExitCode() const;
};

/// Runs the sweep. Throws HarnessError(kFatal) for unrecoverable
/// conditions (corrupt/mismatched checkpoint, programming errors);
/// everything else is absorbed into the result counters.
SweepResult RunExperimentSweep(const SweepSpec& spec,
                               const SweepOptions& options);

/// A generic crash-safe sweep: points (x values) × seeds × series, each
/// seed of each series yielding one double per metric. Same checkpoint /
/// retry / watchdog / graceful-shutdown machinery as RunExperimentSweep,
/// but the measurement is caller-supplied instead of hardwired to the
/// one-shot experiment pipeline — the dynamics benches (queue delay vs
/// load, the stability frontier) run on this.
struct MetricSweepSpec {
  /// Stable sweep identifier; part of the checkpoint fingerprint.
  std::string name;
  std::string x_name;
  std::vector<double> xs;
  /// Row labels, e.g. scheduler names. Whitespace-free (they are
  /// checkpoint tokens and CSV cells).
  std::vector<std::string> series;
  /// Column labels; each becomes `<metric>_mean` / `<metric>_ci95`.
  std::vector<std::string> metrics;
  std::size_t num_seeds = 1;
  /// Hash of every caller option that shapes results (mix with the
  /// Fingerprint* helpers); combined with name/xs/series/metrics/seeds
  /// to guard resume.
  std::uint64_t config_fingerprint = 0;
  /// run_seed(point_index, series_index, seed_index, deadline) → one
  /// value per metric, in metrics order. Runs under the retry policy:
  /// throw TimeoutError for watchdog expiry (never retried),
  /// InterruptedError for shutdown, anything non-fatal for a transient
  /// failure (retried up to the attempt budget).
  std::function<std::vector<double>(std::size_t, std::size_t, std::size_t,
                                    const util::Deadline&)>
      run_seed;
};

struct MetricSweepOptions {
  RetryPolicy retry;
  std::string checkpoint_path;
  bool resume = false;
  bool keep_checkpoint = false;
  /// Final CSV destination (atomic write); the partial table is flushed
  /// here on interruption too.
  std::string out_path;
  /// Same fault-drill hook as SweepOptions::after_checkpoint.
  std::function<void(std::size_t, std::size_t, bool)> after_checkpoint;
};

struct MetricSweepResult {
  /// Columns: x_name, "series", then mean/ci95 per metric. One row per
  /// (x, series) once the point completes.
  util::CsvTable table;
  bool interrupted = false;
  std::size_t points_total = 0;
  std::size_t points_completed = 0;
  std::size_t points_resumed = 0;
  std::size_t seeds_resumed = 0;
  std::size_t failed_seeds = 0;
  std::size_t timed_out_seeds = 0;
  std::size_t retried_seeds = 0;

  /// 0 on success (even with degraded seeds), 3 when interrupted.
  [[nodiscard]] int ExitCode() const;
};

MetricSweepResult RunMetricSweep(const MetricSweepSpec& spec,
                                 const MetricSweepOptions& options);

}  // namespace fadesched::sim
