// Closed-form expectations under the Rayleigh model (Theorem 3.1), the
// analytic counterpart of the Monte-Carlo simulator:
//
//   Pr(link j decodes) = exp(−Σ_{i∈P\j} f_ij)
//   E[#failed]         = Σ_j (1 − Pr(j decodes))
//   E[throughput]      = Σ_j λ_j · Pr(j decodes)
//
// Per-link successes are NOT independent events (they share the same
// interferers' fades), so only these expectations — not variances — follow
// directly from the per-link marginal; the tests cross-check them against
// the simulator.
#pragma once

#include <vector>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::sim {

struct ExpectedMetrics {
  double expected_failed = 0.0;
  double expected_throughput = 0.0;
  /// Pr(decodes) per scheduled link, indexed like the schedule.
  std::vector<double> link_success_probability;
};

ExpectedMetrics ComputeExpectedMetrics(const net::LinkSet& links,
                                       const channel::ChannelParams& params,
                                       const net::Schedule& schedule);

}  // namespace fadesched::sim
