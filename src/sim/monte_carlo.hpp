// Monte-Carlo transmission simulator under the Rayleigh-fading model.
//
// For a fixed schedule P, each trial draws every instantaneous power
// Z_ij ~ Exp(mean P·d_ij^{-α}) independently (paper §II), computes each
// scheduled receiver's SINR X_j = Z_jj / Σ_{i∈P\j} Z_ij, and records which
// links decode (X_j ≥ γ_th). The paper's evaluation metrics — number of
// failed transmissions and throughput — are per-trial functionals whose
// distribution we summarize across trials.
//
// Trials are split across a thread pool; every trial owns a dedicated
// xoshiro256++ stream derived from the master seed, so results are
// bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/params.hpp"
#include "sim/fading_models.hpp"
#include "mathx/stats.hpp"
#include "net/link_set.hpp"
#include "util/deadline.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::sim {

struct SimOptions {
  std::size_t trials = 2000;
  std::uint64_t seed = 42;
  /// 0 = use the pool's thread count; simulation is deterministic either way.
  unsigned threads = 0;
  /// Channel realization model; defaults to the paper's Rayleigh fading.
  FadingOptions fading;

  /// Watchdog: trial chunks poll this deadline and abort the whole
  /// simulation with HarnessError(kTimeout) once it expires. Disabled by
  /// default. Timed-out runs produce NO partial result — the harness
  /// records the seed as failed instead.
  util::Deadline deadline;

  /// Throws CheckFailure unless trials > 0 and the fading options validate.
  void Validate() const {
    FS_CHECK_MSG(trials > 0, "need at least one trial");
    fading.Validate();
  }
};

struct SimResult {
  /// Distribution of the per-trial count of scheduled links that failed.
  mathx::RunningStats failed_per_trial;
  /// Distribution of per-trial successfully delivered rate Σ λ_j·1[X_j≥γ].
  mathx::RunningStats throughput_per_trial;
  /// Empirical per-link success frequency, indexed like `schedule`.
  std::vector<double> link_success_rate;
  std::size_t trials = 0;
  std::size_t scheduled_links = 0;
};

/// Simulates `schedule` transmitting simultaneously for `options.trials`
/// independent fading realizations, using `pool` for parallelism.
SimResult SimulateSchedule(const net::LinkSet& links,
                           const channel::ChannelParams& params,
                           const net::Schedule& schedule,
                           const SimOptions& options,
                           util::ThreadPool& pool);

/// Convenience overload with a private single-thread pool.
SimResult SimulateSchedule(const net::LinkSet& links,
                           const channel::ChannelParams& params,
                           const net::Schedule& schedule,
                           const SimOptions& options);

}  // namespace fadesched::sim
