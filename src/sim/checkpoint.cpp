#include "sim/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/atomic_io.hpp"
#include "util/error.hpp"

namespace fadesched::sim {
namespace {

// The seven AlgoSummary accumulators, in serialization order.
constexpr const char* kStatNames[] = {
    "scheduled_links",   "claimed_rate",        "measured_failed",
    "measured_throughput", "expected_failed",   "expected_throughput",
    "runtime_ms",
};

mathx::RunningStats* StatsField(AlgoSummary& s, std::size_t i) {
  mathx::RunningStats* fields[] = {
      &s.scheduled_links,   &s.claimed_rate,        &s.measured_failed,
      &s.measured_throughput, &s.expected_failed,   &s.expected_throughput,
      &s.runtime_ms,
  };
  return fields[i];
}

const mathx::RunningStats* StatsField(const AlgoSummary& s, std::size_t i) {
  return StatsField(const_cast<AlgoSummary&>(s), i);
}

/// C99 hex-float literal: exact double round-trip, locale-independent.
std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

double ParseHexDouble(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    throw util::FatalError("checkpoint: malformed double '" + token + "'");
  }
  return value;
}

/// Pulls the next whitespace-separated token; throws on EOF.
std::string NextToken(std::istringstream& is, const char* what) {
  std::string token;
  if (!(is >> token)) {
    throw util::FatalError(std::string("checkpoint: truncated while reading ") +
                           what);
  }
  return token;
}

std::size_t NextSize(std::istringstream& is, const char* what) {
  const std::string token = NextToken(is, what);
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    throw util::FatalError(std::string("checkpoint: malformed count for ") +
                           what + ": '" + token + "'");
  }
  return static_cast<std::size_t>(value);
}

void ExpectToken(std::istringstream& is, const char* expected) {
  const std::string token = NextToken(is, expected);
  if (token != expected) {
    throw util::FatalError("checkpoint: expected '" + std::string(expected) +
                           "', found '" + token + "'");
  }
}

}  // namespace

std::string SweepCheckpoint::Serialize() const {
  std::ostringstream os;
  os << "fadesched-sweep-checkpoint " << kFormatVersion << "\n";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, fingerprint);
  os << "fingerprint " << fp << "\n";
  os << "points " << points.size() << "\n";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const PointCheckpoint& point = points[p];
    os << "point " << p << " " << HexDouble(point.x) << " seeds_done "
       << point.seeds_done << " failed " << point.failed_seeds
       << " timed_out " << point.timed_out_seeds << " complete "
       << (point.complete ? 1 : 0) << "\n";
    os << "algos " << point.summaries.size() << "\n";
    for (const AlgoSummary& summary : point.summaries) {
      os << "algo " << summary.algorithm << "\n";
      for (std::size_t i = 0; i < 7; ++i) {
        const mathx::RunningStats* stats = StatsField(summary, i);
        os << "stat " << kStatNames[i] << " " << stats->Count() << " "
           << HexDouble(stats->RawMean()) << " " << HexDouble(stats->RawM2())
           << " " << HexDouble(stats->Min()) << " " << HexDouble(stats->Max())
           << "\n";
      }
    }
  }
  os << "end\n";
  return os.str();
}

SweepCheckpoint SweepCheckpoint::Deserialize(const std::string& text) {
  std::istringstream is(text);
  ExpectToken(is, "fadesched-sweep-checkpoint");
  const std::size_t version = NextSize(is, "format version");
  if (version != static_cast<std::size_t>(kFormatVersion)) {
    throw util::FatalError(
        "checkpoint: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  SweepCheckpoint checkpoint;
  ExpectToken(is, "fingerprint");
  {
    const std::string token = NextToken(is, "fingerprint");
    char* end = nullptr;
    checkpoint.fingerprint = std::strtoull(token.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      throw util::FatalError("checkpoint: malformed fingerprint '" + token +
                             "'");
    }
  }
  ExpectToken(is, "points");
  const std::size_t num_points = NextSize(is, "point count");
  checkpoint.points.resize(num_points);
  for (std::size_t p = 0; p < num_points; ++p) {
    PointCheckpoint& point = checkpoint.points[p];
    ExpectToken(is, "point");
    const std::size_t index = NextSize(is, "point index");
    if (index != p) {
      throw util::FatalError("checkpoint: point index out of order");
    }
    point.x = ParseHexDouble(NextToken(is, "point x"));
    ExpectToken(is, "seeds_done");
    point.seeds_done = NextSize(is, "seeds_done");
    ExpectToken(is, "failed");
    point.failed_seeds = NextSize(is, "failed seeds");
    ExpectToken(is, "timed_out");
    point.timed_out_seeds = NextSize(is, "timed out seeds");
    ExpectToken(is, "complete");
    point.complete = NextSize(is, "complete flag") != 0;
    ExpectToken(is, "algos");
    const std::size_t num_algos = NextSize(is, "algo count");
    point.summaries.resize(num_algos);
    for (std::size_t a = 0; a < num_algos; ++a) {
      AlgoSummary& summary = point.summaries[a];
      ExpectToken(is, "algo");
      summary.algorithm = NextToken(is, "algorithm name");
      for (std::size_t i = 0; i < 7; ++i) {
        ExpectToken(is, "stat");
        const std::string name = NextToken(is, "stat name");
        if (name != kStatNames[i]) {
          throw util::FatalError("checkpoint: expected stat '" +
                                 std::string(kStatNames[i]) + "', found '" +
                                 name + "'");
        }
        const std::size_t count = NextSize(is, "stat count");
        const double mean = ParseHexDouble(NextToken(is, "stat mean"));
        const double m2 = ParseHexDouble(NextToken(is, "stat m2"));
        const double min = ParseHexDouble(NextToken(is, "stat min"));
        const double max = ParseHexDouble(NextToken(is, "stat max"));
        *StatsField(summary, i) =
            mathx::RunningStats::FromRawMoments(count, mean, m2, min, max);
      }
    }
  }
  ExpectToken(is, "end");
  return checkpoint;
}

void SweepCheckpoint::Save(const std::string& path) const {
  util::AtomicWriteFile(path, Serialize());
}

bool SweepCheckpoint::Load(const std::string& path,
                           std::uint64_t expected_fingerprint,
                           SweepCheckpoint& out) {
  if (!util::FileExists(path)) return false;
  out = Deserialize(util::ReadFileToString(path));
  if (out.fingerprint != expected_fingerprint) {
    throw util::FatalError(
        "checkpoint '" + path +
        "' was written under a different sweep configuration "
        "(fingerprint mismatch); delete it or rerun with the original "
        "flags to resume");
  }
  return true;
}

namespace {

/// Series/metric names are embedded as whitespace-separated tokens, so a
/// name with whitespace would corrupt the framing — refuse loudly.
void CheckTokenName(const std::string& name, const char* what) {
  if (name.empty() ||
      name.find_first_of(" \t\r\n") != std::string::npos) {
    throw util::FatalError(std::string("checkpoint: ") + what + " name '" +
                           name + "' must be nonempty with no whitespace");
  }
}

void WriteStats(std::ostringstream& os, const mathx::RunningStats& stats) {
  os << "stat " << stats.Count() << " " << HexDouble(stats.RawMean()) << " "
     << HexDouble(stats.RawM2()) << " " << HexDouble(stats.Min()) << " "
     << HexDouble(stats.Max()) << "\n";
}

mathx::RunningStats ReadStats(std::istringstream& is) {
  ExpectToken(is, "stat");
  const std::size_t count = NextSize(is, "stat count");
  const double mean = ParseHexDouble(NextToken(is, "stat mean"));
  const double m2 = ParseHexDouble(NextToken(is, "stat m2"));
  const double min = ParseHexDouble(NextToken(is, "stat min"));
  const double max = ParseHexDouble(NextToken(is, "stat max"));
  return mathx::RunningStats::FromRawMoments(count, mean, m2, min, max);
}

}  // namespace

std::string MetricSweepCheckpoint::Serialize() const {
  std::ostringstream os;
  os << "fadesched-metric-checkpoint " << kFormatVersion << "\n";
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, fingerprint);
  os << "fingerprint " << fp << "\n";
  os << "series " << series.size();
  for (const std::string& name : series) {
    CheckTokenName(name, "series");
    os << " " << name;
  }
  os << "\n";
  os << "metrics " << metrics.size();
  for (const std::string& name : metrics) {
    CheckTokenName(name, "metric");
    os << " " << name;
  }
  os << "\n";
  os << "points " << points.size() << "\n";
  const std::size_t grid = series.size() * metrics.size();
  for (std::size_t p = 0; p < points.size(); ++p) {
    const MetricPointCheckpoint& point = points[p];
    if (point.stats.size() != grid) {
      throw util::FatalError(
          "checkpoint: metric point stats size does not match the "
          "series x metric grid");
    }
    os << "point " << p << " " << HexDouble(point.x) << " seeds_done "
       << point.seeds_done << " failed " << point.failed_seeds
       << " timed_out " << point.timed_out_seeds << " complete "
       << (point.complete ? 1 : 0) << "\n";
    for (const mathx::RunningStats& stats : point.stats) {
      WriteStats(os, stats);
    }
  }
  os << "end\n";
  return os.str();
}

MetricSweepCheckpoint MetricSweepCheckpoint::Deserialize(
    const std::string& text) {
  std::istringstream is(text);
  ExpectToken(is, "fadesched-metric-checkpoint");
  const std::size_t version = NextSize(is, "format version");
  if (version != static_cast<std::size_t>(kFormatVersion)) {
    throw util::FatalError(
        "checkpoint: unsupported metric format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  MetricSweepCheckpoint checkpoint;
  ExpectToken(is, "fingerprint");
  {
    const std::string token = NextToken(is, "fingerprint");
    char* end = nullptr;
    checkpoint.fingerprint = std::strtoull(token.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      throw util::FatalError("checkpoint: malformed fingerprint '" + token +
                             "'");
    }
  }
  ExpectToken(is, "series");
  checkpoint.series.resize(NextSize(is, "series count"));
  for (std::string& name : checkpoint.series) {
    name = NextToken(is, "series name");
  }
  ExpectToken(is, "metrics");
  checkpoint.metrics.resize(NextSize(is, "metric count"));
  for (std::string& name : checkpoint.metrics) {
    name = NextToken(is, "metric name");
  }
  ExpectToken(is, "points");
  const std::size_t num_points = NextSize(is, "point count");
  checkpoint.points.resize(num_points);
  const std::size_t grid =
      checkpoint.series.size() * checkpoint.metrics.size();
  for (std::size_t p = 0; p < num_points; ++p) {
    MetricPointCheckpoint& point = checkpoint.points[p];
    ExpectToken(is, "point");
    const std::size_t index = NextSize(is, "point index");
    if (index != p) {
      throw util::FatalError("checkpoint: point index out of order");
    }
    point.x = ParseHexDouble(NextToken(is, "point x"));
    ExpectToken(is, "seeds_done");
    point.seeds_done = NextSize(is, "seeds_done");
    ExpectToken(is, "failed");
    point.failed_seeds = NextSize(is, "failed seeds");
    ExpectToken(is, "timed_out");
    point.timed_out_seeds = NextSize(is, "timed out seeds");
    ExpectToken(is, "complete");
    point.complete = NextSize(is, "complete flag") != 0;
    point.stats.resize(grid);
    for (mathx::RunningStats& stats : point.stats) {
      stats = ReadStats(is);
    }
  }
  ExpectToken(is, "end");
  return checkpoint;
}

void MetricSweepCheckpoint::Save(const std::string& path) const {
  util::AtomicWriteFile(path, Serialize());
}

bool MetricSweepCheckpoint::Load(const std::string& path,
                                 std::uint64_t expected_fingerprint,
                                 MetricSweepCheckpoint& out) {
  if (!util::FileExists(path)) return false;
  out = Deserialize(util::ReadFileToString(path));
  if (out.fingerprint != expected_fingerprint) {
    throw util::FatalError(
        "checkpoint '" + path +
        "' was written under a different sweep configuration "
        "(fingerprint mismatch); delete it or rerun with the original "
        "flags to resume");
  }
  return true;
}

std::uint64_t FingerprintInit() { return 0xcbf29ce484222325ULL; }

std::uint64_t FingerprintMix64(std::uint64_t h, std::uint64_t value) {
  // FNV-1a over the 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t FingerprintMixDouble(std::uint64_t h, double value) {
  // Bit pattern, not numeric value: distinguishes -0.0/0.0 and NaNs,
  // which is fine — configs are authored as literals.
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return FingerprintMix64(h, bits);
}

std::uint64_t FingerprintMixString(std::uint64_t h, const std::string& text) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // Length terminator so {"ab","c"} and {"a","bc"} differ.
  return FingerprintMix64(h, text.size());
}

std::uint64_t FingerprintSweep(const std::string& sweep_name,
                               const std::vector<double>& xs,
                               const ExperimentConfig& config,
                               const std::vector<ExperimentPoint>& points) {
  std::uint64_t h = FingerprintInit();
  h = FingerprintMix64(h, SweepCheckpoint::kFormatVersion);
  h = FingerprintMixString(h, sweep_name);
  h = FingerprintMix64(h, xs.size());
  for (const double x : xs) h = FingerprintMixDouble(h, x);
  h = FingerprintMix64(h, config.algorithms.size());
  for (const std::string& algo : config.algorithms) {
    h = FingerprintMixString(h, algo);
  }
  h = FingerprintMix64(h, config.num_seeds);
  h = FingerprintMix64(h, config.base_seed);
  h = FingerprintMix64(h, config.trials);
  h = FingerprintMix64(h, static_cast<std::uint64_t>(config.fading.model));
  h = FingerprintMixDouble(h, config.fading.nakagami_m);
  h = FingerprintMixDouble(h, config.fading.shadowing_sigma_db);
  for (const ExperimentPoint& point : points) {
    h = FingerprintMix64(h, point.num_links);
    h = FingerprintMixDouble(h, point.channel.tx_power);
    h = FingerprintMixDouble(h, point.channel.alpha);
    h = FingerprintMixDouble(h, point.channel.gamma_th);
    h = FingerprintMixDouble(h, point.channel.epsilon);
    h = FingerprintMixDouble(h, point.channel.noise_power);
    h = FingerprintMixDouble(h, point.scenario.region_size);
    h = FingerprintMixDouble(h, point.scenario.min_link_length);
    h = FingerprintMixDouble(h, point.scenario.max_link_length);
    h = FingerprintMixDouble(h, point.scenario.rate);
  }
  return h;
}

}  // namespace fadesched::sim
