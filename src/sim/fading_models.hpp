// Generalized small-scale fading models for the simulator.
//
// The paper's analysis is exact for Rayleigh fading (exponential power
// gains). Real channels deviate — Nakagami-m captures more/less severe
// fading (m = 1 is Rayleigh; m → ∞ approaches the deterministic model),
// and log-normal shadowing adds slow large-scale variation. The simulator
// supports all three so the robustness bench can measure how schedules
// *calibrated for Rayleigh* behave when the channel is not Rayleigh.
// All models are normalized to E[power] = mean, so only the distribution
// shape changes.
#pragma once

#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::sim {

enum class FadingModel {
  kRayleigh,          ///< exponential power (the paper's model)
  kNakagami,          ///< Gamma(m, mean/m) power; m = 1 reduces to Rayleigh
  kShadowedRayleigh,  ///< Rayleigh × normalized log-normal shadowing
};

struct FadingOptions {
  FadingModel model = FadingModel::kRayleigh;
  /// Nakagami shape m > 0 (only for kNakagami). m < 1 is more severe than
  /// Rayleigh, m > 1 milder.
  double nakagami_m = 1.0;
  /// Shadowing standard deviation in dB (only for kShadowedRayleigh).
  double shadowing_sigma_db = 6.0;

  void Validate() const {
    FS_CHECK_MSG(nakagami_m > 0.0, "Nakagami m must be positive");
    FS_CHECK_MSG(shadowing_sigma_db >= 0.0, "shadowing sigma must be >= 0");
  }
};

/// One instantaneous power draw with E[power] = mean under the model.
template <typename Gen>
double DrawFadedPower(Gen& gen, double mean, const FadingOptions& options) {
  switch (options.model) {
    case FadingModel::kRayleigh:
      return rng::Exponential(gen, mean);
    case FadingModel::kNakagami:
      return rng::GammaSample(gen, options.nakagami_m,
                              mean / options.nakagami_m);
    case FadingModel::kShadowedRayleigh: {
      // Log-normal factor normalized to unit mean: the underlying normal
      // has σ_ln = σ_dB·ln(10)/10 and μ = −σ_ln²/2.
      const double sigma_ln =
          options.shadowing_sigma_db * 0.23025850929940457;
      const double shadow = std::exp(sigma_ln * rng::StandardNormal(gen) -
                                     0.5 * sigma_ln * sigma_ln);
      return rng::Exponential(gen, mean * shadow);
    }
  }
  FS_CHECK_MSG(false, "unknown fading model");
  return 0.0;
}

/// Model name for table output.
inline const char* FadingModelName(FadingModel model) {
  switch (model) {
    case FadingModel::kRayleigh: return "rayleigh";
    case FadingModel::kNakagami: return "nakagami";
    case FadingModel::kShadowedRayleigh: return "shadowed";
  }
  return "?";
}

}  // namespace fadesched::sim
