#include "sim/exact_metrics.hpp"

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"

namespace fadesched::sim {

ExpectedMetrics ComputeExpectedMetrics(const net::LinkSet& links,
                                       const channel::ChannelParams& params,
                                       const net::Schedule& schedule) {
  const channel::InterferenceCalculator calc(links, params);
  ExpectedMetrics out;
  out.link_success_probability.reserve(schedule.size());
  for (net::LinkId j : schedule) {
    const double p = channel::SuccessProbability(calc, schedule, j);
    out.link_success_probability.push_back(p);
    out.expected_failed += 1.0 - p;
    out.expected_throughput += links.Rate(j) * p;
  }
  return out;
}

}  // namespace fadesched::sim
