// Experiment runner: the harness behind every figure reproduction.
//
// One experiment *point* fixes the topology parameters and channel; the
// runner then, for each random seed, generates an instance, runs every
// requested scheduler, evaluates the schedule both by Monte-Carlo fading
// simulation and by the closed-form expectations, and aggregates across
// seeds. The benches sweep points (over N or α) and print CSV series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/scenario.hpp"
#include "sim/fading_models.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace fadesched::sim {

struct ExperimentPoint {
  std::size_t num_links = 100;
  channel::ChannelParams channel;
  net::UniformScenarioParams scenario;
};

struct ExperimentConfig {
  std::vector<std::string> algorithms;
  std::size_t num_seeds = 10;       ///< independent topologies per point
  std::uint64_t base_seed = 1;
  std::size_t trials = 1000;        ///< fading realizations per instance
  unsigned threads = 0;             ///< 0 = hardware concurrency
  FadingOptions fading;             ///< channel realization model
};

/// Per-algorithm aggregation across seeds; each RunningStats sample is one
/// seed's value (for measured_* that value is already a mean over trials).
struct AlgoSummary {
  std::string algorithm;
  mathx::RunningStats scheduled_links;
  mathx::RunningStats claimed_rate;        ///< Σ λ the scheduler selected
  mathx::RunningStats measured_failed;     ///< Monte-Carlo mean failures/slot
  mathx::RunningStats measured_throughput; ///< Monte-Carlo mean delivered rate
  mathx::RunningStats expected_failed;     ///< closed-form E[#failed]
  mathx::RunningStats expected_throughput; ///< closed-form E[throughput]
  mathx::RunningStats runtime_ms;          ///< scheduler wall time
};

std::vector<AlgoSummary> RunExperimentPoint(const ExperimentPoint& point,
                                            const ExperimentConfig& config,
                                            util::ThreadPool& pool);

/// CSV header used by all figure benches:
/// x,algorithm,links_scheduled,claimed_rate,failed_mean,failed_ci95,
/// throughput_mean,throughput_ci95,expected_failed,expected_throughput,
/// sched_ms
util::CsvTable MakeSummaryTable(const std::string& x_name);

/// Append one row per algorithm for the given x value.
void AppendSummaryRows(util::CsvTable& table, double x_value,
                       const std::vector<AlgoSummary>& summaries);

}  // namespace fadesched::sim
