// Versioned on-disk checkpoint of sweep progress.
//
// After every completed seed (and point) the sweep driver persists, via
// an atomic write, everything needed to resume bit-identically: for each
// point the per-algorithm AlgoSummary accumulators (raw Welford moments,
// serialized as C99 hex-float literals so doubles round-trip exactly),
// the number of seeds finished, and the failure counters. A fingerprint
// of the sweep configuration guards resume: a checkpoint written under a
// different config (other algorithms, seeds, trials, channel, topology)
// refuses to load rather than silently mixing incompatible aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace fadesched::sim {

/// Progress of one sweep point.
struct PointCheckpoint {
  double x = 0.0;                       ///< the sweep's x value
  std::size_t seeds_done = 0;           ///< seeds folded into `summaries`
  std::size_t failed_seeds = 0;         ///< seeds abandoned after retries
  std::size_t timed_out_seeds = 0;      ///< subset of failed: watchdog
  bool complete = false;                ///< all seeds accounted for
  std::vector<AlgoSummary> summaries;   ///< aggregates over finished seeds
};

struct SweepCheckpoint {
  static constexpr int kFormatVersion = 1;

  std::uint64_t fingerprint = 0;  ///< config hash; see FingerprintMix64
  std::vector<PointCheckpoint> points;

  /// Text round-trip. Serialize writes a line-oriented format with
  /// hex-float doubles; Parse throws HarnessError(kFatal) on any
  /// malformed or version-mismatched input.
  [[nodiscard]] std::string Serialize() const;
  static SweepCheckpoint Deserialize(const std::string& text);

  /// Atomic save; a crash mid-save leaves the previous checkpoint intact.
  void Save(const std::string& path) const;

  /// Loads `path` if it exists. Returns false (and leaves *this empty)
  /// when there is no checkpoint yet; throws HarnessError(kFatal) when
  /// the file exists but is corrupt, and when `expected_fingerprint`
  /// differs from the stored one — a changed config must not resume into
  /// a stale checkpoint.
  static bool Load(const std::string& path,
                   std::uint64_t expected_fingerprint, SweepCheckpoint& out);
};

/// Progress of one metric-sweep point (see RunMetricSweep): a
/// RunningStats accumulator per (series, metric), flattened row-major as
/// stats[series_index * num_metrics + metric_index].
struct MetricPointCheckpoint {
  double x = 0.0;
  std::size_t seeds_done = 0;
  std::size_t failed_seeds = 0;
  std::size_t timed_out_seeds = 0;
  bool complete = false;
  std::vector<mathx::RunningStats> stats;
};

/// Checkpoint for the generic metric sweep. Same persistence contract as
/// SweepCheckpoint (atomic save, hex-float round-trip, fingerprint-guarded
/// load), but the payload is the caller-defined series × metric grid
/// instead of the hardwired AlgoSummary.
struct MetricSweepCheckpoint {
  static constexpr int kFormatVersion = 1;

  std::uint64_t fingerprint = 0;
  std::vector<std::string> series;   ///< whitespace-free names
  std::vector<std::string> metrics;  ///< whitespace-free names
  std::vector<MetricPointCheckpoint> points;

  [[nodiscard]] std::string Serialize() const;
  static MetricSweepCheckpoint Deserialize(const std::string& text);
  void Save(const std::string& path) const;
  static bool Load(const std::string& path,
                   std::uint64_t expected_fingerprint,
                   MetricSweepCheckpoint& out);
};

/// FNV-1a-style 64-bit mixing helpers for config fingerprints.
std::uint64_t FingerprintInit();
std::uint64_t FingerprintMix64(std::uint64_t h, std::uint64_t value);
std::uint64_t FingerprintMixDouble(std::uint64_t h, double value);
std::uint64_t FingerprintMixString(std::uint64_t h, const std::string& text);

/// Fingerprint of everything that defines a sweep's results: sweep name,
/// x values, algorithms, seed/trial counts, fading options, and every
/// point's channel + scenario parameters.
std::uint64_t FingerprintSweep(const std::string& sweep_name,
                               const std::vector<double>& xs,
                               const ExperimentConfig& config,
                               const std::vector<ExperimentPoint>& points);

}  // namespace fadesched::sim
