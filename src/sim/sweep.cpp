#include "sim/sweep.hpp"

#include <cstdio>
#include <exception>

#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/checkpoint.hpp"
#include "sim/exact_metrics.hpp"
#include "sim/monte_carlo.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"
#include "util/stopwatch.hpp"

namespace fadesched::sim {
namespace {

/// One seed's measurements for one algorithm, held back from the shared
/// summaries until the whole seed succeeds — a seed that times out or
/// fails halfway contributes nothing, keeping aggregates well-defined.
struct SeedSample {
  double scheduled_links = 0.0;
  double claimed_rate = 0.0;
  double measured_failed = 0.0;
  double measured_throughput = 0.0;
  double expected_failed = 0.0;
  double expected_throughput = 0.0;
  double runtime_ms = 0.0;
};

/// Runs every algorithm on one seed's topology. Throws on timeout
/// (watchdog), interruption, or any scheduler/simulator error.
std::vector<SeedSample> RunOneSeed(
    const ExperimentPoint& point, const ExperimentConfig& config,
    const std::vector<sched::SchedulerPtr>& schedulers, std::size_t seed_index,
    const util::Deadline& deadline, bool deterministic,
    util::ThreadPool& pool) {
  rng::Xoshiro256 gen(config.base_seed + seed_index);
  const net::LinkSet links =
      net::MakeUniformScenario(point.num_links, point.scenario, gen);

  std::vector<SeedSample> samples(schedulers.size());
  for (std::size_t a = 0; a < schedulers.size(); ++a) {
    if (deadline.Expired()) {
      throw util::TimeoutError("seed " + std::to_string(seed_index) +
                               " exceeded its watchdog deadline");
    }
    if (util::ShutdownRequested()) {
      throw util::InterruptedError("shutdown requested");
    }
    util::Stopwatch watch;
    const sched::ScheduleResult result =
        schedulers[a]->Schedule(links, point.channel);
    const double sched_ms = watch.Milliseconds();

    SimOptions sim_options;
    sim_options.trials = config.trials;
    sim_options.fading = config.fading;
    sim_options.deadline = deadline;
    // Decorrelate fading draws across seeds and algorithms — the exact
    // formula RunExperimentPoint uses, so both drivers agree.
    sim_options.seed = (config.base_seed + seed_index) * 1000003ULL + a;
    const SimResult sim = SimulateSchedule(links, point.channel,
                                           result.schedule, sim_options, pool);
    const ExpectedMetrics expected =
        ComputeExpectedMetrics(links, point.channel, result.schedule);

    SeedSample& sample = samples[a];
    sample.scheduled_links = static_cast<double>(result.schedule.size());
    sample.claimed_rate = result.claimed_rate;
    sample.measured_failed = sim.failed_per_trial.Mean();
    sample.measured_throughput = sim.throughput_per_trial.Mean();
    sample.expected_failed = expected.expected_failed;
    sample.expected_throughput = expected.expected_throughput;
    sample.runtime_ms = deterministic ? 0.0 : sched_ms;
  }
  return samples;
}

void MergeSeed(std::vector<AlgoSummary>& summaries,
               const std::vector<SeedSample>& samples) {
  for (std::size_t a = 0; a < summaries.size(); ++a) {
    AlgoSummary& summary = summaries[a];
    const SeedSample& sample = samples[a];
    summary.scheduled_links.Add(sample.scheduled_links);
    summary.claimed_rate.Add(sample.claimed_rate);
    summary.measured_failed.Add(sample.measured_failed);
    summary.measured_throughput.Add(sample.measured_throughput);
    summary.expected_failed.Add(sample.expected_failed);
    summary.expected_throughput.Add(sample.expected_throughput);
    summary.runtime_ms.Add(sample.runtime_ms);
  }
}

std::vector<AlgoSummary> FreshSummaries(
    const std::vector<std::string>& algorithms) {
  std::vector<AlgoSummary> summaries;
  summaries.reserve(algorithms.size());
  for (const std::string& name : algorithms) {
    AlgoSummary summary;
    summary.algorithm = name;
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

}  // namespace

int SweepResult::ExitCode() const {
  return interrupted ? util::kExitInterrupted : util::kExitOk;
}

SweepResult RunExperimentSweep(const SweepSpec& spec,
                               const SweepOptions& options) {
  FS_CHECK_MSG(!spec.xs.empty(), "sweep has no x values");
  FS_CHECK_MSG(static_cast<bool>(spec.make_point), "sweep has no make_point");
  FS_CHECK_MSG(!options.config.algorithms.empty(), "no algorithms requested");
  FS_CHECK_MSG(options.config.num_seeds > 0, "need at least one seed");
  FS_CHECK_MSG(options.retry.max_attempts > 0, "need at least one attempt");

  // Materialize every point up front: the fingerprint must cover the full
  // sweep so resuming after editing the point lambda is refused.
  std::vector<ExperimentPoint> points;
  points.reserve(spec.xs.size());
  for (const double x : spec.xs) {
    points.push_back(spec.make_point(x));
    points.back().channel.Validate();
  }
  std::uint64_t fingerprint =
      FingerprintSweep(spec.name, spec.xs, options.config, points);
  fingerprint =
      FingerprintMix64(fingerprint, options.deterministic ? 1u : 0u);

  const bool checkpointing = !options.checkpoint_path.empty();
  SweepCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint;

  SweepResult result;
  result.points_total = spec.xs.size();

  if (checkpointing && options.resume &&
      SweepCheckpoint::Load(options.checkpoint_path, fingerprint,
                            checkpoint)) {
    FS_CHECK_MSG(checkpoint.points.size() == spec.xs.size(),
                 "checkpoint point count mismatch");
    for (const PointCheckpoint& point : checkpoint.points) {
      if (point.complete) ++result.points_resumed;
      result.seeds_resumed += point.seeds_done;
      result.failed_seeds += point.failed_seeds;
      result.timed_out_seeds += point.timed_out_seeds;
    }
  }
  checkpoint.points.resize(spec.xs.size());

  const auto persist = [&](std::size_t point_index, bool point_complete) {
    if (!checkpointing) return;
    checkpoint.Save(options.checkpoint_path);
    if (options.after_checkpoint) {
      options.after_checkpoint(point_index,
                               checkpoint.points[point_index].seeds_done,
                               point_complete);
    }
  };

  util::ThreadPool pool(options.config.threads);
  util::ScopedSignalGuard signal_guard;

  const auto flush_partial = [&] {
    if (!options.out_path.empty()) result.table.Save(options.out_path);
  };

  result.table = MakeSummaryTable(spec.x_name);
  for (std::size_t p = 0; p < spec.xs.size(); ++p) {
    const double x = spec.xs[p];
    PointCheckpoint& point_state = checkpoint.points[p];
    point_state.x = x;

    if (point_state.complete) {
      // Restored from checkpoint: re-emit rows from the stored aggregates;
      // FormatDouble of bit-identical doubles yields bit-identical cells.
      AppendSummaryRows(result.table, x, point_state.summaries);
      ++result.points_completed;
      std::fprintf(stderr, "[%s] %s=%g resumed from checkpoint\n",
                   spec.x_name.c_str(), spec.x_name.c_str(), x);
      continue;
    }

    util::Stopwatch point_watch;
    const ExperimentPoint& point = points[p];
    std::vector<sched::SchedulerPtr> schedulers;
    for (const std::string& name : options.config.algorithms) {
      schedulers.push_back(sched::MakeScheduler(name));
    }
    if (point_state.summaries.empty()) {
      point_state.summaries = FreshSummaries(options.config.algorithms);
    }

    for (std::size_t s = point_state.seeds_done;
         s < options.config.num_seeds; ++s) {
      if (util::ShutdownRequested()) {
        persist(p, false);
        flush_partial();
        result.interrupted = true;
        return result;
      }

      bool seed_ok = false;
      for (std::size_t attempt = 1; attempt <= options.retry.max_attempts;
           ++attempt) {
        const util::Deadline deadline =
            util::Deadline::After(options.retry.seed_deadline_seconds);
        try {
          const std::vector<SeedSample> samples =
              RunOneSeed(point, options.config, schedulers, s, deadline,
                         options.deterministic, pool);
          MergeSeed(point_state.summaries, samples);
          seed_ok = true;
          break;
        } catch (...) {
          const util::ErrorKind kind =
              util::ClassifyException(std::current_exception());
          if (kind == util::ErrorKind::kFatal) throw;
          if (kind == util::ErrorKind::kInterrupted) {
            persist(p, false);
            flush_partial();
            result.interrupted = true;
            return result;
          }
          std::string what = "(unknown)";
          try {
            throw;
          } catch (const std::exception& e) {
            what = e.what();
          } catch (...) {
          }
          if (kind == util::ErrorKind::kTimeout) {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu timed out; recording as "
                         "failed\n",
                         spec.x_name.c_str(), spec.x_name.c_str(), x, s);
            ++result.timed_out_seeds;
            ++point_state.timed_out_seeds;
            break;  // never retry a watchdog timeout
          }
          // Transient: retry with the remaining budget, else degrade.
          if (attempt < options.retry.max_attempts) {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu transient failure "
                         "(attempt %zu/%zu): %s\n",
                         spec.x_name.c_str(), spec.x_name.c_str(), x, s,
                         attempt, options.retry.max_attempts, what.c_str());
            ++result.retried_seeds;
          } else {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu failed after %zu attempts: "
                         "%s\n",
                         spec.x_name.c_str(), spec.x_name.c_str(), x, s,
                         options.retry.max_attempts, what.c_str());
          }
        }
      }
      if (!seed_ok) {
        ++result.failed_seeds;
        ++point_state.failed_seeds;
      }
      point_state.seeds_done = s + 1;
      persist(p, false);
    }

    point_state.complete = true;
    persist(p, true);
    AppendSummaryRows(result.table, x, point_state.summaries);
    ++result.points_completed;
    std::fprintf(stderr, "[%s] %s=%g done in %.1fs\n", spec.x_name.c_str(),
                 spec.x_name.c_str(), x, point_watch.Seconds());
  }

  flush_partial();
  if (checkpointing && !options.keep_checkpoint) {
    util::RemoveFile(options.checkpoint_path);
  }
  return result;
}

int MetricSweepResult::ExitCode() const {
  return interrupted ? util::kExitInterrupted : util::kExitOk;
}

MetricSweepResult RunMetricSweep(const MetricSweepSpec& spec,
                                 const MetricSweepOptions& options) {
  FS_CHECK_MSG(!spec.xs.empty(), "metric sweep has no x values");
  FS_CHECK_MSG(!spec.series.empty(), "metric sweep has no series");
  FS_CHECK_MSG(!spec.metrics.empty(), "metric sweep has no metrics");
  FS_CHECK_MSG(static_cast<bool>(spec.run_seed), "metric sweep has no run_seed");
  FS_CHECK_MSG(spec.num_seeds > 0, "need at least one seed");
  FS_CHECK_MSG(options.retry.max_attempts > 0, "need at least one attempt");

  std::uint64_t fingerprint = FingerprintInit();
  fingerprint = FingerprintMix64(fingerprint,
                                 MetricSweepCheckpoint::kFormatVersion);
  fingerprint = FingerprintMixString(fingerprint, spec.name);
  fingerprint = FingerprintMix64(fingerprint, spec.xs.size());
  for (const double x : spec.xs) {
    fingerprint = FingerprintMixDouble(fingerprint, x);
  }
  fingerprint = FingerprintMix64(fingerprint, spec.series.size());
  for (const std::string& name : spec.series) {
    fingerprint = FingerprintMixString(fingerprint, name);
  }
  fingerprint = FingerprintMix64(fingerprint, spec.metrics.size());
  for (const std::string& name : spec.metrics) {
    fingerprint = FingerprintMixString(fingerprint, name);
  }
  fingerprint = FingerprintMix64(fingerprint, spec.num_seeds);
  fingerprint = FingerprintMix64(fingerprint, spec.config_fingerprint);

  const std::size_t grid = spec.series.size() * spec.metrics.size();
  const bool checkpointing = !options.checkpoint_path.empty();
  MetricSweepCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint;
  checkpoint.series = spec.series;
  checkpoint.metrics = spec.metrics;

  MetricSweepResult result;
  result.points_total = spec.xs.size();

  if (checkpointing && options.resume &&
      MetricSweepCheckpoint::Load(options.checkpoint_path, fingerprint,
                                  checkpoint)) {
    FS_CHECK_MSG(checkpoint.points.size() == spec.xs.size(),
                 "checkpoint point count mismatch");
    FS_CHECK_MSG(checkpoint.series == spec.series &&
                     checkpoint.metrics == spec.metrics,
                 "checkpoint series/metric mismatch");
    for (const MetricPointCheckpoint& point : checkpoint.points) {
      if (point.complete) ++result.points_resumed;
      result.seeds_resumed += point.seeds_done;
      result.failed_seeds += point.failed_seeds;
      result.timed_out_seeds += point.timed_out_seeds;
    }
  }
  checkpoint.points.resize(spec.xs.size());
  // Size every point's stats grid up front: Serialize() refuses a
  // misshapen grid, and the first persist happens while later points are
  // still untouched.
  for (std::size_t p = 0; p < spec.xs.size(); ++p) {
    checkpoint.points[p].x = spec.xs[p];
    if (checkpoint.points[p].stats.empty()) {
      checkpoint.points[p].stats.resize(grid);
    }
  }

  const auto persist = [&](std::size_t point_index, bool point_complete) {
    if (!checkpointing) return;
    checkpoint.Save(options.checkpoint_path);
    if (options.after_checkpoint) {
      options.after_checkpoint(point_index,
                               checkpoint.points[point_index].seeds_done,
                               point_complete);
    }
  };

  util::ScopedSignalGuard signal_guard;

  std::vector<std::string> header{spec.x_name, "series"};
  for (const std::string& metric : spec.metrics) {
    header.push_back(metric + "_mean");
    header.push_back(metric + "_ci95");
  }
  result.table = util::CsvTable(header);

  const auto append_rows = [&](double x, const MetricPointCheckpoint& point) {
    for (std::size_t k = 0; k < spec.series.size(); ++k) {
      util::CsvRowBuilder row(result.table);
      row.Add(x).Add(spec.series[k]);
      for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
        const mathx::RunningStats& stats =
            point.stats[k * spec.metrics.size() + m];
        row.Add(stats.Mean()).Add(stats.ConfidenceHalfWidth95());
      }
      row.Commit();
    }
  };

  const auto flush_partial = [&] {
    if (!options.out_path.empty()) result.table.Save(options.out_path);
  };

  for (std::size_t p = 0; p < spec.xs.size(); ++p) {
    const double x = spec.xs[p];
    MetricPointCheckpoint& point_state = checkpoint.points[p];
    point_state.x = x;
    if (point_state.stats.empty()) point_state.stats.resize(grid);

    if (point_state.complete) {
      append_rows(x, point_state);
      ++result.points_completed;
      std::fprintf(stderr, "[%s] %s=%g resumed from checkpoint\n",
                   spec.name.c_str(), spec.x_name.c_str(), x);
      continue;
    }

    util::Stopwatch point_watch;
    for (std::size_t s = point_state.seeds_done; s < spec.num_seeds; ++s) {
      if (util::ShutdownRequested()) {
        persist(p, false);
        flush_partial();
        result.interrupted = true;
        return result;
      }

      bool seed_ok = false;
      for (std::size_t attempt = 1; attempt <= options.retry.max_attempts;
           ++attempt) {
        const util::Deadline deadline =
            util::Deadline::After(options.retry.seed_deadline_seconds);
        try {
          // One seed covers every series; values are held back until the
          // whole seed succeeds, so a mid-seed failure contributes
          // nothing to any accumulator.
          std::vector<std::vector<double>> seed_values(spec.series.size());
          for (std::size_t k = 0; k < spec.series.size(); ++k) {
            if (deadline.Expired()) {
              throw util::TimeoutError("seed " + std::to_string(s) +
                                       " exceeded its watchdog deadline");
            }
            if (util::ShutdownRequested()) {
              throw util::InterruptedError("shutdown requested");
            }
            seed_values[k] = spec.run_seed(p, k, s, deadline);
            FS_CHECK_MSG(seed_values[k].size() == spec.metrics.size(),
                         "run_seed returned the wrong number of metrics");
          }
          for (std::size_t k = 0; k < spec.series.size(); ++k) {
            for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
              point_state.stats[k * spec.metrics.size() + m].Add(
                  seed_values[k][m]);
            }
          }
          seed_ok = true;
          break;
        } catch (...) {
          const util::ErrorKind kind =
              util::ClassifyException(std::current_exception());
          if (kind == util::ErrorKind::kFatal) throw;
          if (kind == util::ErrorKind::kInterrupted) {
            persist(p, false);
            flush_partial();
            result.interrupted = true;
            return result;
          }
          std::string what = "(unknown)";
          try {
            throw;
          } catch (const std::exception& e) {
            what = e.what();
          } catch (...) {
          }
          if (kind == util::ErrorKind::kTimeout) {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu timed out; recording as "
                         "failed\n",
                         spec.name.c_str(), spec.x_name.c_str(), x, s);
            ++result.timed_out_seeds;
            ++point_state.timed_out_seeds;
            break;  // never retry a watchdog timeout
          }
          if (attempt < options.retry.max_attempts) {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu transient failure "
                         "(attempt %zu/%zu): %s\n",
                         spec.name.c_str(), spec.x_name.c_str(), x, s,
                         attempt, options.retry.max_attempts, what.c_str());
            ++result.retried_seeds;
          } else {
            std::fprintf(stderr,
                         "[%s] %s=%g seed %zu failed after %zu attempts: "
                         "%s\n",
                         spec.name.c_str(), spec.x_name.c_str(), x, s,
                         options.retry.max_attempts, what.c_str());
          }
        }
      }
      if (!seed_ok) {
        ++result.failed_seeds;
        ++point_state.failed_seeds;
      }
      point_state.seeds_done = s + 1;
      persist(p, false);
    }

    point_state.complete = true;
    persist(p, true);
    append_rows(x, point_state);
    ++result.points_completed;
    std::fprintf(stderr, "[%s] %s=%g done in %.1fs\n", spec.name.c_str(),
                 spec.x_name.c_str(), x, point_watch.Seconds());
  }

  flush_partial();
  if (checkpointing && !options.keep_checkpoint) {
    util::RemoveFile(options.checkpoint_path);
  }
  return result;
}

}  // namespace fadesched::sim
