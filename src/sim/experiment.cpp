#include "sim/experiment.hpp"

#include "rng/xoshiro256.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"
#include "sim/monte_carlo.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

namespace fadesched::sim {

std::vector<AlgoSummary> RunExperimentPoint(const ExperimentPoint& point,
                                            const ExperimentConfig& config,
                                            util::ThreadPool& pool) {
  FS_CHECK_MSG(!config.algorithms.empty(), "no algorithms requested");
  FS_CHECK_MSG(config.num_seeds > 0, "need at least one seed");
  point.channel.Validate();

  std::vector<AlgoSummary> summaries;
  std::vector<sched::SchedulerPtr> schedulers;
  for (const std::string& name : config.algorithms) {
    schedulers.push_back(sched::MakeScheduler(name));
    AlgoSummary summary;
    summary.algorithm = name;
    summaries.push_back(std::move(summary));
  }

  for (std::size_t s = 0; s < config.num_seeds; ++s) {
    rng::Xoshiro256 gen(config.base_seed + s);
    const net::LinkSet links =
        net::MakeUniformScenario(point.num_links, point.scenario, gen);
    for (std::size_t a = 0; a < schedulers.size(); ++a) {
      util::Stopwatch watch;
      const sched::ScheduleResult result =
          schedulers[a]->Schedule(links, point.channel);
      const double sched_ms = watch.Milliseconds();

      SimOptions sim_options;
      sim_options.trials = config.trials;
      sim_options.fading = config.fading;
      // Decorrelate fading draws across seeds and algorithms.
      sim_options.seed = (config.base_seed + s) * 1000003ULL + a;
      const SimResult sim = SimulateSchedule(links, point.channel,
                                             result.schedule, sim_options, pool);
      const ExpectedMetrics expected =
          ComputeExpectedMetrics(links, point.channel, result.schedule);

      AlgoSummary& summary = summaries[a];
      summary.scheduled_links.Add(static_cast<double>(result.schedule.size()));
      summary.claimed_rate.Add(result.claimed_rate);
      summary.measured_failed.Add(sim.failed_per_trial.Mean());
      summary.measured_throughput.Add(sim.throughput_per_trial.Mean());
      summary.expected_failed.Add(expected.expected_failed);
      summary.expected_throughput.Add(expected.expected_throughput);
      summary.runtime_ms.Add(sched_ms);
    }
  }
  return summaries;
}

util::CsvTable MakeSummaryTable(const std::string& x_name) {
  return util::CsvTable({x_name, "algorithm", "links_scheduled",
                         "claimed_rate", "failed_mean", "failed_ci95",
                         "throughput_mean", "throughput_ci95",
                         "expected_failed", "expected_throughput",
                         "sched_ms"});
}

void AppendSummaryRows(util::CsvTable& table, double x_value,
                       const std::vector<AlgoSummary>& summaries) {
  for (const AlgoSummary& s : summaries) {
    util::CsvRowBuilder(table)
        .Add(util::FormatDouble(x_value))
        .Add(s.algorithm)
        .Add(util::FormatDouble(s.scheduled_links.Mean(), 2))
        .Add(util::FormatDouble(s.claimed_rate.Mean(), 2))
        .Add(util::FormatDouble(s.measured_failed.Mean(), 3))
        .Add(util::FormatDouble(s.measured_failed.ConfidenceHalfWidth95(), 3))
        .Add(util::FormatDouble(s.measured_throughput.Mean(), 3))
        .Add(util::FormatDouble(s.measured_throughput.ConfidenceHalfWidth95(), 3))
        .Add(util::FormatDouble(s.expected_failed.Mean(), 3))
        .Add(util::FormatDouble(s.expected_throughput.Mean(), 3))
        .Add(util::FormatDouble(s.runtime_ms.Mean(), 3))
        .Commit();
  }
}

}  // namespace fadesched::sim
