#include "sim/queue_sim.hpp"

#include <cmath>
#include <deque>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sim {

QueueSimResult RunQueueSimulation(const net::LinkSet& links,
                                  const channel::ChannelParams& params,
                                  const sched::Scheduler& scheduler,
                                  const QueueSimOptions& options) {
  params.Validate();
  FS_CHECK_MSG(options.arrival_probability >= 0.0 &&
                   options.arrival_probability <= 1.0,
               "arrival probability must be in [0, 1]");
  FS_CHECK_MSG(options.warmup_slots < options.num_slots,
               "warm-up must be shorter than the simulation");

  const std::size_t n = links.Size();
  QueueSimResult result;
  if (n == 0) return result;

  rng::Xoshiro256 arrivals_gen(options.seed);
  rng::Xoshiro256 fading_gen(options.seed ^ 0x9e3779b97f4a7c15ULL);

  // FIFO of arrival slots per link; front = oldest packet.
  std::vector<std::deque<std::uint64_t>> queues(n);
  std::vector<net::LinkId> backlogged;

  for (std::size_t slot = 0; slot < options.num_slots; ++slot) {
    // 1. Arrivals.
    for (net::LinkId i = 0; i < n; ++i) {
      if (rng::UniformUnit(arrivals_gen) < options.arrival_probability) {
        queues[i].push_back(slot);
        ++result.arrivals;
      }
    }

    // 2. Schedule the backlogged links.
    backlogged.clear();
    for (net::LinkId i = 0; i < n; ++i) {
      if (!queues[i].empty()) backlogged.push_back(i);
    }
    if (!backlogged.empty()) {
      const net::LinkSet sub = links.Subset(backlogged);
      const net::Schedule local = scheduler.Schedule(sub, params).schedule;

      // 3. One fading realization for the concurrently active set.
      const std::size_t m = local.size();
      if (m > 0) {
        std::vector<double> power(m * m);
        for (std::size_t a = 0; a < m; ++a) {
          const net::LinkId ia = backlogged[local[a]];
          const double tx = links.EffectiveTxPower(ia, params.tx_power);
          for (std::size_t b = 0; b < m; ++b) {
            const net::LinkId jb = backlogged[local[b]];
            const double d =
                geom::Distance(links.Sender(ia), links.Receiver(jb));
            FS_CHECK_MSG(d > 0.0, "sender on top of a receiver");
            power[a * m + b] = rng::Exponential(
                fading_gen, tx * std::pow(d, -params.alpha));
          }
        }
        for (std::size_t b = 0; b < m; ++b) {
          const net::LinkId link = backlogged[local[b]];
          double interference = params.noise_power;
          for (std::size_t a = 0; a < m; ++a) {
            if (a != b) interference += power[a * m + b];
          }
          const bool ok = interference == 0.0
                              ? true
                              : power[b * m + b] >=
                                    params.gamma_th * interference;
          ++result.scheduled_transmissions;
          if (ok) {
            const std::uint64_t arrived = queues[link].front();
            queues[link].pop_front();
            ++result.delivered;
            if (slot >= options.warmup_slots) {
              result.delay_slots.Add(static_cast<double>(slot - arrived));
            }
          } else {
            ++result.failed_transmissions;
          }
        }
      }
    }

    // 4. Backlog sample (after transmissions, post warm-up).
    if (slot >= options.warmup_slots) {
      std::size_t total = 0;
      for (const auto& q : queues) total += q.size();
      result.backlog.Add(static_cast<double>(total));
    }
  }

  for (const auto& q : queues) {
    result.residual_backlog += q.size();
  }
  return result;
}

}  // namespace fadesched::sim
