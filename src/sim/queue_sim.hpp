// Queue-level (multi-slot) simulator — dynamics on top of the one-shot
// problem. The paper's intro motivates link scheduling by throughput *and
// delay*; this simulator measures both: packets arrive at links over time,
// every slot the scheduler is invoked on the currently backlogged links,
// scheduled transmissions succeed or fail under per-slot Rayleigh fading,
// and delivered packets record their queueing delay.
//
// This is also where fading-susceptible schedulers hurt twice: a failed
// transmission wastes the slot *and* keeps the packet queued.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/link_set.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sim {

struct QueueSimOptions {
  std::size_t num_slots = 1000;
  /// Per-link probability of one packet arriving each slot (Bernoulli).
  double arrival_probability = 0.02;
  std::uint64_t seed = 7;
  /// Warm-up slots excluded from the delay/backlog statistics.
  std::size_t warmup_slots = 100;
};

struct QueueSimResult {
  /// Time-averaged total backlog (packets queued across all links),
  /// measured after warm-up.
  mathx::RunningStats backlog;
  /// Queueing delay (slots from arrival to successful delivery) of
  /// packets delivered after warm-up.
  mathx::RunningStats delay_slots;
  std::uint64_t arrivals = 0;            ///< packets generated (total)
  std::uint64_t delivered = 0;           ///< packets delivered (total)
  std::uint64_t failed_transmissions = 0;///< scheduled but not decoded
  std::uint64_t scheduled_transmissions = 0;
  std::uint64_t residual_backlog = 0;    ///< packets still queued at the end

  /// Fraction of scheduled transmissions that failed under fading.
  [[nodiscard]] double FailureRate() const {
    return scheduled_transmissions == 0
               ? 0.0
               : static_cast<double>(failed_transmissions) /
                     static_cast<double>(scheduled_transmissions);
  }
};

/// Runs the slotted simulation. Deterministic given (options.seed,
/// scheduler, links, params).
QueueSimResult RunQueueSimulation(const net::LinkSet& links,
                                  const channel::ChannelParams& params,
                                  const sched::Scheduler& scheduler,
                                  const QueueSimOptions& options);

}  // namespace fadesched::sim
