#include "sim/monte_carlo.hpp"

#include <atomic>
#include <cmath>
#include <mutex>

#include "channel/batch_interference.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::sim {
namespace {

struct ChunkAccumulator {
  mathx::RunningStats failed;
  mathx::RunningStats throughput;
  std::vector<std::uint64_t> success_count;
};

}  // namespace

SimResult SimulateSchedule(const net::LinkSet& links,
                           const channel::ChannelParams& params,
                           const net::Schedule& schedule,
                           const SimOptions& options,
                           util::ThreadPool& pool) {
  params.Validate();
  options.Validate();
  const std::size_t m = schedule.size();

  SimResult result;
  result.trials = options.trials;
  result.scheduled_links = m;
  result.link_success_rate.assign(m, 0.0);
  if (m == 0) {
    // An empty schedule trivially has zero failures and zero throughput.
    for (std::size_t t = 0; t < options.trials; ++t) {
      result.failed_per_trial.Add(0.0);
      result.throughput_per_trial.Add(0.0);
    }
    return result;
  }
  for (net::LinkId id : schedule) FS_CHECK(id < links.Size());

  // Precompute mean powers: mean[i][j] = P_i·d(s_i, r_j)^{-α} over
  // scheduled pairs; row-major, i = interferer index, j = victim index
  // (both are positions within `schedule`). The engine's half-power
  // kernel and effective-power table honour per-link transmit power
  // overrides and reject zero sender-receiver distances.
  const channel::InterferenceEngine engine(links, params, {});
  std::vector<double> mean(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      mean[i * m + j] = engine.MeanRxPower(schedule[i], schedule[j]);
    }
  }

  // Each *trial* gets its own stream keyed by (seed, trial index), so the
  // drawn variates are identical no matter how trials are partitioned
  // across threads.
  const std::uint64_t master_seed = options.seed;

  const std::size_t num_chunks = pool.NumThreads();
  std::vector<ChunkAccumulator> chunks(std::max<std::size_t>(num_chunks, 1));
  for (auto& chunk : chunks) chunk.success_count.assign(m, 0);

  // Watchdog: the first chunk to observe an expired deadline raises the
  // shared cancel flag so every other chunk bails at its next poll — the
  // whole simulation stops close to the deadline, not just one chunk.
  std::atomic<bool> cancelled{false};

  util::ParallelChunks(
      pool, options.trials,
      [&](std::size_t chunk_index, std::size_t begin, std::size_t end) {
        ChunkAccumulator& acc = chunks[chunk_index];
        std::vector<double> power(m * m);
        for (std::size_t trial = begin; trial < end; ++trial) {
          if ((trial - begin) % 32 == 0 &&
              (cancelled.load(std::memory_order_relaxed) ||
               options.deadline.Expired())) {
            cancelled.store(true, std::memory_order_relaxed);
            throw util::TimeoutError(
                "Monte-Carlo simulation exceeded its watchdog deadline");
          }
          // Stream keyed by (seed, trial): thread-count invariant.
          rng::Xoshiro256 gen(master_seed ^
                              (0x9e3779b97f4a7c15ULL * (trial + 1)));
          for (std::size_t k = 0; k < m * m; ++k) {
            power[k] = DrawFadedPower(gen, mean[k], options.fading);
          }
          double failed = 0.0;
          double delivered = 0.0;
          for (std::size_t j = 0; j < m; ++j) {
            double interference = params.noise_power;
            for (std::size_t i = 0; i < m; ++i) {
              if (i != j) interference += power[i * m + j];
            }
            // With the paper's N₀ = 0 a receiver with no interferer
            // always decodes; with noise it faces the residual SNR test.
            const bool ok = interference == 0.0
                                ? true
                                : power[j * m + j] >=
                                      params.gamma_th * interference;
            if (ok) {
              delivered += links.Rate(schedule[j]);
              ++acc.success_count[j];
            } else {
              failed += 1.0;
            }
          }
          acc.failed.Add(failed);
          acc.throughput.Add(delivered);
        }
      });

  std::vector<std::uint64_t> success(m, 0);
  for (const auto& chunk : chunks) {
    result.failed_per_trial.Merge(chunk.failed);
    result.throughput_per_trial.Merge(chunk.throughput);
    for (std::size_t j = 0; j < m; ++j) success[j] += chunk.success_count[j];
  }
  for (std::size_t j = 0; j < m; ++j) {
    result.link_success_rate[j] =
        static_cast<double>(success[j]) / static_cast<double>(options.trials);
  }
  return result;
}

SimResult SimulateSchedule(const net::LinkSet& links,
                           const channel::ChannelParams& params,
                           const net::Schedule& schedule,
                           const SimOptions& options) {
  util::ThreadPool pool(options.threads == 0 ? 1 : options.threads);
  return SimulateSchedule(links, params, schedule, options, pool);
}

}  // namespace fadesched::sim
