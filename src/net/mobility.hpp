// Node mobility — the physical origin of the fading the paper models.
//
// The intro motivates Rayleigh fading with "fluctuations in signal
// strength due to mobility in a multi-path propagation environment". This
// module supplies the slow-timescale half of that story: a random-waypoint
// process that drifts each link (sender and receiver move together,
// keeping the link's length) across the region, so that a schedule
// computed at time t degrades as the topology it was computed for walks
// away. The mobility bench measures how often one must reschedule.
#pragma once

#include <vector>

#include "net/link_set.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::net {

struct MobilityParams {
  double region_size = 500.0;  ///< nodes bounce inside [0, size]²
  double min_speed = 0.5;      ///< distance units per step
  double max_speed = 2.0;
  /// Chance per step that a *paused* node picks a new waypoint.
  double repick_probability = 1.0;
};

/// Random-waypoint mobility over a LinkSet. Each link moves as a rigid
/// pair (sender and receiver translate together): link lengths — and with
/// them g(L) and every scheduler constant — stay invariant while the
/// interference geometry changes.
class RandomWaypointMobility {
 public:
  RandomWaypointMobility(LinkSet initial, MobilityParams params,
                         rng::Xoshiro256 gen);

  [[nodiscard]] const LinkSet& Current() const { return links_; }
  [[nodiscard]] std::size_t StepsTaken() const { return steps_; }

  /// Advances every link by one time step toward its waypoint; picks a
  /// new waypoint (and speed) on arrival.
  void Step();

  /// Advances by `count` steps.
  void Advance(std::size_t count);

 private:
  struct Walker {
    geom::Vec2 target;  ///< waypoint for the link's *sender*
    double speed = 1.0;
  };

  void PickWaypoint(std::size_t index);

  LinkSet links_;
  MobilityParams params_;
  rng::Xoshiro256 gen_;
  std::vector<Walker> walkers_;
  std::size_t steps_ = 0;
};

}  // namespace fadesched::net
