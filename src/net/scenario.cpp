#include "net/scenario.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::net {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

geom::Vec2 ReceiverAt(geom::Vec2 sender, double length, double angle) {
  return geom::Vec2{sender.x + length * std::cos(angle),
                    sender.y + length * std::sin(angle)};
}

}  // namespace

LinkSet MakeUniformScenario(std::size_t num_links,
                            const UniformScenarioParams& params,
                            rng::Xoshiro256& gen) {
  FS_CHECK(params.region_size > 0.0);
  FS_CHECK(params.min_link_length > 0.0);
  FS_CHECK(params.max_link_length >= params.min_link_length);
  FS_CHECK(params.rate > 0.0);
  LinkSet links;
  for (std::size_t i = 0; i < num_links; ++i) {
    const geom::Vec2 sender{rng::UniformRange(gen, 0.0, params.region_size),
                            rng::UniformRange(gen, 0.0, params.region_size)};
    const double length = rng::UniformRange(gen, params.min_link_length,
                                            params.max_link_length);
    const double angle = rng::UniformRange(gen, 0.0, kTwoPi);
    links.Add(Link{sender, ReceiverAt(sender, length, angle), params.rate});
  }
  return links;
}

LinkSet MakeWeightedScenario(std::size_t num_links,
                             const WeightedScenarioParams& params,
                             rng::Xoshiro256& gen) {
  FS_CHECK(params.min_rate > 0.0);
  FS_CHECK(params.max_rate >= params.min_rate);
  LinkSet base = MakeUniformScenario(num_links, params.base, gen);
  LinkSet links;
  for (LinkId i = 0; i < base.Size(); ++i) {
    Link link = base.At(i);
    link.rate = rng::UniformRange(gen, params.min_rate, params.max_rate);
    links.Add(link);
  }
  return links;
}

LinkSet MakeClusteredScenario(std::size_t num_links,
                              const ClusteredScenarioParams& params,
                              rng::Xoshiro256& gen) {
  FS_CHECK(params.num_clusters > 0);
  FS_CHECK(params.cluster_stddev > 0.0);
  std::vector<geom::Vec2> centers;
  centers.reserve(params.num_clusters);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    centers.push_back(
        geom::Vec2{rng::UniformRange(gen, 0.0, params.region_size),
                   rng::UniformRange(gen, 0.0, params.region_size)});
  }
  LinkSet links;
  for (std::size_t i = 0; i < num_links; ++i) {
    const geom::Vec2 center = centers[rng::UniformIndex(gen, centers.size())];
    const geom::Vec2 sender{
        center.x + params.cluster_stddev * rng::StandardNormal(gen),
        center.y + params.cluster_stddev * rng::StandardNormal(gen)};
    const double length = rng::UniformRange(gen, params.min_link_length,
                                            params.max_link_length);
    const double angle = rng::UniformRange(gen, 0.0, kTwoPi);
    links.Add(Link{sender, ReceiverAt(sender, length, angle), params.rate});
  }
  return links;
}

LinkSet MakeDiverseLengthScenario(std::size_t num_links,
                                  const DiverseLengthScenarioParams& params,
                                  rng::Xoshiro256& gen) {
  FS_CHECK(params.length_octaves >= 1);
  FS_CHECK(params.min_link_length > 0.0);
  LinkSet links;
  for (std::size_t i = 0; i < num_links; ++i) {
    const geom::Vec2 sender{rng::UniformRange(gen, 0.0, params.region_size),
                            rng::UniformRange(gen, 0.0, params.region_size)};
    // Pick an octave uniformly, then a length uniform inside it, so every
    // magnitude class gets similar mass regardless of scale.
    const auto octave = rng::UniformIndex(gen, params.length_octaves);
    const double lo = params.min_link_length * std::pow(2.0, static_cast<double>(octave));
    const double length = rng::UniformRange(gen, lo, 2.0 * lo);
    const double angle = rng::UniformRange(gen, 0.0, kTwoPi);
    links.Add(Link{sender, ReceiverAt(sender, length, angle), params.rate});
  }
  return links;
}

LinkSet MakeNearFarScenario(std::size_t num_links,
                            const NearFarScenarioParams& params,
                            rng::Xoshiro256& gen) {
  FS_CHECK(params.region_size > 0.0);
  FS_CHECK(params.knot_radius > 0.0);
  FS_CHECK(params.near_link_length > 0.0);
  FS_CHECK(params.far_link_length > 0.0);
  FS_CHECK(params.near_fraction >= 0.0 && params.near_fraction <= 1.0);
  FS_CHECK(params.rate > 0.0);
  const geom::Vec2 center{params.region_size / 2.0, params.region_size / 2.0};
  const auto num_near = static_cast<std::size_t>(
      params.near_fraction * static_cast<double>(num_links));
  LinkSet links;
  for (std::size_t i = 0; i < num_links; ++i) {
    const double angle = rng::UniformRange(gen, 0.0, kTwoPi);
    if (i < num_near) {
      // Sender uniform in the knot disc (sqrt for area-uniform radius).
      const double r = params.knot_radius *
                       std::sqrt(rng::UniformRange(gen, 0.0, 1.0));
      const double at = rng::UniformRange(gen, 0.0, kTwoPi);
      const geom::Vec2 sender{center.x + r * std::cos(at),
                              center.y + r * std::sin(at)};
      links.Add(Link{sender, ReceiverAt(sender, params.near_link_length, angle),
                     params.rate});
    } else {
      // Far links on a ring at 40% of the region size from the knot.
      const double ring = 0.4 * params.region_size;
      const double at = rng::UniformRange(gen, 0.0, kTwoPi);
      const geom::Vec2 sender{center.x + ring * std::cos(at),
                              center.y + ring * std::sin(at)};
      links.Add(Link{sender, ReceiverAt(sender, params.far_link_length, angle),
                     params.rate});
    }
  }
  return links;
}

LinkSet MakeColinearScenario(std::size_t num_links,
                             const ColinearScenarioParams& params,
                             rng::Xoshiro256& gen) {
  FS_CHECK(params.region_size > 0.0);
  FS_CHECK(params.min_link_length > 0.0);
  FS_CHECK(params.max_link_length >= params.min_link_length);
  FS_CHECK(params.rate > 0.0);
  const double y = params.region_size / 2.0;
  LinkSet links;
  for (std::size_t i = 0; i < num_links; ++i) {
    const double sx = rng::UniformRange(gen, 0.0, params.region_size);
    double length = rng::UniformRange(gen, params.min_link_length,
                                      params.max_link_length);
    if (rng::UniformRange(gen, 0.0, 1.0) < 0.5) length = -length;
    links.Add(Link{geom::Vec2{sx, y}, geom::Vec2{sx + length, y},
                   params.rate});
  }
  return links;
}

LinkSet MakeDuplicatePositionScenario(
    std::size_t num_links, const DuplicatePositionScenarioParams& params,
    rng::Xoshiro256& gen) {
  FS_CHECK(params.duplicate_fraction >= 0.0 &&
           params.duplicate_fraction <= 1.0);
  LinkSet links = MakeUniformScenario(num_links, params.base, gen);
  if (links.Size() < 2) return links;
  // Overwrite a suffix of the set with copies of random earlier links by
  // rebuilding; LinkSet is append-only, so copy-then-rebuild keeps the
  // duplicate ids contiguous and the fuzz replay deterministic.
  auto num_dupes = static_cast<std::size_t>(
      params.duplicate_fraction * static_cast<double>(links.Size()));
  if (num_dupes >= links.Size()) num_dupes = links.Size() - 1;
  const std::size_t originals = links.Size() - num_dupes;
  LinkSet result;
  for (LinkId i = 0; i < originals; ++i) result.Add(links.At(i));
  for (std::size_t d = 0; d < num_dupes; ++d) {
    result.Add(links.At(rng::UniformIndex(gen, originals)));
  }
  return result;
}

}  // namespace fadesched::net
