#include "net/scenario_io.hpp"

#include <cmath>
#include <fstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::net {

util::CsvTable ToCsv(const LinkSet& links) {
  // The tx_power column is only materialized when some link overrides the
  // channel default, keeping paper-model files minimal and backwards
  // compatible.
  const bool with_power = !links.HasUniformTxPower();
  std::vector<std::string> header{"sx", "sy", "rx", "ry", "rate"};
  if (with_power) header.push_back("tx_power");
  util::CsvTable table(header);
  for (LinkId i = 0; i < links.Size(); ++i) {
    util::CsvRowBuilder row(table);
    row.Add(util::FormatDouble(links.Sender(i).x, 12))
        .Add(util::FormatDouble(links.Sender(i).y, 12))
        .Add(util::FormatDouble(links.Receiver(i).x, 12))
        .Add(util::FormatDouble(links.Receiver(i).y, 12))
        .Add(util::FormatDouble(links.Rate(i), 12));
    if (with_power) row.Add(util::FormatDouble(links.TxPower(i), 12));
    row.Commit();
  }
  return table;
}

LinkSet FromCsv(const util::CsvTable& table) {
  LinkSet links;
  const bool with_power = table.HasColumn("tx_power");
  for (std::size_t row = 0; row < table.NumRows(); ++row) {
    // Every malformed-value failure names the 1-based data row, so a bad
    // line in a thousand-link scenario file is findable.
    const std::string where = "scenario row " + std::to_string(row + 1);
    const auto cell = [&](const char* col) {
      const auto parsed = util::ParseDouble(table.Cell(row, col));
      FS_CHECK_MSG(parsed.has_value(),
                   where + ": malformed value in column " + col);
      FS_CHECK_MSG(std::isfinite(*parsed),
                   where + ": non-finite value in column " + col);
      return *parsed;
    };
    Link link;
    link.sender = geom::Vec2{cell("sx"), cell("sy")};
    link.receiver = geom::Vec2{cell("rx"), cell("ry")};
    link.rate = cell("rate");
    FS_CHECK_MSG(link.rate > 0.0, where + ": rate must be positive");
    if (with_power) {
      link.tx_power = cell("tx_power");
      FS_CHECK_MSG(link.tx_power >= 0.0,
                   where + ": tx_power must be non-negative");
    }
    try {
      links.Add(link);
    } catch (const util::CheckFailure& e) {
      // Re-raise LinkSet's own validation (e.g. zero-length links) with
      // the row attached.
      throw util::CheckFailure(where + ": " + e.what());
    }
  }
  return links;
}

void SaveLinkSet(const LinkSet& links, const std::string& path) {
  // Atomic (temp → fsync → rename): an interrupted save can never leave a
  // truncated scenario that parses as a smaller topology.
  ToCsv(links).Save(path);
}

LinkSet LoadLinkSet(const std::string& path) {
  std::ifstream in(path);
  FS_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  return FromCsv(util::CsvTable::Parse(in));
}

}  // namespace fadesched::net
