#include "net/scenario_io.hpp"

#include <fstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::net {

util::CsvTable ToCsv(const LinkSet& links) {
  // The tx_power column is only materialized when some link overrides the
  // channel default, keeping paper-model files minimal and backwards
  // compatible.
  const bool with_power = !links.HasUniformTxPower();
  std::vector<std::string> header{"sx", "sy", "rx", "ry", "rate"};
  if (with_power) header.push_back("tx_power");
  util::CsvTable table(header);
  for (LinkId i = 0; i < links.Size(); ++i) {
    util::CsvRowBuilder row(table);
    row.Add(util::FormatDouble(links.Sender(i).x, 12))
        .Add(util::FormatDouble(links.Sender(i).y, 12))
        .Add(util::FormatDouble(links.Receiver(i).x, 12))
        .Add(util::FormatDouble(links.Receiver(i).y, 12))
        .Add(util::FormatDouble(links.Rate(i), 12));
    if (with_power) row.Add(util::FormatDouble(links.TxPower(i), 12));
    row.Commit();
  }
  return table;
}

LinkSet FromCsv(const util::CsvTable& table) {
  LinkSet links;
  for (std::size_t row = 0; row < table.NumRows(); ++row) {
    Link link;
    link.sender = geom::Vec2{table.CellAsDouble(row, "sx"),
                             table.CellAsDouble(row, "sy")};
    link.receiver = geom::Vec2{table.CellAsDouble(row, "rx"),
                               table.CellAsDouble(row, "ry")};
    link.rate = table.CellAsDouble(row, "rate");
    if (table.HasColumn("tx_power")) {
      link.tx_power = table.CellAsDouble(row, "tx_power");
    }
    links.Add(link);
  }
  return links;
}

void SaveLinkSet(const LinkSet& links, const std::string& path) {
  std::ofstream out(path);
  FS_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  ToCsv(links).Write(out);
  FS_CHECK_MSG(out.good(), "write failed: " + path);
}

LinkSet LoadLinkSet(const std::string& path) {
  std::ifstream in(path);
  FS_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  return FromCsv(util::CsvTable::Parse(in));
}

}  // namespace fadesched::net
