#include "net/link_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace fadesched::net {

LinkSet::LinkSet(std::span<const Link> links) {
  senders_.reserve(links.size());
  receivers_.reserve(links.size());
  rates_.reserve(links.size());
  lengths_.reserve(links.size());
  for (const Link& link : links) Add(link);
}

LinkId LinkSet::Add(const Link& link) {
  const double length = link.Length();
  FS_CHECK_MSG(length > 0.0, "zero-length link: sender == receiver");
  FS_CHECK_MSG(std::isfinite(length), "non-finite link endpoint");
  FS_CHECK_MSG(link.rate > 0.0, "link rate must be positive");
  FS_CHECK_MSG(link.tx_power >= 0.0, "negative per-link tx power");
  senders_.push_back(link.sender);
  receivers_.push_back(link.receiver);
  rates_.push_back(link.rate);
  lengths_.push_back(length);
  tx_powers_.push_back(link.tx_power);
  return senders_.size() - 1;
}

double LinkSet::TotalRate(std::span<const LinkId> subset) const {
  double sum = 0.0;
  for (LinkId id : subset) {
    FS_CHECK(id < Size());
    sum += rates_[id];
  }
  return sum;
}

bool LinkSet::HasUniformRates() const {
  if (rates_.empty()) return true;
  return std::all_of(rates_.begin(), rates_.end(),
                     [first = rates_.front()](double r) { return r == first; });
}

bool LinkSet::HasUniformTxPower() const {
  return std::all_of(tx_powers_.begin(), tx_powers_.end(),
                     [](double p) { return p == 0.0; });
}

double LinkSet::TxPowerRatio(double default_power) const {
  FS_CHECK_MSG(default_power > 0.0, "default power must be positive");
  if (Empty()) return 1.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (LinkId i = 0; i < Size(); ++i) {
    const double p = EffectiveTxPower(i, default_power);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return hi / lo;
}

geom::Aabb LinkSet::BoundingBox() const {
  FS_CHECK_MSG(!Empty(), "bounding box of empty link set");
  geom::Aabb box{senders_[0], senders_[0]};
  for (const auto& p : senders_) box.Extend(p);
  for (const auto& p : receivers_) box.Extend(p);
  return box;
}

double LinkSet::MinLength() const {
  FS_CHECK_MSG(!Empty(), "min length of empty link set");
  return *std::min_element(lengths_.begin(), lengths_.end());
}

double LinkSet::MaxLength() const {
  FS_CHECK_MSG(!Empty(), "max length of empty link set");
  return *std::max_element(lengths_.begin(), lengths_.end());
}

LinkSet LinkSet::Subset(std::span<const LinkId> ids) const {
  LinkSet out;
  for (LinkId id : ids) {
    FS_CHECK(id < Size());
    out.Add(At(id));
  }
  return out;
}

}  // namespace fadesched::net
