// Link and LinkSet — the network substrate every algorithm operates on.
//
// A link is one sender→receiver pair with a data rate λ. LinkSet stores
// links in structure-of-arrays form: the schedulers and the simulator
// stream over positions and lengths, and SoA keeps those scans cache-
// friendly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace fadesched::net {

/// Index of a link within a LinkSet.
using LinkId = std::size_t;

/// One transmission request (sender, receiver, data rate).
///
/// tx_power = 0 means "use the channel-wide default P" — the paper's
/// uniform-power model. A positive value overrides it per link (the power
/// control extension; see power/assignment.hpp).
struct Link {
  geom::Vec2 sender;
  geom::Vec2 receiver;
  double rate = 1.0;
  double tx_power = 0.0;

  [[nodiscard]] double Length() const {
    return geom::Distance(sender, receiver);
  }
};

class LinkSet {
 public:
  LinkSet() = default;
  explicit LinkSet(std::span<const Link> links);

  /// Appends a link; rejects zero-length links and non-positive rates,
  /// which the interference model cannot represent.
  LinkId Add(const Link& link);

  [[nodiscard]] std::size_t Size() const { return senders_.size(); }
  [[nodiscard]] bool Empty() const { return senders_.empty(); }

  [[nodiscard]] geom::Vec2 Sender(LinkId i) const { return senders_[i]; }
  [[nodiscard]] geom::Vec2 Receiver(LinkId i) const { return receivers_[i]; }
  [[nodiscard]] double Rate(LinkId i) const { return rates_[i]; }
  /// Cached link length d_ii.
  [[nodiscard]] double Length(LinkId i) const { return lengths_[i]; }
  /// Per-link transmit power override; 0 = channel default.
  [[nodiscard]] double TxPower(LinkId i) const { return tx_powers_[i]; }
  /// Effective transmit power given the channel default.
  [[nodiscard]] double EffectiveTxPower(LinkId i, double default_power) const {
    return tx_powers_[i] > 0.0 ? tx_powers_[i] : default_power;
  }

  [[nodiscard]] Link At(LinkId i) const {
    return Link{senders_[i], receivers_[i], rates_[i], tx_powers_[i]};
  }

  [[nodiscard]] std::span<const geom::Vec2> Senders() const { return senders_; }
  [[nodiscard]] std::span<const geom::Vec2> Receivers() const { return receivers_; }
  [[nodiscard]] std::span<const double> Rates() const { return rates_; }
  [[nodiscard]] std::span<const double> Lengths() const { return lengths_; }
  [[nodiscard]] std::span<const double> TxPowers() const { return tx_powers_; }

  /// Sum of rates over a subset of links.
  [[nodiscard]] double TotalRate(std::span<const LinkId> subset) const;

  /// True if every link has the same rate (RLE's precondition).
  [[nodiscard]] bool HasUniformRates() const;

  /// True if no link overrides the channel-wide transmit power — the
  /// paper's uniform-power model.
  [[nodiscard]] bool HasUniformTxPower() const;

  /// max/min effective power ratio given the channel default (1 for the
  /// uniform-power model); the provable schedulers inflate their constants
  /// by this factor so their feasibility theorems survive power control.
  [[nodiscard]] double TxPowerRatio(double default_power) const;

  /// Bounding box of all endpoints; undefined for an empty set.
  [[nodiscard]] geom::Aabb BoundingBox() const;

  /// Length of the shortest / longest link; undefined for an empty set.
  [[nodiscard]] double MinLength() const;
  [[nodiscard]] double MaxLength() const;

  /// New LinkSet containing only `ids` (order preserved).
  [[nodiscard]] LinkSet Subset(std::span<const LinkId> ids) const;

 private:
  std::vector<geom::Vec2> senders_;
  std::vector<geom::Vec2> receivers_;
  std::vector<double> rates_;
  std::vector<double> lengths_;
  std::vector<double> tx_powers_;
};

/// A schedule is the subset of link ids chosen to transmit in the slot.
using Schedule = std::vector<LinkId>;

}  // namespace fadesched::net
