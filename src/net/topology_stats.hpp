// Topology statistics from the paper's analysis:
//
//  * length diversity g(L) (Definition 4.1) — the number of binary
//    magnitudes of link lengths; LDP's approximation factor is O(g(L)),
//  * Δ — ratio of the maximum to the minimum node distance, which bounds
//    RLE's factor in the abstract,
//  * per-class membership used by LDP and ApproxLogN.
#pragma once

#include <vector>

#include "net/link_set.hpp"

namespace fadesched::net {

/// The set of magnitudes h = floor(log2(d(l)/δ)) realized by L, ascending,
/// where δ is the shortest link length (so the first element is 0).
std::vector<int> LengthDiversitySet(const LinkSet& links);

/// g(L) = |G(L)|.
std::size_t LengthDiversity(const LinkSet& links);

/// Magnitude h of one link relative to the shortest length δ.
int LengthMagnitude(double length, double shortest_length);

/// Δ = (max pairwise node distance) / (min pairwise node distance) over
/// all senders and receivers. O(n²); intended for analysis and tests.
double DistanceRatio(const LinkSet& links);

/// Ids of links with length < 2^{h+1}·δ — LDP's one-sided class L_k
/// (Formula (36)); contains every shorter class as a subset.
std::vector<LinkId> OneSidedLengthClass(const LinkSet& links, int magnitude);

/// Ids of links with 2^h·δ ≤ length < 2^{h+1}·δ — the two-sided class used
/// by the ApproxLogN baseline [14].
std::vector<LinkId> TwoSidedLengthClass(const LinkSet& links, int magnitude);

}  // namespace fadesched::net
