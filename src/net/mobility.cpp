#include "net/mobility.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::net {

RandomWaypointMobility::RandomWaypointMobility(LinkSet initial,
                                               MobilityParams params,
                                               rng::Xoshiro256 gen)
    : links_(std::move(initial)), params_(params), gen_(gen) {
  FS_CHECK_MSG(params_.region_size > 0.0, "region must be positive");
  FS_CHECK_MSG(params_.min_speed > 0.0 &&
                   params_.max_speed >= params_.min_speed,
               "speeds must satisfy 0 < min <= max");
  FS_CHECK_MSG(params_.repick_probability > 0.0 &&
                   params_.repick_probability <= 1.0,
               "repick probability must be in (0, 1]");
  walkers_.resize(links_.Size());
  for (std::size_t i = 0; i < walkers_.size(); ++i) PickWaypoint(i);
}

void RandomWaypointMobility::PickWaypoint(std::size_t index) {
  walkers_[index].target =
      geom::Vec2{rng::UniformRange(gen_, 0.0, params_.region_size),
                 rng::UniformRange(gen_, 0.0, params_.region_size)};
  walkers_[index].speed =
      rng::UniformRange(gen_, params_.min_speed, params_.max_speed);
}

void RandomWaypointMobility::Step() {
  LinkSet next;
  for (LinkId i = 0; i < links_.Size(); ++i) {
    Link link = links_.At(i);
    Walker& walker = walkers_[i];
    const geom::Vec2 to_target = walker.target - link.sender;
    const double distance = to_target.Norm();
    if (distance <= walker.speed) {
      // Arrived: snap to the waypoint, then (probabilistically) re-pick.
      const geom::Vec2 shift = to_target;
      link.sender = link.sender + shift;
      link.receiver = link.receiver + shift;
      if (rng::UniformUnit(gen_) < params_.repick_probability) {
        PickWaypoint(i);
      }
    } else {
      const geom::Vec2 shift = to_target * (walker.speed / distance);
      link.sender = link.sender + shift;
      link.receiver = link.receiver + shift;
    }
    next.Add(link);
  }
  links_ = std::move(next);
  ++steps_;
}

void RandomWaypointMobility::Advance(std::size_t count) {
  for (std::size_t s = 0; s < count; ++s) Step();
}

}  // namespace fadesched::net
