// CSV persistence for LinkSet (columns: sx, sy, rx, ry, rate).
#pragma once

#include <string>

#include "net/link_set.hpp"
#include "util/csv.hpp"

namespace fadesched::net {

/// Serialize a LinkSet into a CSV table.
util::CsvTable ToCsv(const LinkSet& links);

/// Parse a LinkSet from a CSV table; validates columns and values.
LinkSet FromCsv(const util::CsvTable& table);

/// File round-trips; throw CheckFailure on I/O errors.
void SaveLinkSet(const LinkSet& links, const std::string& path);
LinkSet LoadLinkSet(const std::string& path);

}  // namespace fadesched::net
