#include "net/topology_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/check.hpp"

namespace fadesched::net {

int LengthMagnitude(double length, double shortest_length) {
  FS_CHECK(length > 0.0 && shortest_length > 0.0);
  // floor(log2(d/δ)); clamp tiny negative FP error at d == δ.
  const double h = std::floor(std::log2(length / shortest_length));
  return static_cast<int>(std::max(0.0, h));
}

std::vector<int> LengthDiversitySet(const LinkSet& links) {
  FS_CHECK_MSG(!links.Empty(), "diversity of empty link set");
  const double shortest = links.MinLength();
  std::set<int> magnitudes;
  for (double length : links.Lengths()) {
    magnitudes.insert(LengthMagnitude(length, shortest));
  }
  return {magnitudes.begin(), magnitudes.end()};
}

std::size_t LengthDiversity(const LinkSet& links) {
  return LengthDiversitySet(links).size();
}

double DistanceRatio(const LinkSet& links) {
  FS_CHECK_MSG(links.Size() >= 1, "distance ratio of empty link set");
  std::vector<geom::Vec2> nodes;
  nodes.reserve(2 * links.Size());
  nodes.insert(nodes.end(), links.Senders().begin(), links.Senders().end());
  nodes.insert(nodes.end(), links.Receivers().begin(), links.Receivers().end());
  double min_d2 = std::numeric_limits<double>::infinity();
  double max_d2 = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const double d2 = geom::SquaredDistance(nodes[i], nodes[j]);
      if (d2 <= 0.0) continue;  // coincident nodes carry no scale info
      min_d2 = std::min(min_d2, d2);
      max_d2 = std::max(max_d2, d2);
    }
  }
  FS_CHECK_MSG(std::isfinite(min_d2), "all nodes coincident");
  return std::sqrt(max_d2 / min_d2);
}

std::vector<LinkId> OneSidedLengthClass(const LinkSet& links, int magnitude) {
  FS_CHECK_MSG(!links.Empty(), "length class of empty link set");
  const double shortest = links.MinLength();
  const double upper = std::ldexp(shortest, magnitude + 1);  // 2^{h+1}·δ
  std::vector<LinkId> out;
  for (LinkId i = 0; i < links.Size(); ++i) {
    if (links.Length(i) < upper) out.push_back(i);
  }
  return out;
}

std::vector<LinkId> TwoSidedLengthClass(const LinkSet& links, int magnitude) {
  FS_CHECK_MSG(!links.Empty(), "length class of empty link set");
  const double shortest = links.MinLength();
  const double lower = std::ldexp(shortest, magnitude);      // 2^h·δ
  const double upper = std::ldexp(shortest, magnitude + 1);  // 2^{h+1}·δ
  std::vector<LinkId> out;
  for (LinkId i = 0; i < links.Size(); ++i) {
    const double len = links.Length(i);
    // The shortest link itself (len == δ, magnitude 0) must land in class
    // 0 despite `len >= lower` being an exact FP comparison.
    if (len >= lower && len < upper) out.push_back(i);
  }
  return out;
}

}  // namespace fadesched::net
