// Synthetic topology generators.
//
// The paper's evaluation (§V) places each sender uniformly at random in a
// 500×500 square and each receiver at distance U[5, 20] in a uniformly
// random direction, with every rate λ_i = 1. UniformScenario reproduces
// exactly that; the clustered and heterogeneous-rate generators exercise
// the algorithms beyond the paper's single layout.
#pragma once

#include "net/link_set.hpp"
#include "rng/xoshiro256.hpp"

namespace fadesched::net {

/// Paper §V layout parameters.
struct UniformScenarioParams {
  double region_size = 500.0;  ///< side of the deployment square
  double min_link_length = 5.0;
  double max_link_length = 20.0;
  double rate = 1.0;           ///< common data rate λ
};

/// Senders uniform in the square, receivers at U[min,max] length in a
/// random direction (receivers may fall slightly outside the region, as in
/// the paper's description).
LinkSet MakeUniformScenario(std::size_t num_links,
                            const UniformScenarioParams& params,
                            rng::Xoshiro256& gen);

/// Like the paper layout but with per-link rates drawn from U[min_rate,
/// max_rate] — exercises the weighted objective (LDP's general case).
struct WeightedScenarioParams {
  UniformScenarioParams base;
  double min_rate = 0.5;
  double max_rate = 4.0;
};
LinkSet MakeWeightedScenario(std::size_t num_links,
                             const WeightedScenarioParams& params,
                             rng::Xoshiro256& gen);

/// Senders clustered around `num_clusters` uniformly placed hotspots with
/// Gaussian spread — a harsher interference regime (dense cells).
struct ClusteredScenarioParams {
  double region_size = 500.0;
  std::size_t num_clusters = 5;
  double cluster_stddev = 25.0;
  double min_link_length = 5.0;
  double max_link_length = 20.0;
  double rate = 1.0;
};
LinkSet MakeClusteredScenario(std::size_t num_links,
                              const ClusteredScenarioParams& params,
                              rng::Xoshiro256& gen);

/// Link lengths spread over several binary orders of magnitude so the
/// length diversity g(L) is large — stresses LDP's class partitioning.
struct DiverseLengthScenarioParams {
  double region_size = 2000.0;
  double min_link_length = 1.0;
  std::size_t length_octaves = 8;  ///< lengths up to min·2^octaves
  double rate = 1.0;
};
LinkSet MakeDiverseLengthScenario(std::size_t num_links,
                                  const DiverseLengthScenarioParams& params,
                                  rng::Xoshiro256& gen);

/// Classic near-far stress: a dense knot of short links inside one small
/// disc plus a ring of long "far" links around it, so far receivers see a
/// concentrated interference mass and near receivers see strong mutual
/// coupling. The hardest regime for feasibility bookkeeping.
struct NearFarScenarioParams {
  double region_size = 500.0;
  double knot_radius = 15.0;        ///< disc holding the near knot
  double near_link_length = 2.0;    ///< short links inside the knot
  double far_link_length = 30.0;    ///< long links on the ring
  double near_fraction = 0.5;       ///< share of links placed in the knot
  double rate = 1.0;
};
LinkSet MakeNearFarScenario(std::size_t num_links,
                            const NearFarScenarioParams& params,
                            rng::Xoshiro256& gen);

/// Every sender and receiver on one line (the Knapsack-gadget geometry of
/// Theorem 3.2): distances degenerate to 1-D differences, exercising
/// colinear/duplicate-distance tie handling in grid and elimination rules.
struct ColinearScenarioParams {
  double region_size = 500.0;
  double min_link_length = 5.0;
  double max_link_length = 20.0;
  double rate = 1.0;
};
LinkSet MakeColinearScenario(std::size_t num_links,
                             const ColinearScenarioParams& params,
                             rng::Xoshiro256& gen);

/// Uniform layout where a fraction of links is an exact byte-for-byte copy
/// of an earlier link (shared sender AND receiver positions) — legal under
/// the interference model (d_ij = d_jj > 0) and the sharpest test of
/// deterministic tie-breaking, since duplicated links are fully
/// interchangeable.
struct DuplicatePositionScenarioParams {
  UniformScenarioParams base;
  double duplicate_fraction = 0.3;  ///< share of links copied from earlier ones
};
LinkSet MakeDuplicatePositionScenario(
    std::size_t num_links, const DuplicatePositionScenarioParams& params,
    rng::Xoshiro256& gen);

}  // namespace fadesched::net
