// Discrete-event simulator for distributed protocols.
//
// The DLS scheduler (sched/dls.*) models the *outcome* of a decentralized
// contention protocol; this module supplies the machinery to run such a
// protocol for real: nodes with positions, point-to-point and local-
// broadcast messages with distance-dependent propagation delay, per-node
// timers, and a deterministic event queue (ties broken by sequence
// number, so runs are bit-reproducible).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "distsim/fault_injection.hpp"
#include "geom/vec2.hpp"

namespace fadesched::distsim {

using NodeId = std::size_t;
using Time = double;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t tag = 0;          ///< protocol-defined message kind
  std::vector<double> data;       ///< protocol-defined payload
};

class Context;

/// Protocol behaviour attached to one node. Callbacks run sequentially in
/// global event order; a node only touches its own state plus the Context.
class Node {
 public:
  virtual ~Node() = default;
  /// Called once at t = 0 before any message.
  virtual void OnStart(Context& ctx) = 0;
  virtual void OnMessage(Context& ctx, const Message& message) = 0;
  virtual void OnTimer(Context& ctx, std::uint64_t timer_id) = 0;
};

struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t events_processed = 0;
  /// Degradation counters (all zero without an installed fault plan).
  std::uint64_t messages_dropped = 0;       ///< lost to random drops
  std::uint64_t messages_crash_dropped = 0; ///< target was down at delivery
  std::uint64_t timers_deferred = 0;        ///< fired late, after recovery
  std::uint64_t timers_dropped = 0;         ///< owner permanently crashed
  /// True iff the run stopped at max_events instead of draining the queue
  /// or reaching the horizon.
  bool truncated = false;
  Time end_time = 0.0;
};

struct EventSimOptions {
  /// Seconds of propagation per distance unit (plus fixed latency).
  double propagation_delay_per_unit = 1e-3;
  double fixed_latency = 1e-3;
  /// Local broadcast reaches nodes within this radius of the sender.
  double broadcast_radius = 100.0;
  /// Safety cap on total events (runaway-protocol guard).
  std::uint64_t max_events = 10'000'000;

  /// Throws CheckFailure unless delays are finite and non-negative, the
  /// radius is positive, and the event cap is non-zero.
  void Validate() const;
};

class EventSimulator {
 public:
  using Options = EventSimOptions;

  explicit EventSimulator(Options options = {});
  ~EventSimulator();
  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  /// Registers a node; ids are dense and assigned in call order.
  NodeId AddNode(std::unique_ptr<Node> node, geom::Vec2 position);

  [[nodiscard]] std::size_t NumNodes() const { return nodes_.size(); }
  [[nodiscard]] geom::Vec2 Position(NodeId id) const;

  /// Installs a fault plan consulted at every delivery, broadcast, and
  /// timer fire. Must be called before Run(). Each Run() restarts the
  /// fault stream from the plan's seed, so repeated runs fault
  /// identically. An all-zero plan is exactly a no-op.
  void InstallFaultPlan(const FaultPlan& plan);

  /// Runs OnStart on every node then processes events until the queue is
  /// empty or `until` is reached, whichever is first.
  SimStats Run(Time until);

 private:
  friend class Context;

  struct Event {
    Time at = 0.0;
    std::uint64_t sequence = 0;  ///< FIFO tie-break for equal timestamps
    bool is_timer = false;
    std::uint64_t timer_id = 0;
    Message message;
    NodeId target = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  void Schedule(Event event);

  Options options_;
  FaultPlan fault_plan_;
  std::unique_ptr<FaultInjector> faults_;  ///< null until faults installed
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<geom::Vec2> positions_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_sequence_ = 0;
  Time now_ = 0.0;
  SimStats stats_;
};

/// Per-callback handle a node uses to interact with the world.
class Context {
 public:
  Context(EventSimulator& sim, NodeId self) : sim_(sim), self_(self) {}

  [[nodiscard]] Time Now() const { return sim_.now_; }
  [[nodiscard]] NodeId Self() const { return self_; }
  [[nodiscard]] geom::Vec2 Position() const { return sim_.Position(self_); }
  [[nodiscard]] std::size_t NumNodes() const { return sim_.NumNodes(); }

  /// Unicast; arrives after fixed latency + distance·propagation delay.
  void Send(NodeId to, std::uint64_t tag, std::vector<double> data);

  /// Delivers to every node within the broadcast radius (excluding self).
  void BroadcastLocal(std::uint64_t tag, std::vector<double> data);

  /// Fires OnTimer(timer_id) on this node after `delay`.
  void SetTimer(Time delay, std::uint64_t timer_id);

 private:
  EventSimulator& sim_;
  NodeId self_;
};

}  // namespace fadesched::distsim
