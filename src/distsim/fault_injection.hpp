// Deterministic fault injection for the discrete-event layer.
//
// A FaultPlan describes how the control plane misbehaves: per-message
// delivery drops, per-round shrinkage of the local-broadcast radius
// (control-channel fading), scheduled node crash/recovery windows, and
// bounded timer jitter. The plan is pure data; a FaultInjector pairs it
// with a dedicated xoshiro256++ stream that is consumed strictly in
// global event order. Because the event loop is sequential, a faulted run
// is bit-reproducible for a fixed (plan, seed) regardless of how many
// threads the surrounding experiment uses — the same guarantee the
// Monte-Carlo simulator gives via per-trial streams.
//
// An all-zero plan (the default) is inert: no stream draws are consumed
// and the simulator's behaviour is bit-identical to a fault-free run.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace fadesched::distsim {

// Shared with event_sim.hpp (identical alias redeclaration is well-formed;
// this header sits below event_sim.hpp in the include order).
using NodeId = std::size_t;
using Time = double;

/// One scheduled outage: the node is down for t ∈ [begin, end). An
/// infinite `end` models a permanent crash.
struct CrashWindow {
  NodeId node = 0;
  Time begin = 0.0;
  Time end = std::numeric_limits<double>::infinity();
};

struct FaultPlan {
  /// Probability that any single message delivery is silently lost.
  double drop_probability = 0.0;

  /// Fraction of the nominal broadcast radius lost per elapsed round
  /// (`round_period` simulated seconds), modelling a slowly fading
  /// control channel. The radius never shrinks below
  /// `min_radius_factor`·nominal.
  double radius_shrink_per_round = 0.0;
  double min_radius_factor = 0.1;
  double round_period = 1.0;

  /// Upper bound on the uniform extra delay added to every timer.
  double timer_jitter = 0.0;

  /// Seed of the dedicated fault stream (independent of protocol seeds).
  std::uint64_t seed = 0xbadfade5ULL;

  std::vector<CrashWindow> crashes;

  /// True iff any fault channel is active. Inert plans short-circuit every
  /// consultation, so they are exactly free.
  [[nodiscard]] bool Enabled() const;

  /// True iff `node` is down at time `at`.
  [[nodiscard]] bool CrashedAt(NodeId node, Time at) const;

  /// True iff `node` has a crash window starting before `horizon`.
  [[nodiscard]] bool EverCrashedBefore(NodeId node, Time horizon) const;

  /// End of the crash window covering `at` (the recovery instant), or
  /// +infinity for a permanent crash. Precondition: CrashedAt(node, at).
  [[nodiscard]] Time RecoveryTime(NodeId node, Time at) const;

  /// Multiplier in (0, 1] applied to the broadcast radius at time `at`.
  [[nodiscard]] double RadiusFactor(Time at) const;

  /// Throws CheckFailure unless probabilities are in [0,1], jitter and
  /// window bounds are non-negative, and every window has begin < end.
  void Validate() const;
};

/// Runtime companion of a FaultPlan: owns the fault stream and draws from
/// it in consultation order. The EventSimulator creates one per Run(), so
/// repeated runs of the same simulator are identically faulted.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] const FaultPlan& Plan() const { return plan_; }
  [[nodiscard]] bool Enabled() const { return enabled_; }

  /// True iff this delivery should be lost. Draws from the stream only
  /// when drop_probability > 0, keeping inert plans draw-free.
  bool RollMessageDrop();

  /// Extra delay in [0, timer_jitter] for one timer (0 without a draw when
  /// jitter is disabled).
  double RollTimerJitter();

  [[nodiscard]] double BroadcastRadius(double nominal, Time at) const {
    return nominal * plan_.RadiusFactor(at);
  }

 private:
  FaultPlan plan_;
  bool enabled_ = false;
  rng::Xoshiro256 stream_;
};

/// Deterministically samples crash windows for a bench/CLI sweep: each of
/// the `num_nodes` nodes independently crashes with probability
/// `crash_fraction` at a uniform time in [0, horizon); the outage lasts
/// `outage_duration` seconds, or forever when `outage_duration` <= 0.
std::vector<CrashWindow> SampleCrashWindows(std::size_t num_nodes,
                                            double crash_fraction,
                                            Time horizon,
                                            Time outage_duration,
                                            std::uint64_t seed);

}  // namespace fadesched::distsim
