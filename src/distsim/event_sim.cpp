#include "distsim/event_sim.hpp"

#include "util/check.hpp"

namespace fadesched::distsim {

EventSimulator::EventSimulator(Options options) : options_(options) {
  FS_CHECK_MSG(options_.propagation_delay_per_unit >= 0.0,
               "negative propagation delay");
  FS_CHECK_MSG(options_.fixed_latency >= 0.0, "negative fixed latency");
  FS_CHECK_MSG(options_.broadcast_radius > 0.0,
               "broadcast radius must be positive");
}

EventSimulator::~EventSimulator() = default;

NodeId EventSimulator::AddNode(std::unique_ptr<Node> node,
                               geom::Vec2 position) {
  FS_CHECK_MSG(node != nullptr, "null node");
  nodes_.push_back(std::move(node));
  positions_.push_back(position);
  return nodes_.size() - 1;
}

geom::Vec2 EventSimulator::Position(NodeId id) const {
  FS_CHECK(id < positions_.size());
  return positions_[id];
}

void EventSimulator::Schedule(Event event) {
  event.sequence = next_sequence_++;
  queue_.push(std::move(event));
}

SimStats EventSimulator::Run(Time until) {
  FS_CHECK_MSG(until >= 0.0, "negative horizon");
  stats_ = SimStats{};
  now_ = 0.0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Context ctx(*this, id);
    nodes_[id]->OnStart(ctx);
  }
  while (!queue_.empty()) {
    FS_CHECK_MSG(stats_.events_processed < options_.max_events,
                 "event cap exceeded — runaway protocol?");
    const Event event = queue_.top();
    if (event.at > until) break;
    queue_.pop();
    now_ = event.at;
    ++stats_.events_processed;
    Context ctx(*this, event.target);
    if (event.is_timer) {
      ++stats_.timers_fired;
      nodes_[event.target]->OnTimer(ctx, event.timer_id);
    } else {
      ++stats_.messages_delivered;
      nodes_[event.target]->OnMessage(ctx, event.message);
    }
  }
  stats_.end_time = now_;
  return stats_;
}

void Context::Send(NodeId to, std::uint64_t tag, std::vector<double> data) {
  FS_CHECK(to < sim_.nodes_.size());
  const double distance = geom::Distance(sim_.Position(self_),
                                         sim_.Position(to));
  EventSimulator::Event event;
  event.at = sim_.now_ + sim_.options_.fixed_latency +
             sim_.options_.propagation_delay_per_unit * distance;
  event.is_timer = false;
  event.target = to;
  event.message = Message{self_, to, tag, std::move(data)};
  ++sim_.stats_.messages_sent;
  sim_.Schedule(std::move(event));
}

void Context::BroadcastLocal(std::uint64_t tag, std::vector<double> data) {
  const geom::Vec2 origin = sim_.Position(self_);
  for (NodeId to = 0; to < sim_.nodes_.size(); ++to) {
    if (to == self_) continue;
    if (geom::Distance(origin, sim_.Position(to)) <=
        sim_.options_.broadcast_radius) {
      Send(to, tag, data);  // copies payload per recipient
    }
  }
}

void Context::SetTimer(Time delay, std::uint64_t timer_id) {
  FS_CHECK_MSG(delay >= 0.0, "negative timer delay");
  EventSimulator::Event event;
  event.at = sim_.now_ + delay;
  event.is_timer = true;
  event.timer_id = timer_id;
  event.target = self_;
  sim_.Schedule(std::move(event));
}

}  // namespace fadesched::distsim
