#include "distsim/event_sim.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"

namespace fadesched::distsim {

void EventSimOptions::Validate() const {
  FS_CHECK_MSG(propagation_delay_per_unit >= 0.0 &&
                   std::isfinite(propagation_delay_per_unit),
               "negative propagation delay");
  FS_CHECK_MSG(fixed_latency >= 0.0 && std::isfinite(fixed_latency),
               "negative fixed latency");
  FS_CHECK_MSG(broadcast_radius > 0.0, "broadcast radius must be positive");
  FS_CHECK_MSG(max_events > 0, "event cap must be positive");
}

EventSimulator::EventSimulator(Options options) : options_(options) {
  options_.Validate();
}

EventSimulator::~EventSimulator() = default;

NodeId EventSimulator::AddNode(std::unique_ptr<Node> node,
                               geom::Vec2 position) {
  FS_CHECK_MSG(node != nullptr, "null node");
  nodes_.push_back(std::move(node));
  positions_.push_back(position);
  return nodes_.size() - 1;
}

geom::Vec2 EventSimulator::Position(NodeId id) const {
  FS_CHECK(id < positions_.size());
  return positions_[id];
}

void EventSimulator::InstallFaultPlan(const FaultPlan& plan) {
  plan.Validate();
  fault_plan_ = plan;
  // An inert plan never constructs an injector, so the fault-free path is
  // bit-identical to a simulator with no plan installed at all.
  faults_ = plan.Enabled() ? std::make_unique<FaultInjector>(plan) : nullptr;
}

void EventSimulator::Schedule(Event event) {
  event.sequence = next_sequence_++;
  queue_.push(std::move(event));
}

SimStats EventSimulator::Run(Time until) {
  FS_CHECK_MSG(until >= 0.0, "negative horizon");
  stats_ = SimStats{};
  now_ = 0.0;
  // Restart the fault stream so repeated Run() calls fault identically.
  if (faults_) faults_ = std::make_unique<FaultInjector>(fault_plan_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Context ctx(*this, id);
    nodes_[id]->OnStart(ctx);
  }
  while (!queue_.empty()) {
    if (stats_.events_processed >= options_.max_events) {
      stats_.truncated = true;
      FS_LOG(Warn) << "event cap (" << options_.max_events
                   << ") hit at t=" << now_
                   << " — truncating run (runaway protocol?)";
      break;
    }
    const Event event = queue_.top();
    if (event.at > until) break;
    queue_.pop();
    now_ = event.at;
    ++stats_.events_processed;
    if (event.is_timer) {
      // A timer owned by a crashed node is deferred to its recovery (the
      // node wakes with stale state) or dropped if the crash is permanent.
      if (faults_ && fault_plan_.CrashedAt(event.target, now_)) {
        const Time recovery = fault_plan_.RecoveryTime(event.target, now_);
        if (std::isfinite(recovery)) {
          ++stats_.timers_deferred;
          Event deferred = event;
          deferred.at = recovery;
          Schedule(std::move(deferred));
        } else {
          ++stats_.timers_dropped;
        }
        continue;
      }
      ++stats_.timers_fired;
      Context ctx(*this, event.target);
      nodes_[event.target]->OnTimer(ctx, event.timer_id);
    } else {
      // Faults are consulted at delivery time, in global event order, so
      // the dedicated fault stream is consumed deterministically.
      if (faults_) {
        if (fault_plan_.CrashedAt(event.target, now_)) {
          ++stats_.messages_crash_dropped;
          continue;
        }
        if (faults_->RollMessageDrop()) {
          ++stats_.messages_dropped;
          continue;
        }
      }
      ++stats_.messages_delivered;
      Context ctx(*this, event.target);
      nodes_[event.target]->OnMessage(ctx, event.message);
    }
  }
  stats_.end_time = now_;
  return stats_;
}

void Context::Send(NodeId to, std::uint64_t tag, std::vector<double> data) {
  FS_CHECK(to < sim_.nodes_.size());
  const double distance = geom::Distance(sim_.Position(self_),
                                         sim_.Position(to));
  EventSimulator::Event event;
  event.at = sim_.now_ + sim_.options_.fixed_latency +
             sim_.options_.propagation_delay_per_unit * distance;
  event.is_timer = false;
  event.target = to;
  event.message = Message{self_, to, tag, std::move(data)};
  ++sim_.stats_.messages_sent;
  sim_.Schedule(std::move(event));
}

void Context::BroadcastLocal(std::uint64_t tag, std::vector<double> data) {
  const geom::Vec2 origin = sim_.Position(self_);
  const double radius =
      sim_.faults_
          ? sim_.faults_->BroadcastRadius(sim_.options_.broadcast_radius,
                                          sim_.now_)
          : sim_.options_.broadcast_radius;
  for (NodeId to = 0; to < sim_.nodes_.size(); ++to) {
    if (to == self_) continue;
    if (geom::Distance(origin, sim_.Position(to)) <= radius) {
      Send(to, tag, data);  // copies payload per recipient
    }
  }
}

void Context::SetTimer(Time delay, std::uint64_t timer_id) {
  FS_CHECK_MSG(delay >= 0.0, "negative timer delay");
  EventSimulator::Event event;
  event.at = sim_.now_ + delay +
             (sim_.faults_ ? sim_.faults_->RollTimerJitter() : 0.0);
  event.is_timer = true;
  event.timer_id = timer_id;
  event.target = self_;
  sim_.Schedule(std::move(event));
}

}  // namespace fadesched::distsim
