#include "distsim/dls_protocol.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

constexpr std::uint64_t kBeaconTag = 1;
constexpr std::uint64_t kTimerBeacon = 1;
constexpr std::uint64_t kTimerDecide = 2;

// Beacon payload layout.
enum PayloadField : std::size_t {
  kSenderX = 0,
  kSenderY,
  kLinkLength,
  kTxPower,
  kEstimate,
  kViolating,
  kPayloadSize,
};

struct Shared {
  const net::LinkSet* links = nullptr;
  channel::ChannelParams params;
  DlsProtocolOptions options;
  std::uint32_t total_rounds = 0;
  bool robust = false;  ///< hardened estimator active
};

class LinkAgent final : public Node {
 public:
  LinkAgent(const Shared* shared, net::LinkId link, rng::Xoshiro256 coin)
      : shared_(shared), link_(link), coin_(coin) {}

  [[nodiscard]] bool Active() const { return active_; }
  [[nodiscard]] bool SilentPruned() const { return silent_pruned_; }

  void OnStart(Context& ctx) override {
    // Noise consumes budget permanently; hopeless links never contend.
    noise_factor_ = NoiseFactor();
    if (noise_factor_ > GammaEps()) {
      active_ = false;
      return;
    }
    ctx.SetTimer(0.0, kTimerBeacon);
  }

  void OnMessage(Context&, const Message& message) override {
    if (message.tag != kBeaconTag || !active_) return;
    FS_CHECK(message.data.size() == kPayloadSize);
    // Interference factor of the beaconing sender on *our* receiver,
    // computed purely from local knowledge plus the beacon contents.
    const geom::Vec2 their_sender{message.data[kSenderX],
                                  message.data[kSenderY]};
    const double d_ij = geom::Distance(
        their_sender, shared_->links->Receiver(link_));
    if (d_ij <= 0.0) return;  // degenerate co-location; ignore the beacon
    const double d_jj = shared_->links->Length(link_);
    const double my_power = shared_->links->EffectiveTxPower(
        link_, shared_->params.tx_power);
    const double factor = std::log1p(
        shared_->params.gamma_th * (message.data[kTxPower] / my_power) *
        std::pow(d_jj / d_ij, shared_->params.alpha));
    if (shared_->robust) {
      neighbors_[message.from] = NeighborRecord{factor, round_};
      ++heard_this_round_;
    } else {
      round_sum_ += factor;
    }
    if (message.data[kViolating] > 0.5) {
      heard_violator_estimates_.push_back(
          {message.data[kEstimate], message.from});
    }
  }

  void OnTimer(Context& ctx, std::uint64_t timer_id) override {
    if (!active_) return;
    if (timer_id == kTimerBeacon) {
      round_sum_ = 0.0;
      heard_this_round_ = 0;
      heard_violator_estimates_.clear();
      const geom::Vec2 sender = shared_->links->Sender(link_);
      ctx.BroadcastLocal(
          kBeaconTag,
          {sender.x, sender.y, shared_->links->Length(link_),
           shared_->links->EffectiveTxPower(link_, shared_->params.tx_power),
           estimate_, violating_ ? 1.0 : 0.0});
      ctx.SetTimer(0.8 * shared_->options.round_duration, kTimerDecide);
      return;
    }
    FS_CHECK(timer_id == kTimerDecide);
    if (shared_->robust) {
      if (heard_this_round_ == 0) {
        ++silent_rounds_;
      } else {
        silent_rounds_ = 0;
        heard_any_ever_ = true;
      }
      // Total silence from a previously heard neighbourhood means we are
      // cut off from the control plane: withdraw rather than transmit on
      // top of invisible contenders.
      if (heard_any_ever_ &&
          silent_rounds_ >= shared_->options.max_silent_rounds) {
        active_ = false;
        silent_pruned_ = true;
        return;
      }
      estimate_ = noise_factor_ + RobustInterferenceSum();
    } else {
      estimate_ = noise_factor_ + round_sum_;
    }
    violating_ = estimate_ > GammaEps();
    if (violating_) {
      if (round_ < shared_->options.contention_rounds) {
        // Randomized back-off, mirroring sched/dls.cpp.
        const double overload = estimate_ / GammaEps();
        const double p = std::min(
            1.0, shared_->options.backoff_probability *
                     (1.0 - 1.0 / overload) * 2.0);
        if (rng::UniformUnit(coin_) < p) {
          active_ = false;
          return;
        }
      } else {
        // Resolution: withdraw iff locally the worst violator (stale-by-
        // one-round estimates; ties broken toward the higher id).
        bool is_worst = true;
        for (const auto& [their_estimate, their_id] :
             heard_violator_estimates_) {
          if (their_estimate > estimate_ ||
              (their_estimate == estimate_ && their_id > ctx.Self())) {
            is_worst = false;
            break;
          }
        }
        if (is_worst) {
          active_ = false;
          return;
        }
      }
    }
    ++round_;
    if (round_ < shared_->total_rounds) {
      ctx.SetTimer(0.2 * shared_->options.round_duration, kTimerBeacon);
    } else if (violating_) {
      // Terminal self-prune: a still-violating agent withdraws, which by
      // interference monotonicity leaves every survivor satisfied.
      active_ = false;
    }
  }

 private:
  struct NeighborRecord {
    double factor = 0.0;              ///< last-heard interference factor
    std::uint32_t last_heard = 0;     ///< round it was last heard in
  };

  /// Hardened estimate: fresh factors count fully; a silent neighbour's
  /// last factor decays geometrically per missed round (it may have
  /// withdrawn — or its beacon may have been lost) and is forgotten after
  /// max_silent_rounds misses. Ordered map iteration keeps the summation
  /// order — and thus the floating-point result — deterministic.
  [[nodiscard]] double RobustInterferenceSum() {
    double sum = 0.0;
    for (auto it = neighbors_.begin(); it != neighbors_.end();) {
      const std::uint32_t misses = round_ - it->second.last_heard;
      if (misses > shared_->options.max_silent_rounds) {
        it = neighbors_.erase(it);
        continue;
      }
      sum += it->second.factor *
             std::pow(shared_->options.estimate_decay,
                      static_cast<double>(misses));
      ++it;
    }
    return sum;
  }

  [[nodiscard]] double GammaEps() const {
    return shared_->params.GammaEpsilon();
  }
  [[nodiscard]] double NoiseFactor() const {
    if (shared_->params.noise_power == 0.0) return 0.0;
    const double signal =
        shared_->links->EffectiveTxPower(link_, shared_->params.tx_power) *
        std::pow(shared_->links->Length(link_), -shared_->params.alpha);
    return shared_->params.gamma_th * shared_->params.noise_power / signal;
  }

  const Shared* shared_;
  net::LinkId link_;
  rng::Xoshiro256 coin_;
  bool active_ = true;
  bool violating_ = false;
  bool silent_pruned_ = false;
  bool heard_any_ever_ = false;
  double estimate_ = 0.0;
  double noise_factor_ = 0.0;
  double round_sum_ = 0.0;
  std::uint32_t round_ = 0;
  std::uint32_t silent_rounds_ = 0;
  std::size_t heard_this_round_ = 0;
  std::vector<std::pair<double, NodeId>> heard_violator_estimates_;
  std::map<NodeId, NeighborRecord> neighbors_;
};

}  // namespace

void DlsProtocolOptions::Validate() const {
  FS_CHECK_MSG(round_duration > 0.0, "round duration must be > 0");
  FS_CHECK_MSG(contention_rounds + resolution_rounds > 0,
               "need at least one round");
  FS_CHECK_MSG(backoff_probability >= 0.0 && backoff_probability <= 1.0,
               "backoff probability must be in [0, 1]");
  FS_CHECK_MSG(broadcast_radius > 0.0, "broadcast radius must be > 0");
  FS_CHECK_MSG(estimate_decay >= 0.0 && estimate_decay <= 1.0,
               "estimate decay must be in [0, 1]");
  FS_CHECK_MSG(max_silent_rounds > 0, "max silent rounds must be > 0");
  fault.Validate();
}

DlsProtocolResult RunDlsProtocol(const net::LinkSet& links,
                                 const channel::ChannelParams& params,
                                 const DlsProtocolOptions& options) {
  params.Validate();
  options.Validate();

  Shared shared;
  shared.links = &links;
  shared.params = params;
  shared.options = options;
  shared.total_rounds =
      options.contention_rounds + options.resolution_rounds;
  shared.robust =
      options.robust == DlsProtocolOptions::RobustMode::kOn ||
      (options.robust == DlsProtocolOptions::RobustMode::kAuto &&
       options.fault.Enabled());

  EventSimulator::Options sim_options;
  sim_options.broadcast_radius = options.broadcast_radius;
  // Keep all delivery inside the beacon phase: the worst-case propagation
  // must complete before the decision timer at 0.8·T fires.
  sim_options.fixed_latency = 1e-4 * options.round_duration;
  sim_options.propagation_delay_per_unit =
      0.5 * options.round_duration / std::max(1.0, options.broadcast_radius);
  EventSimulator sim(sim_options);
  sim.InstallFaultPlan(options.fault);

  std::vector<LinkAgent*> agents;
  rng::Xoshiro256 master(options.seed);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    auto agent = std::make_unique<LinkAgent>(&shared, i, master);
    master.Jump();
    agents.push_back(agent.get());
    sim.AddNode(std::move(agent), links.Sender(i));
  }

  const Time horizon =
      (static_cast<double>(shared.total_rounds) + 1.0) *
      options.round_duration;
  DlsProtocolResult result;
  result.sim_stats = sim.Run(horizon);
  result.rounds = shared.total_rounds;
  result.beacons_lost = result.sim_stats.messages_dropped +
                        result.sim_stats.messages_crash_dropped;
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    // A node that is down at the horizon cannot transmit, whatever its
    // protocol state says; one that crashed and recovered keeps its slot.
    if (agents[i]->Active() && !options.fault.CrashedAt(i, horizon)) {
      result.schedule.push_back(i);
    }
    if (agents[i]->SilentPruned()) ++result.agents_silent_pruned;
    if (options.fault.EverCrashedBefore(i, horizon)) ++result.agents_crashed;
  }
  if (!result.schedule.empty()) {
    const channel::InterferenceCalculator calc(links, params);
    std::size_t violating = 0;
    for (net::LinkId id : result.schedule) {
      if (!channel::LinkIsInformed(calc, result.schedule, id)) ++violating;
    }
    result.residual_violation_rate =
        static_cast<double>(violating) /
        static_cast<double>(result.schedule.size());
  }
  return result;
}

}  // namespace fadesched::distsim
