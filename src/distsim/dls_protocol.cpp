#include "distsim/dls_protocol.hpp"

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::distsim {
namespace {

constexpr std::uint64_t kBeaconTag = 1;
constexpr std::uint64_t kTimerBeacon = 1;
constexpr std::uint64_t kTimerDecide = 2;

// Beacon payload layout.
enum PayloadField : std::size_t {
  kSenderX = 0,
  kSenderY,
  kLinkLength,
  kTxPower,
  kEstimate,
  kViolating,
  kPayloadSize,
};

struct Shared {
  const net::LinkSet* links = nullptr;
  channel::ChannelParams params;
  DlsProtocolOptions options;
  std::uint32_t total_rounds = 0;
};

class LinkAgent final : public Node {
 public:
  LinkAgent(const Shared* shared, net::LinkId link, rng::Xoshiro256 coin)
      : shared_(shared), link_(link), coin_(coin) {}

  [[nodiscard]] bool Active() const { return active_; }

  void OnStart(Context& ctx) override {
    // Noise consumes budget permanently; hopeless links never contend.
    noise_factor_ = NoiseFactor();
    if (noise_factor_ > GammaEps()) {
      active_ = false;
      return;
    }
    ctx.SetTimer(0.0, kTimerBeacon);
  }

  void OnMessage(Context&, const Message& message) override {
    if (message.tag != kBeaconTag || !active_) return;
    FS_CHECK(message.data.size() == kPayloadSize);
    // Interference factor of the beaconing sender on *our* receiver,
    // computed purely from local knowledge plus the beacon contents.
    const geom::Vec2 their_sender{message.data[kSenderX],
                                  message.data[kSenderY]};
    const double d_ij = geom::Distance(
        their_sender, shared_->links->Receiver(link_));
    if (d_ij <= 0.0) return;  // degenerate co-location; ignore the beacon
    const double d_jj = shared_->links->Length(link_);
    const double my_power = shared_->links->EffectiveTxPower(
        link_, shared_->params.tx_power);
    const double factor = std::log1p(
        shared_->params.gamma_th * (message.data[kTxPower] / my_power) *
        std::pow(d_jj / d_ij, shared_->params.alpha));
    round_sum_ += factor;
    if (message.data[kViolating] > 0.5) {
      heard_violator_estimates_.push_back(
          {message.data[kEstimate], message.from});
    }
  }

  void OnTimer(Context& ctx, std::uint64_t timer_id) override {
    if (!active_) return;
    if (timer_id == kTimerBeacon) {
      round_sum_ = 0.0;
      heard_violator_estimates_.clear();
      const geom::Vec2 sender = shared_->links->Sender(link_);
      ctx.BroadcastLocal(
          kBeaconTag,
          {sender.x, sender.y, shared_->links->Length(link_),
           shared_->links->EffectiveTxPower(link_, shared_->params.tx_power),
           estimate_, violating_ ? 1.0 : 0.0});
      ctx.SetTimer(0.8 * shared_->options.round_duration, kTimerDecide);
      return;
    }
    FS_CHECK(timer_id == kTimerDecide);
    estimate_ = noise_factor_ + round_sum_;
    violating_ = estimate_ > GammaEps();
    if (violating_) {
      if (round_ < shared_->options.contention_rounds) {
        // Randomized back-off, mirroring sched/dls.cpp.
        const double overload = estimate_ / GammaEps();
        const double p = std::min(
            1.0, shared_->options.backoff_probability *
                     (1.0 - 1.0 / overload) * 2.0);
        if (rng::UniformUnit(coin_) < p) {
          active_ = false;
          return;
        }
      } else {
        // Resolution: withdraw iff locally the worst violator (stale-by-
        // one-round estimates; ties broken toward the higher id).
        bool is_worst = true;
        for (const auto& [their_estimate, their_id] :
             heard_violator_estimates_) {
          if (their_estimate > estimate_ ||
              (their_estimate == estimate_ && their_id > ctx.Self())) {
            is_worst = false;
            break;
          }
        }
        if (is_worst) {
          active_ = false;
          return;
        }
      }
    }
    ++round_;
    if (round_ < shared_->total_rounds) {
      ctx.SetTimer(0.2 * shared_->options.round_duration, kTimerBeacon);
    } else if (violating_) {
      // Terminal self-prune: a still-violating agent withdraws, which by
      // interference monotonicity leaves every survivor satisfied.
      active_ = false;
    }
  }

 private:
  [[nodiscard]] double GammaEps() const {
    return shared_->params.GammaEpsilon();
  }
  [[nodiscard]] double NoiseFactor() const {
    if (shared_->params.noise_power == 0.0) return 0.0;
    const double signal =
        shared_->links->EffectiveTxPower(link_, shared_->params.tx_power) *
        std::pow(shared_->links->Length(link_), -shared_->params.alpha);
    return shared_->params.gamma_th * shared_->params.noise_power / signal;
  }

  const Shared* shared_;
  net::LinkId link_;
  rng::Xoshiro256 coin_;
  bool active_ = true;
  bool violating_ = false;
  double estimate_ = 0.0;
  double noise_factor_ = 0.0;
  double round_sum_ = 0.0;
  std::uint32_t round_ = 0;
  std::vector<std::pair<double, NodeId>> heard_violator_estimates_;
};

}  // namespace

DlsProtocolResult RunDlsProtocol(const net::LinkSet& links,
                                 const channel::ChannelParams& params,
                                 const DlsProtocolOptions& options) {
  params.Validate();
  FS_CHECK_MSG(options.round_duration > 0.0, "round duration must be > 0");
  FS_CHECK_MSG(options.contention_rounds + options.resolution_rounds > 0,
               "need at least one round");

  Shared shared;
  shared.links = &links;
  shared.params = params;
  shared.options = options;
  shared.total_rounds =
      options.contention_rounds + options.resolution_rounds;

  EventSimulator::Options sim_options;
  sim_options.broadcast_radius = options.broadcast_radius;
  // Keep all delivery inside the beacon phase: the worst-case propagation
  // must complete before the decision timer at 0.8·T fires.
  sim_options.fixed_latency = 1e-4 * options.round_duration;
  sim_options.propagation_delay_per_unit =
      0.5 * options.round_duration / std::max(1.0, options.broadcast_radius);
  EventSimulator sim(sim_options);

  std::vector<LinkAgent*> agents;
  rng::Xoshiro256 master(options.seed);
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    auto agent = std::make_unique<LinkAgent>(&shared, i, master);
    master.Jump();
    agents.push_back(agent.get());
    sim.AddNode(std::move(agent), links.Sender(i));
  }

  DlsProtocolResult result;
  result.sim_stats = sim.Run(
      (static_cast<double>(shared.total_rounds) + 1.0) *
      options.round_duration);
  result.rounds = shared.total_rounds;
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    if (agents[i]->Active()) result.schedule.push_back(i);
  }
  return result;
}

}  // namespace fadesched::distsim
