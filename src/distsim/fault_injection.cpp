#include "distsim/fault_injection.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::distsim {

bool FaultPlan::Enabled() const {
  return drop_probability > 0.0 || radius_shrink_per_round > 0.0 ||
         timer_jitter > 0.0 || !crashes.empty();
}

bool FaultPlan::CrashedAt(NodeId node, Time at) const {
  for (const CrashWindow& w : crashes) {
    if (w.node == node && at >= w.begin && at < w.end) return true;
  }
  return false;
}

bool FaultPlan::EverCrashedBefore(NodeId node, Time horizon) const {
  for (const CrashWindow& w : crashes) {
    if (w.node == node && w.begin < horizon) return true;
  }
  return false;
}

Time FaultPlan::RecoveryTime(NodeId node, Time at) const {
  // Windows may overlap; the node is only up again once no window covers
  // the candidate recovery instant.
  Time recovery = at;
  bool covered = true;
  while (covered) {
    covered = false;
    for (const CrashWindow& w : crashes) {
      if (w.node == node && recovery >= w.begin && recovery < w.end) {
        recovery = w.end;
        covered = std::isfinite(recovery);
        if (!covered) return recovery;  // permanent crash
      }
    }
  }
  FS_CHECK_MSG(recovery > at, "RecoveryTime called on a live node");
  return recovery;
}

double FaultPlan::RadiusFactor(Time at) const {
  if (radius_shrink_per_round <= 0.0) return 1.0;
  const double rounds_elapsed = std::floor(at / round_period);
  return std::max(min_radius_factor,
                  1.0 - radius_shrink_per_round * rounds_elapsed);
}

void FaultPlan::Validate() const {
  FS_CHECK_MSG(drop_probability >= 0.0 && drop_probability <= 1.0,
               "drop probability must be in [0, 1]");
  FS_CHECK_MSG(radius_shrink_per_round >= 0.0 &&
                   radius_shrink_per_round <= 1.0,
               "radius shrink per round must be in [0, 1]");
  FS_CHECK_MSG(min_radius_factor > 0.0 && min_radius_factor <= 1.0,
               "min radius factor must be in (0, 1]");
  FS_CHECK_MSG(round_period > 0.0, "round period must be positive");
  FS_CHECK_MSG(timer_jitter >= 0.0 && std::isfinite(timer_jitter),
               "timer jitter must be finite and non-negative");
  for (const CrashWindow& w : crashes) {
    FS_CHECK_MSG(w.begin >= 0.0, "crash window must start at t >= 0");
    FS_CHECK_MSG(w.begin < w.end, "crash window must have begin < end");
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), enabled_(plan.Enabled()), stream_(plan.seed) {
  plan_.Validate();
}

bool FaultInjector::RollMessageDrop() {
  if (plan_.drop_probability <= 0.0) return false;
  return rng::UniformUnit(stream_) < plan_.drop_probability;
}

double FaultInjector::RollTimerJitter() {
  if (plan_.timer_jitter <= 0.0) return 0.0;
  return plan_.timer_jitter * rng::UniformUnit(stream_);
}

std::vector<CrashWindow> SampleCrashWindows(std::size_t num_nodes,
                                            double crash_fraction,
                                            Time horizon,
                                            Time outage_duration,
                                            std::uint64_t seed) {
  FS_CHECK_MSG(crash_fraction >= 0.0 && crash_fraction <= 1.0,
               "crash fraction must be in [0, 1]");
  FS_CHECK_MSG(horizon > 0.0, "horizon must be positive");
  std::vector<CrashWindow> crashes;
  rng::Xoshiro256 gen(seed);
  for (NodeId node = 0; node < num_nodes; ++node) {
    const double roll = rng::UniformUnit(gen);
    const double begin = rng::UniformRange(gen, 0.0, horizon);
    if (roll >= crash_fraction) continue;  // draws consumed either way
    CrashWindow w;
    w.node = node;
    w.begin = begin;
    w.end = outage_duration > 0.0
                ? begin + outage_duration
                : std::numeric_limits<double>::infinity();
    crashes.push_back(w);
  }
  return crashes;
}

}  // namespace fadesched::distsim
