// DLS as an actual message-passing protocol on the discrete-event
// simulator — the executable version of the decentralized scheme that
// sched/dls.* only models in the aggregate.
//
// Each link is an agent at its sender. Time is divided into rounds of
// `round_duration`:
//   1. Beacon phase — every still-active agent locally broadcasts
//      (sender position, link length, tx power, last local estimate,
//      violating flag).
//   2. Decision phase — each agent computes its interference-factor
//      estimate from the beacons it heard. During the contention rounds a
//      violating agent backs off with probability p (randomized symmetry
//      breaking); during the subsequent resolution rounds the *locally
//      worst* violator withdraws deterministically (max estimate among
//      heard violators, ties to the higher id).
// After the last round every agent still violating self-prunes; by
// monotonicity of interference the surviving set satisfies every
// survivor's local constraint — with a broadcast radius covering the
// deployment that is exactly Corollary 3.1 feasibility.
//
// Fault tolerance: a FaultPlan in the options injects beacon loss, radius
// fading, node crashes, and timer jitter (see fault_injection.hpp). When
// any fault channel is active (or robust mode is forced on) the agents
// switch to a hardened estimator: a neighbour that falls silent keeps
// contributing its last-heard interference factor, geometrically decayed
// per missed round, instead of vanishing instantly; and an agent that
// hears nothing at all for `max_silent_rounds` consecutive rounds —
// having heard neighbours before — assumes it is cut off from the control
// plane and self-prunes conservatively. With an all-zero plan the legacy
// estimator runs unchanged, and the protocol output is bit-identical to
// the fault-free implementation.
#pragma once

#include <cstdint>

#include "channel/params.hpp"
#include "distsim/event_sim.hpp"
#include "net/link_set.hpp"

namespace fadesched::distsim {

struct DlsProtocolOptions {
  double round_duration = 1.0;          ///< simulated seconds per round
  std::uint32_t contention_rounds = 12; ///< randomized back-off rounds
  std::uint32_t resolution_rounds = 12; ///< deterministic local-max rounds
  double backoff_probability = 0.4;
  std::uint64_t seed = 0xd15eedULL;
  /// Radius of the local broadcast (absolute distance). Agents outside it
  /// are invisible to each other.
  double broadcast_radius = 1500.0;

  /// Control-plane fault model; the all-zero default injects nothing.
  FaultPlan fault;

  /// kAuto hardens the estimator iff `fault` is enabled; kOn/kOff force it.
  enum class RobustMode { kAuto, kOff, kOn };
  RobustMode robust = RobustMode::kAuto;

  /// Hardened estimator: per-missed-round decay of a silent neighbour's
  /// last-heard interference factor (in [0, 1]).
  double estimate_decay = 0.6;
  /// A silent neighbour is forgotten — and a totally isolated agent
  /// self-prunes — after this many consecutive silent rounds.
  std::uint32_t max_silent_rounds = 3;

  /// Throws CheckFailure unless durations/radius are positive, there is at
  /// least one round, probabilities and the decay are in [0, 1], the
  /// silent-round limit is non-zero, and the fault plan validates.
  void Validate() const;
};

struct DlsProtocolResult {
  net::Schedule schedule;      ///< link ids still active at the end
  SimStats sim_stats;          ///< messages / events / simulated time
  std::uint32_t rounds = 0;    ///< rounds actually executed

  // Degradation metrics (all zero on fault-free runs).
  std::uint64_t beacons_lost = 0;        ///< dropped + lost to crashes
  std::size_t agents_crashed = 0;        ///< agents down at any point
  std::size_t agents_silent_pruned = 0;  ///< isolated agents that withdrew
  /// Fraction of the surviving schedule violating Corollary 3.1 — the
  /// residual infeasibility the faults caused (0 on fault-free runs with a
  /// covering broadcast radius).
  double residual_violation_rate = 0.0;
};

/// Runs the protocol over the given links and returns the surviving
/// schedule plus the protocol's communication cost.
DlsProtocolResult RunDlsProtocol(const net::LinkSet& links,
                                 const channel::ChannelParams& params,
                                 const DlsProtocolOptions& options = {});

}  // namespace fadesched::distsim
