// DLS as an actual message-passing protocol on the discrete-event
// simulator — the executable version of the decentralized scheme that
// sched/dls.* only models in the aggregate.
//
// Each link is an agent at its sender. Time is divided into rounds of
// `round_duration`:
//   1. Beacon phase — every still-active agent locally broadcasts
//      (sender position, link length, tx power, last local estimate,
//      violating flag).
//   2. Decision phase — each agent computes its interference-factor
//      estimate from the beacons it heard. During the contention rounds a
//      violating agent backs off with probability p (randomized symmetry
//      breaking); during the subsequent resolution rounds the *locally
//      worst* violator withdraws deterministically (max estimate among
//      heard violators, ties to the higher id).
// After the last round every agent still violating self-prunes; by
// monotonicity of interference the surviving set satisfies every
// survivor's local constraint — with a broadcast radius covering the
// deployment that is exactly Corollary 3.1 feasibility.
#pragma once

#include <cstdint>

#include "channel/params.hpp"
#include "distsim/event_sim.hpp"
#include "net/link_set.hpp"

namespace fadesched::distsim {

struct DlsProtocolOptions {
  double round_duration = 1.0;          ///< simulated seconds per round
  std::uint32_t contention_rounds = 12; ///< randomized back-off rounds
  std::uint32_t resolution_rounds = 12; ///< deterministic local-max rounds
  double backoff_probability = 0.4;
  std::uint64_t seed = 0xd15eedULL;
  /// Radius of the local broadcast (absolute distance). Agents outside it
  /// are invisible to each other.
  double broadcast_radius = 1500.0;
};

struct DlsProtocolResult {
  net::Schedule schedule;      ///< link ids still active at the end
  SimStats sim_stats;          ///< messages / events / simulated time
  std::uint32_t rounds = 0;    ///< rounds actually executed
};

/// Runs the protocol over the given links and returns the surviving
/// schedule plus the protocol's communication cost.
DlsProtocolResult RunDlsProtocol(const net::LinkSet& links,
                                 const channel::ChannelParams& params,
                                 const DlsProtocolOptions& options = {});

}  // namespace fadesched::distsim
