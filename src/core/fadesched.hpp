// Umbrella header: include everything a typical application needs.
#pragma once

#include "channel/deterministic.hpp"     // IWYU pragma: export
#include "channel/feasibility.hpp"       // IWYU pragma: export
#include "channel/interference.hpp"      // IWYU pragma: export
#include "channel/params.hpp"            // IWYU pragma: export
#include "core/problem.hpp"              // IWYU pragma: export
#include "core/version.hpp"              // IWYU pragma: export
#include "net/link_set.hpp"              // IWYU pragma: export
#include "net/scenario.hpp"              // IWYU pragma: export
#include "net/scenario_io.hpp"           // IWYU pragma: export
#include "net/topology_stats.hpp"        // IWYU pragma: export
#include "sched/registry.hpp"            // IWYU pragma: export
#include "sched/scheduler.hpp"           // IWYU pragma: export
#include "sim/exact_metrics.hpp"         // IWYU pragma: export
#include "sim/experiment.hpp"            // IWYU pragma: export
#include "sim/monte_carlo.hpp"           // IWYU pragma: export
