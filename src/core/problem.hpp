// Top-level facade: a Fading-R-LS problem instance and one-call solving.
//
// Quickstart:
//   fadesched::core::Problem problem(std::move(links), params);
//   auto solution = problem.Solve("rle");
//   // solution.schedule, solution.expected_throughput, ...
#pragma once

#include <string>
#include <vector>

#include "channel/params.hpp"
#include "net/link_set.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::core {

struct Solution {
  net::Schedule schedule;
  std::string algorithm;
  double claimed_rate = 0.0;          ///< Σ λ of the scheduled links
  bool fading_feasible = false;       ///< Corollary 3.1 holds for all links
  double expected_throughput = 0.0;   ///< Σ λ_j·Pr(j decodes) (Theorem 3.1)
  double expected_failed = 0.0;       ///< Σ (1 − Pr(j decodes))
  double min_success_probability = 1.0;  ///< worst link's Pr(decodes)
};

class Problem {
 public:
  /// Validates the channel parameters on construction.
  Problem(net::LinkSet links, channel::ChannelParams params);

  [[nodiscard]] const net::LinkSet& Links() const { return links_; }
  [[nodiscard]] const channel::ChannelParams& Params() const { return params_; }

  /// Runs a registered scheduler (see sched::KnownSchedulers()) and
  /// evaluates the result under the fading model.
  [[nodiscard]] Solution Solve(const std::string& algorithm) const;

  /// Runs an externally constructed scheduler.
  [[nodiscard]] Solution Solve(const sched::Scheduler& scheduler) const;

  /// Evaluates an arbitrary schedule under the fading model (useful for
  /// hand-crafted or externally computed schedules).
  [[nodiscard]] Solution Evaluate(net::Schedule schedule,
                                  std::string label) const;

 private:
  net::LinkSet links_;
  channel::ChannelParams params_;
};

}  // namespace fadesched::core
