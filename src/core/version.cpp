#include "core/version.hpp"

namespace fadesched::core {

const char* VersionString() { return "1.0.0"; }

Version LibraryVersion() { return Version{1, 0, 0}; }

}  // namespace fadesched::core
