#include "core/problem.hpp"

#include <algorithm>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "sched/registry.hpp"
#include "sim/exact_metrics.hpp"

namespace fadesched::core {

Problem::Problem(net::LinkSet links, channel::ChannelParams params)
    : links_(std::move(links)), params_(params) {
  params_.Validate();
}

Solution Problem::Solve(const std::string& algorithm) const {
  return Solve(*sched::MakeScheduler(algorithm));
}

Solution Problem::Solve(const sched::Scheduler& scheduler) const {
  sched::ScheduleResult result = scheduler.Schedule(links_, params_);
  return Evaluate(std::move(result.schedule), scheduler.Name());
}

Solution Problem::Evaluate(net::Schedule schedule, std::string label) const {
  std::sort(schedule.begin(), schedule.end());
  const channel::InterferenceCalculator calc(links_, params_);
  const sim::ExpectedMetrics expected =
      sim::ComputeExpectedMetrics(links_, params_, schedule);

  Solution solution;
  solution.algorithm = std::move(label);
  solution.claimed_rate = links_.TotalRate(schedule);
  solution.fading_feasible = channel::ScheduleIsFeasible(calc, schedule);
  solution.expected_throughput = expected.expected_throughput;
  solution.expected_failed = expected.expected_failed;
  for (double p : expected.link_success_probability) {
    solution.min_success_probability =
        std::min(solution.min_success_probability, p);
  }
  solution.schedule = std::move(schedule);
  return solution;
}

}  // namespace fadesched::core
