// Library version information.
#pragma once

namespace fadesched::core {

/// Semantic version string, e.g. "1.0.0".
const char* VersionString();

struct Version {
  int major = 0;
  int minor = 0;
  int patch = 0;
};
Version LibraryVersion();

}  // namespace fadesched::core
