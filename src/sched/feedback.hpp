// Feedback-driven multi-slot retry scheduling.
//
// The one-shot schedulers pick a subset that is *probabilistically* safe
// (Corollary 3.1 bounds each link's outage by ε); over a real slot some
// links still fade out. This module closes the loop: the schedule
// transmits, each slot is one Monte-Carlo channel realization, receivers
// ACK, and failed links retry with exponential backoff until they either
// deliver or exhaust `max_attempts` and are blacklisted. The output is
// what a link-layer actually observes — delivered rate and the
// distribution of delivery delays — rather than the per-slot expectation.
//
// Determinism: slot t draws from a dedicated xoshiro256++ stream keyed by
// (seed, t), exactly like the Monte-Carlo simulator's per-trial streams,
// so results are bit-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/params.hpp"
#include "mathx/stats.hpp"
#include "net/link_set.hpp"
#include "sim/fading_models.hpp"  // header-only; no fs_sim link dependency

namespace fadesched::sched {

struct FeedbackOptions {
  std::size_t max_slots = 256;     ///< hard cap on simulated slots
  std::uint32_t max_attempts = 8;  ///< blacklist after this many failures
  double backoff_base = 1.0;       ///< slots before the first retry
  double backoff_factor = 2.0;     ///< growth per additional failure
  std::size_t backoff_cap = 64;    ///< max gap between retries (slots)
  std::uint64_t seed = 42;
  /// Channel realization model (the paper's Rayleigh by default).
  sim::FadingOptions fading;

  /// Throws CheckFailure unless slots/attempts are non-zero, the backoff
  /// base ≥ 1 slot with factor ≥ 1 and a non-zero cap, and the fading
  /// options validate.
  void Validate() const;
};

/// Per-link outcome, indexed like the input schedule.
struct FeedbackLinkOutcome {
  net::LinkId link = 0;
  std::uint32_t attempts = 0;   ///< transmissions performed
  bool delivered = false;
  bool blacklisted = false;     ///< gave up after max_attempts failures
  std::size_t delivery_slot = 0;  ///< valid iff delivered
};

struct FeedbackResult {
  std::vector<FeedbackLinkOutcome> outcomes;
  std::size_t slots_used = 0;       ///< last slot with activity, + 1
  std::size_t delivered_links = 0;
  std::size_t blacklisted_links = 0;
  /// Σ λ over delivered links / Σ λ over the whole schedule (1.0 for an
  /// empty schedule: nothing demanded, nothing missed).
  double delivered_rate_fraction = 1.0;
  /// Delivery-slot distribution over delivered links (the delay profile).
  mathx::RunningStats delay_slots;
  /// Attempt-count distribution over every scheduled link.
  mathx::RunningStats attempts_per_link;
};

/// Runs `schedule` through per-slot fading realizations with ACK-driven
/// retries. Links still pending when `max_slots` runs out are reported
/// as neither delivered nor blacklisted.
FeedbackResult RunFeedbackSchedule(const net::LinkSet& links,
                                   const channel::ChannelParams& params,
                                   const net::Schedule& schedule,
                                   const FeedbackOptions& options = {});

}  // namespace fadesched::sched
