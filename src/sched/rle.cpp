#include "sched/rle.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "channel/batch_interference.hpp"
#include "geom/spatial_hash.hpp"
#include "sched/constants.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

RleScheduler::RleScheduler(RleOptions options) : options_(options) {
  FS_CHECK_MSG(options_.c2 > 0.0 && options_.c2 < 1.0, "c2 must be in (0, 1)");
  FS_CHECK_MSG(options_.c1_scale > 0.0, "c1_scale must be positive");
}

ScheduleResult RleScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  std::optional<channel::InterferenceEngine> local_engine;
  const channel::InterferenceEngine& engine =
      channel::ObtainEngine(links, params, options_.interference, local_engine);
  const double gamma_eps = params.GammaEpsilon();
  // With per-link power control, every pairwise factor is bounded by the
  // uniform-power expression with γ_th inflated by the max/min power
  // ratio, so computing c1 from the inflated γ_th preserves Theorem 4.3.
  channel::ChannelParams effective = params;
  effective.gamma_th *= links.TxPowerRatio(params.tx_power);
  const double c1 = RleC1(effective, options_.c2) * options_.c1_scale;
  const std::size_t n = links.Size();

  // Visit order: ascending link length, ties by id (deterministic).
  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (links.Length(a) != links.Length(b)) {
      return links.Length(a) < links.Length(b);
    }
    return a < b;
  });

  // Sender index for the radius eliminations (rule A). Bucket size on the
  // order of the smallest elimination radius keeps queries tight.
  const geom::SpatialHash sender_index(links.Senders(),
                                       std::max(1e-9, c1 * links.MinLength()));

  std::vector<char> alive(n, 1);
  // Accumulated budget consumption per receiver, maintained by the
  // incremental accumulator (per-receiver Neumaier sums seeded with the
  // noise factor — 0 in the paper's N₀ = 0 setting — so rule B naturally
  // accounts for noise). Links whose noise alone blows the rule-B budget
  // can never be scheduled alongside anything and are dropped up front.
  channel::IncrementalFeasibility acc(engine);
  const double rule_b_budget = options_.c2 * gamma_eps;
  for (net::LinkId j = 0; j < n; ++j) {
    if (acc.Sum(j) > rule_b_budget) alive[j] = 0;
  }
  net::Schedule picked;

  for (net::LinkId i : order) {
    if (!alive[i]) continue;
    picked.push_back(i);
    alive[i] = 0;

    // Rule A (Algorithm 2, line 4): drop links whose sender is within
    // c1·d_ii of the picked receiver.
    sender_index.ForEachInRadius(links.Receiver(i), c1 * links.Length(i),
                                 [&](std::size_t j) {
                                   // Paper uses strict '<'; the index's
                                   // inclusive boundary differs only on a
                                   // measure-zero set and is conservative.
                                   alive[j] = 0;
                                 });

    // Rule B (line 5): accumulate the new pick's factor on every surviving
    // receiver — O(survivors) cached additions through the engine's tables
    // — and drop those whose budget from the picked set is blown.
    acc.Add(i, alive);
    for (net::LinkId j = 0; j < n; ++j) {
      if (alive[j] && acc.Sum(j) > rule_b_budget) alive[j] = 0;
    }
  }
  return FinalizeResult(links, std::move(picked), Name());
}

}  // namespace fadesched::sched
