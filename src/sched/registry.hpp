// Name-based scheduler factory so benches, examples, and the CLI surface
// can select algorithms uniformly — plus the machine-checkable contract
// each scheduler publishes, which the oracle harness (src/testing)
// enforces on fuzzed instances. Registering a scheduler here is what puts
// it under fuzz coverage; there is no second list to update.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace fadesched::sched {

/// The promises a registered scheduler makes about its output. Every field
/// is enforced mechanically by testing::OracleHarness, so a contract must
/// only claim what the algorithm actually proves:
///   * fading_feasible — every emitted schedule satisfies Corollary 3.1
///     for every member (LDP/RLE constructions, the exact solvers, the
///     feasibility-gated greedy). DLS is deliberately *not* flagged: its
///     guarantee holds only under the sensing-radius approximation.
///   * exact — claimed_rate equals the true optimum, so two exact solvers
///     must agree and every other scheduler's informed rate is bounded by
///     theirs.
///   * nonempty_when_feasible — returns at least one link whenever some
///     singleton schedule is feasible (the weakest consequence of any
///     claimed approximation ratio; randomized back-off schemes cannot
///     promise it).
struct SchedulerContract {
  std::string name;
  bool fading_feasible = false;
  bool exact = false;
  bool nonempty_when_feasible = false;
  /// Largest instance the scheduler accepts; 0 = unbounded. The exact
  /// solvers refuse larger inputs (2^N subsets) rather than hanging.
  std::size_t max_links = 0;
  /// Largest instance the fuzz harness feeds this scheduler; 0 = no cap.
  /// Distinct from max_links: brute force *accepts* N = 26 but costs 2^N
  /// per run, and the harness re-runs each scheduler ~12× per instance
  /// (determinism + five metamorphic transforms), so slow-but-correct
  /// solvers opt into a smaller fuzzing window.
  std::size_t fuzz_cap = 0;
};

/// Known names: "ldp", "ldp_two_sided", "rle", "approx_logn",
/// "approx_diversity", "fading_greedy", "exact_brute_force", "exact_bb",
/// "dls". Throws CheckFailure for unknown names.
SchedulerPtr MakeScheduler(const std::string& name);

/// All registered names, in a stable presentation order.
std::vector<std::string> KnownSchedulers();

/// Contracts for every registered scheduler, same order as
/// KnownSchedulers(). The oracle harness iterates this list, so a newly
/// registered scheduler is fuzz-covered automatically.
const std::vector<SchedulerContract>& RegisteredSchedulers();

/// Contract lookup by name; throws CheckFailure for unknown names.
const SchedulerContract& ContractFor(const std::string& name);

}  // namespace fadesched::sched
