// Name-based scheduler factory so benches, examples, the CLI surface, and
// the scheduling service can select algorithms uniformly — plus the
// machine-checkable contract each scheduler publishes, which the oracle
// harness (src/testing) enforces on fuzzed instances. Registering a
// scheduler here is what puts it under fuzz coverage; there is no second
// list to update.
//
// The registry is a real table, not an if-chain: built-in schedulers are
// seeded at first use and extensions register at runtime through
// RegisterScheduler. Names are unique — registering a duplicate (built-in
// or extension) throws instead of silently shadowing, because the serving
// front-end resolves schedulers by name at request time and a shadowed
// name would change what every cached response means.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

/// The promises a registered scheduler makes about its output. Every field
/// is enforced mechanically by testing::OracleHarness, so a contract must
/// only claim what the algorithm actually proves:
///   * fading_feasible — every emitted schedule satisfies Corollary 3.1
///     for every member (LDP/RLE constructions, the exact solvers, the
///     feasibility-gated greedy). DLS is deliberately *not* flagged: its
///     guarantee holds only under the sensing-radius approximation.
///   * exact — claimed_rate equals the true optimum, so two exact solvers
///     must agree and every other scheduler's informed rate is bounded by
///     theirs.
///   * nonempty_when_feasible — returns at least one link whenever some
///     singleton schedule is feasible (the weakest consequence of any
///     claimed approximation ratio; randomized back-off schemes cannot
///     promise it).
struct SchedulerContract {
  std::string name;
  bool fading_feasible = false;
  bool exact = false;
  bool nonempty_when_feasible = false;
  /// Largest instance the scheduler accepts; 0 = unbounded. The exact
  /// solvers refuse larger inputs (2^N subsets) rather than hanging.
  std::size_t max_links = 0;
  /// Largest instance the fuzz harness feeds this scheduler; 0 = no cap.
  /// Distinct from max_links: brute force *accepts* N = 26 but costs 2^N
  /// per run, and the harness re-runs each scheduler ~12× per instance
  /// (determinism + five metamorphic transforms), so slow-but-correct
  /// solvers opt into a smaller fuzzing window.
  std::size_t fuzz_cap = 0;
};

/// Builds a scheduler configured to obtain interference factors through
/// `engine` — the options are threaded into the scheduler's own options
/// struct where it has one (schedulers without an engine dependency ignore
/// them). The service uses this to hand cached engine state to every
/// algorithm it serves.
using SchedulerFactory =
    std::function<SchedulerPtr(const channel::EngineOptions& engine)>;

/// Built-in names: "ldp", "ldp_two_sided", "rle", "approx_logn",
/// "approx_diversity", "graph_greedy", "fading_greedy",
/// "exact_brute_force", "exact_bb", "dls", "aloha". Throws CheckFailure
/// for unknown names.
SchedulerPtr MakeScheduler(const std::string& name);

/// Same, but with explicit interference-engine options (e.g. a shared
/// prebuilt engine from the serving cache, or a non-default backend).
SchedulerPtr MakeScheduler(const std::string& name,
                           const channel::EngineOptions& engine);

/// All registered names, in registration order (built-ins first).
std::vector<std::string> KnownSchedulers();

/// Contracts for every registered scheduler, same order as
/// KnownSchedulers(). The oracle harness iterates this list, so a newly
/// registered scheduler is fuzz-covered automatically. The reference is
/// invalidated by a subsequent RegisterScheduler, so registration must
/// happen before the harness (or any concurrent reader) starts.
const std::vector<SchedulerContract>& RegisteredSchedulers();

/// Contract lookup by name; throws CheckFailure for unknown names.
const SchedulerContract& ContractFor(const std::string& name);

/// True iff `name` resolves to a registered scheduler.
bool IsRegisteredScheduler(const std::string& name);

/// Registers an extension scheduler. Throws CheckFailure when the contract
/// name is empty or already taken — duplicate names must fail loudly, not
/// shadow, because responses are cached and served by name.
void RegisterScheduler(SchedulerContract contract, SchedulerFactory factory);

/// Removes an extension scheduler registered via RegisterScheduler.
/// Throws CheckFailure for unknown names and refuses to remove built-ins.
void UnregisterScheduler(const std::string& name);

/// RAII registration for tests and short-lived plug-ins: registers on
/// construction, unregisters on destruction.
class ScopedSchedulerRegistration {
 public:
  ScopedSchedulerRegistration(SchedulerContract contract,
                              SchedulerFactory factory);
  ~ScopedSchedulerRegistration();

  ScopedSchedulerRegistration(const ScopedSchedulerRegistration&) = delete;
  ScopedSchedulerRegistration& operator=(const ScopedSchedulerRegistration&) =
      delete;

 private:
  std::string name_;
};

}  // namespace fadesched::sched
