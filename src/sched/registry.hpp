// Name-based scheduler factory so benches, examples, and the CLI surface
// can select algorithms uniformly.
#pragma once

#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace fadesched::sched {

/// Known names: "ldp", "ldp_two_sided", "rle", "approx_logn",
/// "approx_diversity", "fading_greedy", "exact_brute_force", "exact_bb",
/// "dls". Throws CheckFailure for unknown names.
SchedulerPtr MakeScheduler(const std::string& name);

/// All registered names, in a stable presentation order.
std::vector<std::string> KnownSchedulers();

}  // namespace fadesched::sched
