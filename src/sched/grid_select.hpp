// Shared machinery for grid-and-colour schedulers (LDP and ApproxLogN):
// bucket a class's receivers into grid cells and, per colour, keep the
// highest-rate link in every same-colour cell.
#pragma once

#include <array>
#include <span>

#include "geom/grid.hpp"
#include "net/link_set.hpp"

namespace fadesched::sched {

/// For each colour c in {0,1,2,3}, the schedule that keeps, in every grid
/// cell of colour c, the highest-rate link of `clazz` whose *receiver*
/// lies in that cell (Algorithm 1, lines 4–7).
std::array<net::Schedule, 4> BestLinkPerColoredCell(
    const net::LinkSet& links, std::span<const net::LinkId> clazz,
    const geom::SquareGrid& grid);

/// Index (0..3) of the schedule with the highest total rate; ties go to
/// the lower colour for determinism.
std::size_t ArgMaxRate(const net::LinkSet& links,
                       std::span<const net::Schedule> candidates);

}  // namespace fadesched::sched
