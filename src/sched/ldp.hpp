// Link Diversity Partition (LDP) — Algorithm 1, the paper's primary
// contribution for arbitrary data rates. O(g(L)) approximation.
//
// Sketch: let δ be the shortest link length and G(L) the realized length
// magnitudes. For each magnitude h, take the *one-sided* class
// L_h = {links with length < 2^{h+1} δ} (the paper's improvement over the
// two-sided classes of [14]), partition the plane into squares of side
// β_h = 2^{h+1}·β·δ with β = (8 ζ(α−1) γ_th / γ_ε)^{1/α}, 4-colour them,
// and per colour keep the highest-rate link in every same-colour square.
// Output the best of the 4·g(L) candidate schedules.
#pragma once

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct LdpOptions {
  /// Multiplier on the paper's square side β_k. 1.0 reproduces Formula
  /// (37) exactly; the ablation bench sweeps this to probe how much
  /// safety margin the constant carries.
  double beta_scale = 1.0;

  /// If true, use the two-sided classes of the ApproxLogN baseline
  /// (2^h δ ≤ d < 2^{h+1} δ) instead of the paper's one-sided classes —
  /// the knob behind the ablation in DESIGN.md.
  bool two_sided_classes = false;

  /// Interference engine configuration. LDP only consumes the per-link
  /// noise-factor table (filled identically for every backend), so its
  /// schedule never depends on the backend choice.
  channel::EngineOptions interference;
};

class LdpScheduler final : public Scheduler {
 public:
  explicit LdpScheduler(LdpOptions options = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  LdpOptions options_;
};

}  // namespace fadesched::sched
