// Feasibility backstop for constructive schedulers.
//
// The grid constants of Theorem 4.1 (Formula (37)) bound same-colour
// interference as if every link lay inside its grid square, but a class-h
// link may stick out of its square by up to β_h/β (one-sided classes admit
// any length < 2^{h+1}δ = β_h/β). The neglected term is a (1 − 1/β)^{−α}
// factor on the nearest ring, negligible in the paper's regime (α ≈ 3–4,
// where β ≈ 10) but fatal for large α, where ζ(α−1) → 1 erases the slack
// in 8ζ(α−1) while β shrinks toward 2. Fuzzing found concrete 4-link
// colinear counterexamples at α ≈ 7 (see tests/testing/corpus/).
//
// Rather than inflate β — which would change the construction everywhere,
// including the regimes where the theorem is sound — schedulers call this
// backstop on their final schedule: it deletes members until every
// survivor is informed per Corollary 3.1. Removal only shrinks the
// remaining sums, so the loop terminates with a feasible schedule and is
// a no-op whenever the construction already delivers one.
#pragma once

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::sched {

/// Returns `schedule` pruned to Corollary-3.1 feasibility: while any
/// member is not informed, the non-informed member with the largest
/// noise+interference factor (ties to the higher id) is removed.
/// Deterministic; returns the input unchanged when already feasible.
net::Schedule RepairToFeasible(const net::LinkSet& links,
                               const channel::ChannelParams& params,
                               net::Schedule schedule);

}  // namespace fadesched::sched
