#include "sched/dls.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "channel/interference.hpp"
#include "geom/spatial_hash.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

DlsScheduler::DlsScheduler(DlsOptions options) : options_(options) {
  FS_CHECK_MSG(options_.backoff_probability > 0.0 &&
                   options_.backoff_probability <= 1.0,
               "backoff probability must be in (0, 1]");
  FS_CHECK_MSG(options_.max_rounds >= 1, "need at least one round");
}

ScheduleResult DlsScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  DlsStats stats;
  return ScheduleWithStats(links, params, stats);
}

ScheduleResult DlsScheduler::ScheduleWithStats(const net::LinkSet& links,
                                               const channel::ChannelParams& params,
                                               DlsStats& stats) const {
  stats = DlsStats{};
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  const channel::InterferenceCalculator calc(links, params);
  const double gamma_eps = params.GammaEpsilon();
  const std::size_t n = links.Size();
  const bool unlimited = options_.sensing_radius_factor <= 0.0;

  const geom::SpatialHash sender_index(links.Senders(),
                                       std::max(1.0, links.MaxLength()));

  // Local interference estimate for link j against the current candidate
  // set, restricted to the sensing radius.
  auto local_estimate = [&](net::LinkId j, const std::vector<char>& active) {
    const double radius =
        unlimited ? std::numeric_limits<double>::infinity()
                  : options_.sensing_radius_factor * links.Length(j);
    // Noise is locally observable, so it is always part of the estimate.
    ++stats.estimates;
    double sum = calc.NoiseFactor(j);
    if (unlimited) {
      for (net::LinkId i = 0; i < n; ++i) {
        if (active[i] && i != j) sum += calc.Factor(i, j);
      }
    } else {
      sender_index.ForEachInRadius(links.Receiver(j), radius,
                                   [&](std::size_t i) {
                                     if (active[i] && i != j) {
                                       sum += calc.Factor(i, j);
                                     }
                                   });
    }
    return sum;
  };

  // Every link derives its own RNG stream from the shared seed, mirroring
  // per-node randomness in a real deployment.
  std::vector<rng::Xoshiro256> coins;
  coins.reserve(n);
  {
    rng::Xoshiro256 master(options_.seed);
    for (std::size_t i = 0; i < n; ++i) {
      coins.push_back(master);
      master.Jump();
    }
  }

  std::vector<char> active(n, 1);
  std::vector<double> estimate(n, 0.0);
  for (std::uint32_t round = 0; round < options_.max_rounds; ++round) {
    stats.rounds_used = round + 1;
    bool any_violation = false;
    for (net::LinkId j = 0; j < n; ++j) {
      estimate[j] = active[j] ? local_estimate(j, active) : 0.0;
      if (active[j] && estimate[j] > gamma_eps) any_violation = true;
    }
    if (!any_violation) break;
    // Synchronous update: all links decide on the same snapshot.
    for (net::LinkId j = 0; j < n; ++j) {
      if (!active[j] || estimate[j] <= gamma_eps) continue;
      const double overload = estimate[j] / gamma_eps;  // > 1
      const double p = std::min(
          1.0, options_.backoff_probability * (1.0 - 1.0 / overload) * 2.0);
      if (rng::UniformUnit(coins[j]) < p) {
        active[j] = 0;
        ++stats.backoffs;
      }
    }
  }

  // Final local pruning: repeatedly drop the worst violator until every
  // survivor's local estimate fits the budget. Guarantees termination and
  // (for unlimited sensing) exact Corollary 3.1 feasibility.
  for (;;) {
    net::LinkId worst = n;
    double worst_excess = 0.0;
    for (net::LinkId j = 0; j < n; ++j) {
      if (!active[j]) continue;
      const double excess = local_estimate(j, active) - gamma_eps;
      if (excess > worst_excess) {
        worst_excess = excess;
        worst = j;
      }
    }
    if (worst == n) break;
    active[worst] = 0;
    ++stats.pruned;
  }

  net::Schedule schedule;
  for (net::LinkId j = 0; j < n; ++j) {
    if (active[j]) schedule.push_back(j);
  }
  return FinalizeResult(links, std::move(schedule), Name());
}

}  // namespace fadesched::sched
