// ApproxDiversity — the constant-approximation scheduler of Goussevskaia,
// Wattenhofer, Halldórsson & Welzl (INFOCOM'09), the paper's second
// comparison baseline.
//
// Same greedy skeleton as RLE — repeatedly take the shortest remaining
// link and eliminate conflicting links — but conflicts are judged by the
// *deterministic* SINR model: accumulated mean-power affectance above a
// budget c2 (of the total budget 1 ⇔ mean SINR ≥ γ_th), and a sender
// clear-out radius derived without any fading outage margin. Like
// ApproxLogN it is fading-susceptible by construction.
#pragma once

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct ApproxDiversityOptions {
  /// Affectance budget split, analogous to RLE's c2.
  double c2 = 0.5;

  /// How the elimination loop obtains affectances. With kMatrix the
  /// engine materializes the affectance matrix (this scheduler's
  /// quantity) rather than the Rayleigh factor matrix.
  channel::EngineOptions interference;
};

class ApproxDiversityScheduler final : public Scheduler {
 public:
  explicit ApproxDiversityScheduler(ApproxDiversityOptions options = {});

  [[nodiscard]] std::string Name() const override { return "approx_diversity"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  ApproxDiversityOptions options_;
};

}  // namespace fadesched::sched
