// ILP export — the paper's integer-program formulation (Formulas (20)–(22)):
//
//   max  Σ λ_i x_i
//   s.t. Σ_i f_ij x_i ≤ γ_ε + M (1 − x_j)      ∀ j
//        x_i ∈ {0, 1}
//
// Emitted in CPLEX LP file format so any off-the-shelf MIP solver can
// cross-check our exact branch-and-bound solver. The big-M per constraint
// is the tight choice M_j = Σ_i f_ij − γ_ε (the worst the left side can
// exceed the budget by).
#pragma once

#include <string>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::sched {

/// Renders the ILP as LP-format text.
std::string FormatIlp(const net::LinkSet& links,
                      const channel::ChannelParams& params);

/// Writes the LP file; throws CheckFailure on I/O failure.
void WriteIlpFile(const net::LinkSet& links,
                  const channel::ChannelParams& params,
                  const std::string& path);

}  // namespace fadesched::sched
