// DLS — Decentralized Link Scheduling (extension).
//
// The paper's evaluation and conclusion refer to a decentralized scheme
// "DLS" that the body never defines (an inconsistency in the published
// text). We provide a plausible reconstruction and clearly mark it as an
// extension: a synchronous round-based contention-resolution protocol in
// which every link uses only *locally observable* information.
//
// Protocol (per round, every link in parallel):
//   1. Each candidate link j estimates the interference factor it would
//      accumulate from candidate senders within its sensing radius.
//   2. If the local estimate exceeds γ_ε, the link backs off (withdraws
//      for good) with probability p_backoff scaled by how badly the
//      budget is exceeded; randomization breaks symmetry exactly like
//      classic ALOHA-style backoff.
//   3. Rounds repeat until no candidate observes a violation or the round
//      limit is reached.
// A final *local* pruning pass guarantees the returned schedule satisfies
// Corollary 3.1 under the sensing-radius approximation; with the sensing
// radius set to infinity the guarantee is exact.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct DlsOptions {
  /// Sensing radius in multiples of the link's own length; senders beyond
  /// it are invisible to the link's local estimate. <= 0 means unlimited
  /// (every link hears everything — the "genie" configuration).
  double sensing_radius_factor = 40.0;

  /// Base back-off probability when the local budget is exceeded.
  double backoff_probability = 0.4;

  std::uint32_t max_rounds = 64;

  /// Seed for the per-link coin flips (the protocol is randomized).
  std::uint64_t seed = 0x5eedULL;
};

/// Protocol cost accounting for one DLS run — the currency a distributed
/// deployment pays (synchronous rounds and local estimate computations,
/// the latter a proxy for listening/message work per node).
struct DlsStats {
  std::uint32_t rounds_used = 0;   ///< contention rounds before quiescence
  std::uint64_t backoffs = 0;      ///< links that withdrew probabilistically
  std::uint64_t pruned = 0;        ///< links removed by the final local prune
  std::uint64_t estimates = 0;     ///< local interference estimates computed
};

class DlsScheduler final : public Scheduler {
 public:
  explicit DlsScheduler(DlsOptions options = {});

  [[nodiscard]] std::string Name() const override { return "dls"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

  /// Like Schedule() but also reports protocol-cost statistics.
  [[nodiscard]] ScheduleResult ScheduleWithStats(
      const net::LinkSet& links, const channel::ChannelParams& params,
      DlsStats& stats) const;

 private:
  DlsOptions options_;
};

}  // namespace fadesched::sched
