#include "sched/graph_greedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "geom/spatial_hash.hpp"

namespace fadesched::sched {

GraphGreedyScheduler::GraphGreedyScheduler(GraphGreedyOptions options)
    : options_(options) {}

ScheduleResult GraphGreedyScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  // The protocol model has no SINR parameters; `params` is accepted for
  // interface uniformity (and validated so misuse surfaces early).
  params.Validate();
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  const channel::GraphInterference graph(links, options_.graph);
  const std::size_t n = links.Size();

  // Descending rate, ties by shorter length then id — mirrors the other
  // greedy schedulers so comparisons isolate the interference model.
  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (links.Rate(a) != links.Rate(b)) return links.Rate(a) > links.Rate(b);
    if (links.Length(a) != links.Length(b)) {
      return links.Length(a) < links.Length(b);
    }
    return a < b;
  });

  net::Schedule kept;
  for (net::LinkId candidate : order) {
    const bool clashes =
        std::any_of(kept.begin(), kept.end(), [&](net::LinkId member) {
          return graph.Conflict(candidate, member);
        });
    if (!clashes) kept.push_back(candidate);
  }
  return FinalizeResult(links, std::move(kept), Name());
}

}  // namespace fadesched::sched
