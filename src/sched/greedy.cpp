#include "sched/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "channel/batch_interference.hpp"

namespace fadesched::sched {

FadingGreedyScheduler::FadingGreedyScheduler(FadingGreedyOptions options)
    : options_(options) {}

ScheduleResult FadingGreedyScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  std::optional<channel::InterferenceEngine> local_engine;
  const channel::InterferenceEngine& engine =
      channel::ObtainEngine(links, params, options_.interference, local_engine);
  const double gamma_eps = params.FeasibilityBudget();
  const std::size_t n = links.Size();

  // Descending rate; break rate ties by shorter length (easier to keep
  // feasible), then by id.
  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (links.Rate(a) != links.Rate(b)) return links.Rate(a) > links.Rate(b);
    if (links.Length(a) != links.Length(b)) {
      return links.Length(a) < links.Length(b);
    }
    return a < b;
  });

  // acc maintains noise factor + Σ f_ij from the current schedule onto
  // every receiver j (per-receiver Neumaier sums), so each candidate test
  // is O(|schedule|) cached additions through the engine's tables.
  // Seeding with the noise factor makes links that cannot decode even
  // alone fail the budget test immediately.
  channel::IncrementalFeasibility acc(engine);
  net::Schedule schedule;
  for (net::LinkId candidate : order) {
    // The candidate itself must stay within budget...
    if (acc.Sum(candidate) > gamma_eps) continue;
    // ...and must not push any current member over budget.
    bool fits = true;
    for (net::LinkId member : schedule) {
      if (acc.SumWith(candidate, member) > gamma_eps) {
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    // Commit: the new sender now interferes with every other receiver
    // (current members and future candidates alike).
    acc.Add(candidate);
    schedule.push_back(candidate);
  }
  return FinalizeResult(links, std::move(schedule), Name());
}

}  // namespace fadesched::sched
