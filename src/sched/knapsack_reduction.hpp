// Executable form of the NP-hardness reduction (Theorem 3.2):
// Knapsack → Fading-R-LS.
//
// Given items (value p_i, weight w_i) and capacity W, the construction
// places one sender per item on the x-axis so that its interference
// factor on a probe link (s_{n+1} at (0,1), r_{n+1} at the origin) equals
// exactly γ_ε·w_i/W, pairs each item sender with a receiver at offset δ
// chosen small enough that item links always decode, and gives the probe
// link rate 2·Σp. Then
//
//   max throughput of the Fading-R-LS instance = 2·Σp + knapsack optimum,
//
// which the tests verify against an exact DP knapsack solver and the
// exact Fading-R-LS branch-and-bound.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::sched {

struct KnapsackItem {
  double value = 0.0;   // p_i
  double weight = 0.0;  // w_i
};

struct KnapsackInstance {
  std::vector<KnapsackItem> items;
  double capacity = 0.0;  // W
};

struct ReducedInstance {
  net::LinkSet links;      ///< item links 0..n-1, probe link n
  net::LinkId probe_link;  ///< index of link n+1 (the capacity gadget)
  double probe_rate;       ///< λ_{n+1} = 2·Σ p
};

/// Builds the Fading-R-LS instance of Theorem 3.2. Item weights must be
/// positive and strictly distinct (coincident senders would break the
/// geometric construction); weights must not exceed the capacity.
ReducedInstance ReduceKnapsackToFadingRLS(const KnapsackInstance& knapsack,
                                          const channel::ChannelParams& params);

/// Exact 0/1-knapsack optimum via DP over integer weights. Weights and
/// capacity must be integers given as doubles (the reduction itself allows
/// real weights; the DP oracle is for testing).
double SolveKnapsackExact(const KnapsackInstance& knapsack);

}  // namespace fadesched::sched
