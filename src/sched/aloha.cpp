#include "sched/aloha.hpp"

#include <algorithm>

#include "channel/graph_model.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

AlohaScheduler::AlohaScheduler(AlohaOptions options) : options_(options) {
  FS_CHECK_MSG(options_.transmit_probability <= 1.0,
               "transmit probability cannot exceed 1");
  FS_CHECK_MSG(options_.auto_scale > 0.0, "auto_scale must be positive");
}

ScheduleResult AlohaScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  params.Validate();
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  double p = options_.transmit_probability;
  if (p <= 0.0) {
    // Auto mode: p = k / (1 + mean conflict degree), the standard
    // contention-scaled choice. Degree comes from the protocol model,
    // which is all an uncoordinated node could plausibly estimate.
    const channel::GraphInterference graph(links, {});
    double total_degree = 0.0;
    for (net::LinkId i = 0; i < links.Size(); ++i) {
      total_degree += static_cast<double>(graph.Degree(i));
    }
    const double mean_degree =
        total_degree / static_cast<double>(links.Size());
    p = std::min(1.0, options_.auto_scale / (1.0 + mean_degree));
  }

  rng::Xoshiro256 gen(options_.seed);
  net::Schedule schedule;
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    if (rng::UniformUnit(gen) < p) schedule.push_back(i);
  }
  return FinalizeResult(links, std::move(schedule), Name());
}

}  // namespace fadesched::sched
