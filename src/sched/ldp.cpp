#include "sched/ldp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/batch_interference.hpp"
#include "net/topology_stats.hpp"
#include "sched/constants.hpp"
#include "sched/feasibility_repair.hpp"
#include "sched/grid_select.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

LdpScheduler::LdpScheduler(LdpOptions options) : options_(options) {
  FS_CHECK_MSG(options_.beta_scale > 0.0, "beta_scale must be positive");
}

std::string LdpScheduler::Name() const {
  if (options_.two_sided_classes) return "ldp_two_sided";
  return "ldp";
}

ScheduleResult LdpScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  // The engine's noise-factor table replaces per-class NoiseFactor
  // re-derivation (a link appears in every one-sided class above its
  // magnitude, so the paper's construction re-derived each factor
  // O(g(L)) times).
  std::optional<channel::InterferenceEngine> local_engine;
  const channel::InterferenceEngine& engine =
      channel::ObtainEngine(links, params, options_.interference, local_engine);
  const double gamma_eps = params.GammaEpsilon();
  // Power-control extension: bounding f_ij by the uniform-power formula
  // with γ_th inflated by the max/min power ratio keeps Theorem 4.1 valid
  // for heterogeneous transmit powers.
  channel::ChannelParams effective = params;
  effective.gamma_th *= links.TxPowerRatio(params.tx_power);
  const double delta = links.MinLength();
  // Anchor every per-class grid at the same corner so candidates are
  // comparable and results deterministic.
  const geom::Vec2 origin = links.BoundingBox().lo;

  net::Schedule best;
  double best_rate = -1.0;
  for (int magnitude : net::LengthDiversitySet(links)) {
    std::vector<net::LinkId> clazz =
        options_.two_sided_classes
            ? net::TwoSidedLengthClass(links, magnitude)
            : net::OneSidedLengthClass(links, magnitude);
    // With ambient noise (N₀ > 0, an extension of the paper's model) each
    // receiver pays a fixed noise factor out of its γ_ε budget. Drop links
    // that cannot be informed even alone, and size the class's squares
    // from the budget left after the class's worst noise factor so
    // Theorem 4.1 still guarantees feasibility.
    double class_budget = gamma_eps;
    if (params.noise_power > 0.0) {
      std::vector<net::LinkId> viable;
      double worst_noise = 0.0;
      for (net::LinkId id : clazz) {
        const double noise = engine.NoiseFactor(id);
        if (noise >= gamma_eps) continue;  // hopeless even alone
        worst_noise = std::max(worst_noise, noise);
        viable.push_back(id);
      }
      clazz = std::move(viable);
      class_budget = gamma_eps - worst_noise;
    }
    if (clazz.empty()) continue;
    const double beta =
        LdpBetaForBudget(effective, class_budget) * options_.beta_scale;
    // β_k = 2^{h+1}·β·δ (Formula (37) and the class construction (36)).
    const double cell = std::ldexp(delta, magnitude + 1) * beta;
    const geom::SquareGrid grid(origin, cell);
    for (net::Schedule& candidate :
         BestLinkPerColoredCell(links, clazz, grid)) {
      const double rate = links.TotalRate(candidate);
      if (rate > best_rate) {
        best_rate = rate;
        best = std::move(candidate);
      }
    }
  }
  // Feasibility backstop: Formula (37) neglects that class-h links stick
  // out of their squares by up to β_h/β, which breaks Theorem 4.1 for
  // large α (fuzz-found counterexamples in tests/testing/corpus/). Prune
  // rather than inflate β, so the paper's construction is untouched in
  // the regimes where the theorem is sound.
  best = RepairToFeasible(links, params, std::move(best));
  return FinalizeResult(links, std::move(best), Name());
}

}  // namespace fadesched::sched
