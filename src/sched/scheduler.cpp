#include "sched/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fadesched::sched {

ScheduleResult FinalizeResult(const net::LinkSet& links, net::Schedule schedule,
                              std::string algorithm) {
  std::sort(schedule.begin(), schedule.end());
  FS_CHECK_MSG(std::adjacent_find(schedule.begin(), schedule.end()) ==
                   schedule.end(),
               "schedule contains duplicate link ids");
  ScheduleResult result;
  result.claimed_rate = links.TotalRate(schedule);
  result.schedule = std::move(schedule);
  result.algorithm = std::move(algorithm);
  return result;
}

}  // namespace fadesched::sched
