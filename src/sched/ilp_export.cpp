#include "sched/ilp_export.hpp"

#include <algorithm>
#include <sstream>

#include "channel/interference.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::sched {

std::string FormatIlp(const net::LinkSet& links,
                      const channel::ChannelParams& params) {
  const channel::InterferenceCalculator calc(links, params);
  const double gamma_eps = params.GammaEpsilon();
  const std::size_t n = links.Size();

  std::ostringstream os;
  os << "\\ Fading-R-LS ILP (paper formulas (20)-(22))\n";
  os << "\\ links=" << n << " alpha=" << util::FormatDouble(params.alpha)
     << " gamma_th=" << util::FormatDouble(params.gamma_th)
     << " epsilon=" << util::FormatDouble(params.epsilon)
     << " gamma_eps=" << util::FormatDouble(gamma_eps, 12) << "\n";
  os << "Maximize\n obj:";
  for (std::size_t i = 0; i < n; ++i) {
    os << (i == 0 ? " " : " + ") << util::FormatDouble(links.Rate(i), 12)
       << " x" << i;
  }
  os << "\nSubject To\n";
  for (std::size_t j = 0; j < n; ++j) {
    // Σ_i f_ij x_i + M_j x_j ≤ γ_ε + M_j  with the tight
    // M_j = max(0, Σ_i f_ij − γ_ε).
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != j) total += calc.Factor(i, j);
    }
    const double big_m = std::max(0.0, total - gamma_eps);
    os << " inf" << j << ":";
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      const double f = calc.Factor(i, j);
      if (f == 0.0) continue;
      os << (first ? " " : " + ") << util::FormatDouble(f, 12) << " x" << i;
      first = false;
    }
    if (big_m > 0.0) {
      os << (first ? " " : " + ") << util::FormatDouble(big_m, 12) << " x" << j;
      first = false;
    }
    if (first) os << " 0 x" << j;  // degenerate: no interference at all
    os << " <= " << util::FormatDouble(gamma_eps + big_m, 12) << "\n";
  }
  os << "Binary\n";
  for (std::size_t i = 0; i < n; ++i) os << " x" << i << "\n";
  os << "End\n";
  return os.str();
}

void WriteIlpFile(const net::LinkSet& links,
                  const channel::ChannelParams& params,
                  const std::string& path) {
  // Atomic write: a killed export never leaves a half-written LP file.
  util::AtomicWriteFile(path, FormatIlp(links, params));
}

}  // namespace fadesched::sched
