#include "sched/feasibility_repair.hpp"

#include <algorithm>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"

namespace fadesched::sched {

net::Schedule RepairToFeasible(const net::LinkSet& links,
                               const channel::ChannelParams& params,
                               net::Schedule schedule) {
  if (schedule.empty()) return schedule;
  const channel::InterferenceCalculator calc(links, params);
  for (;;) {
    bool any_violator = false;
    net::LinkId worst = 0;
    double worst_total = -1.0;
    for (const channel::LinkFeasibility& lf :
         channel::AnalyzeSchedule(calc, schedule)) {
      if (lf.informed) continue;
      const double total = lf.noise_factor + lf.sum_factor;
      if (!any_violator || total > worst_total ||
          (total == worst_total && lf.link > worst)) {
        worst = lf.link;
        worst_total = total;
      }
      any_violator = true;
    }
    if (!any_violator) return schedule;
    schedule.erase(std::find(schedule.begin(), schedule.end(), worst));
  }
}

}  // namespace fadesched::sched
