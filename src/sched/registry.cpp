#include "sched/registry.hpp"

#include <memory>

#include "sched/aloha.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/dls.hpp"
#include "sched/exact.hpp"
#include "sched/graph_greedy.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

SchedulerPtr MakeScheduler(const std::string& name) {
  if (name == "ldp") return std::make_unique<LdpScheduler>();
  if (name == "ldp_two_sided") {
    LdpOptions options;
    options.two_sided_classes = true;
    return std::make_unique<LdpScheduler>(options);
  }
  if (name == "rle") return std::make_unique<RleScheduler>();
  if (name == "approx_logn") return std::make_unique<ApproxLogNScheduler>();
  if (name == "approx_diversity") {
    return std::make_unique<ApproxDiversityScheduler>();
  }
  if (name == "fading_greedy") return std::make_unique<FadingGreedyScheduler>();
  if (name == "graph_greedy") return std::make_unique<GraphGreedyScheduler>();
  if (name == "exact_brute_force") {
    return std::make_unique<BruteForceScheduler>();
  }
  if (name == "exact_bb") return std::make_unique<BranchAndBoundScheduler>();
  if (name == "dls") return std::make_unique<DlsScheduler>();
  if (name == "aloha") return std::make_unique<AlohaScheduler>();
  FS_CHECK_MSG(false, "unknown scheduler: " + name);
  return nullptr;  // unreachable
}

std::vector<std::string> KnownSchedulers() {
  return {"ldp",          "ldp_two_sided",    "rle",
          "approx_logn",  "approx_diversity", "graph_greedy",
          "fading_greedy", "exact_brute_force", "exact_bb", "dls", "aloha"};
}

}  // namespace fadesched::sched
