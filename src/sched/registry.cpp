#include "sched/registry.hpp"

#include <memory>

#include "sched/aloha.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/dls.hpp"
#include "sched/exact.hpp"
#include "sched/graph_greedy.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

SchedulerPtr MakeScheduler(const std::string& name) {
  if (name == "ldp") return std::make_unique<LdpScheduler>();
  if (name == "ldp_two_sided") {
    LdpOptions options;
    options.two_sided_classes = true;
    return std::make_unique<LdpScheduler>(options);
  }
  if (name == "rle") return std::make_unique<RleScheduler>();
  if (name == "approx_logn") return std::make_unique<ApproxLogNScheduler>();
  if (name == "approx_diversity") {
    return std::make_unique<ApproxDiversityScheduler>();
  }
  if (name == "fading_greedy") return std::make_unique<FadingGreedyScheduler>();
  if (name == "graph_greedy") return std::make_unique<GraphGreedyScheduler>();
  if (name == "exact_brute_force") {
    return std::make_unique<BruteForceScheduler>();
  }
  if (name == "exact_bb") return std::make_unique<BranchAndBoundScheduler>();
  if (name == "dls") return std::make_unique<DlsScheduler>();
  if (name == "aloha") return std::make_unique<AlohaScheduler>();
  FS_CHECK_MSG(false, "unknown scheduler: " + name);
  return nullptr;  // unreachable
}

const std::vector<SchedulerContract>& RegisteredSchedulers() {
  // name, fading_feasible, exact, nonempty_when_feasible, max_links,
  // fuzz_cap.
  //
  // The flags are enforced per Schedule() call by the oracle harness, so
  // they encode the *proved* guarantees, not observed behaviour:
  //   * LDP keeps one link per occupied grid square (never empty) and its
  //     construction is Corollary-3.1 feasible by Theorem 4.2.
  //   * RLE picks the shortest remaining link first (never empty) and is
  //     feasible by Theorem 4.3.
  //   * FadingGreedy gates every admission on the feasibility oracle and
  //     always admits a feasible singleton.
  //   * The exact solvers search feasible subsets only; an empty optimum
  //     happens iff no singleton is feasible.
  //   * ApproxLogN / ApproxDiversity / GraphGreedy promise decoding only
  //     under their own (deterministic SINR / conflict graph) models, so
  //     no fading claim — but their constructions keep at least one link.
  //   * DLS's pruning guarantee holds under the finite sensing-radius
  //     approximation, and random back-off can empty the candidate set;
  //     ALOHA promises nothing at all.
  static const std::vector<SchedulerContract> kContracts = {
      {"ldp", true, false, true, 0},
      {"ldp_two_sided", true, false, true, 0},
      {"rle", true, false, true, 0},
      {"approx_logn", false, false, true, 0},
      {"approx_diversity", false, false, true, 0},
      {"graph_greedy", false, false, true, 0},
      {"fading_greedy", true, false, true, 0},
      // Brute force is O(2^N · N²) per run and the harness runs each
      // scheduler ~12× per instance, so it fuzzes only tiny instances; the
      // branch-and-bound solver prunes well and takes the full range.
      {"exact_brute_force", true, true, true, ExactOptions{}.max_links, 12},
      {"exact_bb", true, true, true, ExactOptions{}.max_links, 0},
      {"dls", false, false, false, 0},
      {"aloha", false, false, false, 0},
  };
  return kContracts;
}

const SchedulerContract& ContractFor(const std::string& name) {
  for (const SchedulerContract& contract : RegisteredSchedulers()) {
    if (contract.name == name) return contract;
  }
  FS_CHECK_MSG(false, "unknown scheduler: " + name);
  return RegisteredSchedulers().front();  // unreachable
}

std::vector<std::string> KnownSchedulers() {
  std::vector<std::string> names;
  names.reserve(RegisteredSchedulers().size());
  for (const SchedulerContract& contract : RegisteredSchedulers()) {
    names.push_back(contract.name);
  }
  return names;
}

}  // namespace fadesched::sched
