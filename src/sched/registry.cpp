#include "sched/registry.hpp"

#include <memory>
#include <mutex>
#include <utility>

#include "sched/aloha.hpp"
#include "sched/approx_diversity.hpp"
#include "sched/approx_logn.hpp"
#include "sched/dls.hpp"
#include "sched/exact.hpp"
#include "sched/graph_greedy.hpp"
#include "sched/greedy.hpp"
#include "sched/ldp.hpp"
#include "sched/rle.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

struct Registry {
  std::mutex mutex;
  std::vector<SchedulerContract> contracts;
  std::vector<SchedulerFactory> factories;  // parallel to contracts
  std::size_t num_builtin = 0;
};

template <typename SchedulerT, typename OptionsT>
SchedulerFactory EngineAwareFactory() {
  return [](const channel::EngineOptions& engine) -> SchedulerPtr {
    OptionsT options;
    options.interference = engine;
    return std::make_unique<SchedulerT>(options);
  };
}

template <typename SchedulerT>
SchedulerFactory EngineFreeFactory() {
  return [](const channel::EngineOptions&) -> SchedulerPtr {
    return std::make_unique<SchedulerT>();
  };
}

void SeedBuiltins(Registry& registry) {
  // contract = {name, fading_feasible, exact, nonempty_when_feasible,
  // max_links, fuzz_cap}.
  //
  // The flags are enforced per Schedule() call by the oracle harness, so
  // they encode the *proved* guarantees, not observed behaviour:
  //   * LDP keeps one link per occupied grid square (never empty) and its
  //     construction is Corollary-3.1 feasible by Theorem 4.2.
  //   * RLE picks the shortest remaining link first (never empty) and is
  //     feasible by Theorem 4.3.
  //   * FadingGreedy gates every admission on the feasibility oracle and
  //     always admits a feasible singleton.
  //   * The exact solvers search feasible subsets only; an empty optimum
  //     happens iff no singleton is feasible.
  //   * ApproxLogN / ApproxDiversity / GraphGreedy promise decoding only
  //     under their own (deterministic SINR / conflict graph) models, so
  //     no fading claim — but their constructions keep at least one link.
  //   * DLS's pruning guarantee holds under the finite sensing-radius
  //     approximation, and random back-off can empty the candidate set;
  //     ALOHA promises nothing at all.
  const auto add = [&registry](SchedulerContract contract,
                               SchedulerFactory factory) {
    registry.contracts.push_back(std::move(contract));
    registry.factories.push_back(std::move(factory));
  };
  add({"ldp", true, false, true, 0, 0},
      EngineAwareFactory<LdpScheduler, LdpOptions>());
  add({"ldp_two_sided", true, false, true, 0, 0},
      [](const channel::EngineOptions& engine) -> SchedulerPtr {
        LdpOptions options;
        options.two_sided_classes = true;
        options.interference = engine;
        return std::make_unique<LdpScheduler>(options);
      });
  add({"rle", true, false, true, 0, 0},
      EngineAwareFactory<RleScheduler, RleOptions>());
  add({"approx_logn", false, false, true, 0, 0},
      EngineAwareFactory<ApproxLogNScheduler, ApproxLogNOptions>());
  add({"approx_diversity", false, false, true, 0, 0},
      EngineAwareFactory<ApproxDiversityScheduler, ApproxDiversityOptions>());
  add({"graph_greedy", false, false, true, 0, 0},
      EngineFreeFactory<GraphGreedyScheduler>());
  add({"fading_greedy", true, false, true, 0, 0},
      EngineAwareFactory<FadingGreedyScheduler, FadingGreedyOptions>());
  // Brute force is O(2^N · N²) per run and the harness runs each
  // scheduler ~12× per instance, so it fuzzes only tiny instances; the
  // branch-and-bound solver prunes well and takes the full range.
  add({"exact_brute_force", true, true, true, ExactOptions{}.max_links, 12},
      EngineFreeFactory<BruteForceScheduler>());
  add({"exact_bb", true, true, true, ExactOptions{}.max_links, 0},
      EngineFreeFactory<BranchAndBoundScheduler>());
  add({"dls", false, false, false, 0, 0}, EngineFreeFactory<DlsScheduler>());
  add({"aloha", false, false, false, 0, 0},
      EngineFreeFactory<AlohaScheduler>());
  registry.num_builtin = registry.contracts.size();
}

Registry& GlobalRegistry() {
  // Registry holds a mutex, so it cannot be returned from a factory;
  // seed it in place under the same thread-safe static initialization.
  static Registry registry;
  static const bool seeded = (SeedBuiltins(registry), true);
  (void)seeded;
  return registry;
}

/// Index of `name`, or npos. Caller holds the registry mutex.
std::size_t FindLocked(const Registry& registry, const std::string& name) {
  for (std::size_t i = 0; i < registry.contracts.size(); ++i) {
    if (registry.contracts[i].name == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

constexpr auto kNotFound = static_cast<std::size_t>(-1);

}  // namespace

SchedulerPtr MakeScheduler(const std::string& name) {
  return MakeScheduler(name, channel::EngineOptions{});
}

SchedulerPtr MakeScheduler(const std::string& name,
                           const channel::EngineOptions& engine) {
  Registry& registry = GlobalRegistry();
  SchedulerFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    const std::size_t index = FindLocked(registry, name);
    FS_CHECK_MSG(index != kNotFound, "unknown scheduler: " + name);
    factory = registry.factories[index];
  }
  // Run the factory outside the lock; factories may be arbitrarily slow.
  return factory(engine);
}

const std::vector<SchedulerContract>& RegisteredSchedulers() {
  return GlobalRegistry().contracts;
}

const SchedulerContract& ContractFor(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const std::size_t index = FindLocked(registry, name);
  FS_CHECK_MSG(index != kNotFound, "unknown scheduler: " + name);
  return registry.contracts[index];
}

bool IsRegisteredScheduler(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return FindLocked(registry, name) != kNotFound;
}

std::vector<std::string> KnownSchedulers() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.contracts.size());
  for (const SchedulerContract& contract : registry.contracts) {
    names.push_back(contract.name);
  }
  return names;
}

void RegisterScheduler(SchedulerContract contract, SchedulerFactory factory) {
  FS_CHECK_MSG(!contract.name.empty(), "scheduler name must be non-empty");
  FS_CHECK_MSG(factory != nullptr, "scheduler factory must be non-null");
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  FS_CHECK_MSG(FindLocked(registry, contract.name) == kNotFound,
               "duplicate scheduler name '" + contract.name +
                   "': already registered — names resolve cached service "
                   "responses, so shadowing is forbidden");
  registry.contracts.push_back(std::move(contract));
  registry.factories.push_back(std::move(factory));
}

void UnregisterScheduler(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const std::size_t index = FindLocked(registry, name);
  FS_CHECK_MSG(index != kNotFound, "unknown scheduler: " + name);
  FS_CHECK_MSG(index >= registry.num_builtin,
               "cannot unregister built-in scheduler '" + name + "'");
  registry.contracts.erase(registry.contracts.begin() +
                           static_cast<std::ptrdiff_t>(index));
  registry.factories.erase(registry.factories.begin() +
                           static_cast<std::ptrdiff_t>(index));
}

ScopedSchedulerRegistration::ScopedSchedulerRegistration(
    SchedulerContract contract, SchedulerFactory factory)
    : name_(contract.name) {
  RegisterScheduler(std::move(contract), std::move(factory));
}

ScopedSchedulerRegistration::~ScopedSchedulerRegistration() {
  UnregisterScheduler(name_);
}

}  // namespace fadesched::sched
