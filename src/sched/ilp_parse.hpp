// Minimal CPLEX-LP parser for the subset emitted by ilp_export — enough
// to round-trip our own files and solve them with an independent
// exhaustive solver, validating the export end-to-end without an external
// MIP dependency.
//
// Supported grammar (exactly what FormatIlp produces):
//   \ comments
//   Maximize   obj: c0 x0 + c1 x1 + ...
//   Subject To name: a x0 + b x1 ... <= rhs
//   Binary     x0 \n x1 ...
//   End
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fadesched::sched {

struct ParsedConstraint {
  std::string name;
  /// (variable index, coefficient) pairs on the left-hand side.
  std::vector<std::pair<std::size_t, double>> terms;
  double rhs = 0.0;  ///< right side of "<="
};

struct ParsedIlp {
  std::size_t num_variables = 0;
  /// Objective coefficient per variable (maximization).
  std::vector<double> objective;
  std::vector<ParsedConstraint> constraints;
  /// Variables declared Binary (we require all of them to be).
  std::vector<std::size_t> binaries;
};

/// Parses LP text; throws CheckFailure on anything outside the grammar.
ParsedIlp ParseIlpText(const std::string& text);

/// Exhaustively maximizes the parsed 0/1 program (2^n subsets; refuses
/// n > max_variables). Returns the optimal objective value.
double SolveParsedIlpExhaustive(const ParsedIlp& ilp,
                                std::size_t max_variables = 24);

}  // namespace fadesched::sched
