#include "sched/knapsack_reduction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace fadesched::sched {

ReducedInstance ReduceKnapsackToFadingRLS(const KnapsackInstance& knapsack,
                                          const channel::ChannelParams& params) {
  params.Validate();
  FS_CHECK_MSG(!knapsack.items.empty(), "empty knapsack instance");
  FS_CHECK_MSG(knapsack.capacity > 0.0, "capacity must be positive");
  const double gamma_eps = params.GammaEpsilon();
  const double n = static_cast<double>(knapsack.items.size());

  // Sender position per item (Formula (23)): x_i chosen so the factor on
  // the probe receiver at the origin is exactly γ_ε·w_i/W.
  std::vector<geom::Vec2> senders;
  double total_value = 0.0;
  for (const KnapsackItem& item : knapsack.items) {
    FS_CHECK_MSG(item.weight > 0.0, "item weights must be positive");
    FS_CHECK_MSG(item.weight <= knapsack.capacity,
                 "item heavier than the capacity cannot be reduced");
    FS_CHECK_MSG(item.value >= 0.0, "item values must be non-negative");
    const double x = std::pow(
        std::expm1(gamma_eps * item.weight / knapsack.capacity) /
            params.gamma_th,
        -1.0 / params.alpha);
    senders.push_back(geom::Vec2{x, 0.0});
    total_value += item.value;
  }
  const geom::Vec2 probe_sender{0.0, 1.0};

  // d_min over all sender pairs, probe included (Formula (25)).
  std::vector<geom::Vec2> all_senders = senders;
  all_senders.push_back(probe_sender);
  double d_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < all_senders.size(); ++i) {
    for (std::size_t j = i + 1; j < all_senders.size(); ++j) {
      d_min = std::min(d_min, geom::Distance(all_senders[i], all_senders[j]));
    }
  }
  FS_CHECK_MSG(d_min > 0.0,
               "coincident senders: item weights must be strictly distinct");

  const double delta =
      d_min / (std::pow(std::expm1(gamma_eps / (n + 1.0)) / params.gamma_th,
                        -1.0 / params.alpha) +
               1.0);

  ReducedInstance out;
  for (std::size_t i = 0; i < knapsack.items.size(); ++i) {
    // Items of value 0 keep a tiny positive rate so LinkSet accepts them;
    // 0-value items never change the optimum.
    const double rate = std::max(knapsack.items[i].value, 1e-12);
    out.links.Add(net::Link{senders[i],
                            senders[i] + geom::Vec2{delta, 0.0}, rate});
  }
  out.probe_rate = 2.0 * total_value;
  FS_CHECK_MSG(out.probe_rate > 0.0, "all item values are zero");
  out.probe_link = out.links.Add(
      net::Link{probe_sender, geom::Vec2{0.0, 0.0}, out.probe_rate});
  return out;
}

double SolveKnapsackExact(const KnapsackInstance& knapsack) {
  FS_CHECK_MSG(knapsack.capacity >= 0.0, "negative capacity");
  const auto capacity = static_cast<long long>(knapsack.capacity);
  FS_CHECK_MSG(static_cast<double>(capacity) == knapsack.capacity,
               "DP oracle needs integer capacity");
  std::vector<double> best(static_cast<std::size_t>(capacity) + 1, 0.0);
  for (const KnapsackItem& item : knapsack.items) {
    const auto weight = static_cast<long long>(item.weight);
    FS_CHECK_MSG(static_cast<double>(weight) == item.weight && weight >= 0,
                 "DP oracle needs non-negative integer weights");
    if (weight > capacity) continue;
    for (long long w = capacity; w >= weight; --w) {
      best[w] = std::max(best[w], best[w - weight] + item.value);
    }
  }
  return best[static_cast<std::size_t>(capacity)];
}

}  // namespace fadesched::sched
