// Slotted-ALOHA-style random access — the zero-coordination baseline for
// the decentralized (DLS) extension. Every link independently decides to
// transmit with probability p, with no sensing and no message exchange at
// all. The classic result is that the optimal p scales like 1/contention;
// we expose both a fixed p and an automatic 1/⟨local density⟩ choice.
//
// ALOHA makes no feasibility promise of any kind — it is the floor any
// coordinated scheme must beat, which is exactly its role in the benches.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct AlohaOptions {
  /// Transmit probability. <= 0 selects automatically as
  /// min(1, k / average conflict degree) with k = auto_scale.
  double transmit_probability = -1.0;
  double auto_scale = 1.0;
  std::uint64_t seed = 0xa10a5eedULL;
};

class AlohaScheduler final : public Scheduler {
 public:
  explicit AlohaScheduler(AlohaOptions options = {});

  [[nodiscard]] std::string Name() const override { return "aloha"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  AlohaOptions options_;
};

}  // namespace fadesched::sched
