// Scheduler interface for the Fading-R-LS problem.
//
// A scheduler maps (link set, channel parameters) to a subset of links to
// activate in one slot. The objective (paper §III) is the total data rate
// of links that decode successfully; fading-resistant schedulers guarantee
// Pr(failure) ≤ ε per scheduled link, baselines only guarantee decoding
// under the deterministic mean-power model.
#pragma once

#include <memory>
#include <string>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::sched {

struct ScheduleResult {
  net::Schedule schedule;     ///< chosen link ids, ascending
  double claimed_rate = 0.0;  ///< Σ λ over the schedule (the algorithm's objective)
  std::string algorithm;      ///< name of the producing scheduler
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Computes a schedule. Implementations must accept an empty link set
  /// (returning an empty schedule) and must not mutate shared state, so a
  /// single instance can be reused across instances and threads.
  [[nodiscard]] virtual ScheduleResult Schedule(
      const net::LinkSet& links, const channel::ChannelParams& params) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Normalizes a schedule: sorts ids ascending and fills claimed_rate.
ScheduleResult FinalizeResult(const net::LinkSet& links, net::Schedule schedule,
                              std::string algorithm);

}  // namespace fadesched::sched
