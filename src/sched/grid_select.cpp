#include "sched/grid_select.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace fadesched::sched {

std::array<net::Schedule, 4> BestLinkPerColoredCell(
    const net::LinkSet& links, std::span<const net::LinkId> clazz,
    const geom::SquareGrid& grid) {
  // Best (max-rate) link per cell; first-seen wins ties so the result is
  // independent of input permutation given ascending ids.
  std::unordered_map<geom::CellIndex, net::LinkId, geom::CellIndexHash> best;
  for (net::LinkId id : clazz) {
    FS_CHECK(id < links.Size());
    const geom::CellIndex cell = grid.CellOf(links.Receiver(id));
    auto [it, inserted] = best.emplace(cell, id);
    if (!inserted && links.Rate(id) > links.Rate(it->second)) {
      it->second = id;
    }
  }
  std::array<net::Schedule, 4> by_color;
  for (const auto& [cell, id] : best) {
    by_color[geom::SquareGrid::ColorOf(cell)].push_back(id);
  }
  return by_color;
}

std::size_t ArgMaxRate(const net::LinkSet& links,
                       std::span<const net::Schedule> candidates) {
  FS_CHECK(!candidates.empty());
  std::size_t best = 0;
  double best_rate = links.TotalRate(candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double rate = links.TotalRate(candidates[i]);
    if (rate > best_rate) {
      best = i;
      best_rate = rate;
    }
  }
  return best;
}

}  // namespace fadesched::sched
