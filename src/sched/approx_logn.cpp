#include "sched/approx_logn.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/batch_interference.hpp"
#include "net/topology_stats.hpp"
#include "sched/constants.hpp"
#include "sched/grid_select.hpp"

namespace fadesched::sched {

ApproxLogNScheduler::ApproxLogNScheduler(ApproxLogNOptions options)
    : options_(options) {}

ScheduleResult ApproxLogNScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  // Noise affectance and the Rayleigh noise factor share one formula, so
  // the engine's precomputed noise table serves this deterministic-model
  // baseline too.
  std::optional<channel::InterferenceEngine> local_engine;
  const channel::InterferenceEngine& engine =
      channel::ObtainEngine(links, params, options_.interference, local_engine);
  channel::ChannelParams effective = params;
  effective.gamma_th *= links.TxPowerRatio(params.tx_power);
  const double delta = links.MinLength();
  const geom::Vec2 origin = links.BoundingBox().lo;

  net::Schedule best;
  double best_rate = -1.0;
  for (int magnitude : net::LengthDiversitySet(links)) {
    std::vector<net::LinkId> clazz =
        net::TwoSidedLengthClass(links, magnitude);
    // Noise extension mirroring LDP: the deterministic decode test with
    // N₀ > 0 is noise-affectance + Σ affectance ≤ 1, so the class's grid
    // is sized from the budget left after its worst noise affectance.
    double class_budget = 1.0;
    if (params.noise_power > 0.0) {
      std::vector<net::LinkId> viable;
      double worst_noise = 0.0;
      for (net::LinkId id : clazz) {
        const double noise = engine.NoiseFactor(id);
        if (noise >= 1.0) continue;
        worst_noise = std::max(worst_noise, noise);
        viable.push_back(id);
      }
      clazz = std::move(viable);
      class_budget = 1.0 - worst_noise;
    }
    if (clazz.empty()) continue;
    const double rho = ApproxLogNRhoForBudget(effective, class_budget);
    const double cell = std::ldexp(delta, magnitude + 1) * rho;
    const geom::SquareGrid grid(origin, cell);
    for (net::Schedule& candidate :
         BestLinkPerColoredCell(links, clazz, grid)) {
      const double rate = links.TotalRate(candidate);
      if (rate > best_rate) {
        best_rate = rate;
        best = std::move(candidate);
      }
    }
  }
  return FinalizeResult(links, std::move(best), Name());
}

}  // namespace fadesched::sched
