// GraphGreedy — greedy maximal independent set on the protocol-model
// conflict graph (the Greedy Maximal Scheduling family of §VI-A, e.g.
// Lin & Shroff). Links are taken in descending rate order and kept iff
// they conflict with no previously kept link.
//
// This is the paper's implicit third strawman: it ignores not just fading
// but *all* accumulated interference, so under the Rayleigh channel its
// failure rate is the worst of the three model families — the benches
// quantify that ordering (graph < deterministic-SINR < fading-aware).
#pragma once

#include "channel/graph_model.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct GraphGreedyOptions {
  channel::GraphModelParams graph;
};

class GraphGreedyScheduler final : public Scheduler {
 public:
  explicit GraphGreedyScheduler(GraphGreedyOptions options = {});

  [[nodiscard]] std::string Name() const override { return "graph_greedy"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  GraphGreedyOptions options_;
};

}  // namespace fadesched::sched
