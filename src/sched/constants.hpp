// The paper's derived constants, kept in one place so the algorithms, the
// tests, and the ablation benches all agree on them.
#pragma once

#include "channel/params.hpp"

namespace fadesched::sched {

/// LDP grid factor β = (8 ζ(α−1) γ_th / γ_ε)^{1/α}   (Formula (37)).
/// The square side for class h is β_k = 2^{h+1}·β·δ.
double LdpBeta(const channel::ChannelParams& params);

/// Formula (37) with an explicit interference budget in place of γ_ε —
/// used when ambient noise consumes part of the budget (the class budget
/// becomes γ_ε − max noise factor of the class).
double LdpBetaForBudget(const channel::ChannelParams& params, double budget);

/// RLE elimination radius factor
/// c1 = √2 (12 ζ(α−1) γ_th / (γ_ε (1−c2)))^{1/α} + 1   (Formula (59)).
double RleC1(const channel::ChannelParams& params, double c2);

/// Per-square link bound u = ⌈γ_ε / ln(1 + 1/(2^α β^α γ_th))⌉ from the
/// LDP approximation proof (Formula (49)).
double LdpPerSquareBound(const channel::ChannelParams& params);

/// ApproxLogN's deterministic-model grid factor ρ = (8 ζ(α−1) γ_th)^{1/α}
/// — LDP's β with the affectance budget 1 in place of γ_ε.
double ApproxLogNRho(const channel::ChannelParams& params);

/// ApproxLogN's ρ with an explicit affectance budget (1 − class noise
/// affectance when N₀ > 0).
double ApproxLogNRhoForBudget(const channel::ChannelParams& params,
                              double budget);

/// ApproxDiversity's deterministic elimination radius factor — RLE's c1
/// with the affectance budget 1 in place of γ_ε.
double ApproxDiversityC1(const channel::ChannelParams& params, double c2);

}  // namespace fadesched::sched
