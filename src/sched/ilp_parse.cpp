#include "sched/ilp_parse.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::sched {
namespace {

// Variable token "x<digits>" -> index.
std::size_t ParseVarIndex(std::string_view token) {
  FS_CHECK_MSG(token.size() >= 2 && token[0] == 'x',
               "expected variable token, got '" + std::string(token) + "'");
  const auto parsed = util::ParseInt(token.substr(1));
  FS_CHECK_MSG(parsed.has_value() && *parsed >= 0,
               "malformed variable token '" + std::string(token) + "'");
  return static_cast<std::size_t>(*parsed);
}

// Parses "c0 x0 + c1 x1 - c2 x2" into (index, coefficient) pairs.
// A term may omit the coefficient ("x3" == 1·x3).
std::vector<std::pair<std::size_t, double>> ParseLinearExpr(
    std::string_view expr) {
  std::vector<std::pair<std::size_t, double>> terms;
  std::istringstream is{std::string(expr)};
  std::string token;
  double sign = 1.0;
  double pending_coeff = 1.0;
  bool have_coeff = false;
  while (is >> token) {
    if (token == "+") {
      sign = 1.0;
      continue;
    }
    if (token == "-") {
      sign = -1.0;
      continue;
    }
    if (token[0] == 'x') {
      const std::size_t index = ParseVarIndex(token);
      terms.emplace_back(index, sign * (have_coeff ? pending_coeff : 1.0));
      sign = 1.0;
      pending_coeff = 1.0;
      have_coeff = false;
      continue;
    }
    const auto value = util::ParseDouble(token);
    FS_CHECK_MSG(value.has_value(),
                 "unexpected token in linear expression: '" + token + "'");
    FS_CHECK_MSG(!have_coeff, "two consecutive numeric tokens");
    pending_coeff = *value;
    have_coeff = true;
  }
  FS_CHECK_MSG(!have_coeff, "dangling coefficient without variable");
  return terms;
}

}  // namespace

ParsedIlp ParseIlpText(const std::string& text) {
  ParsedIlp ilp;
  enum class Section { kNone, kObjective, kConstraints, kBinary, kEnd };
  Section section = Section::kNone;

  std::istringstream lines(text);
  std::string raw;
  std::vector<std::pair<std::size_t, double>> objective_terms;
  while (std::getline(lines, raw)) {
    std::string_view line = util::Trim(raw);
    if (line.empty() || line[0] == '\\') continue;
    if (line == "Maximize") {
      section = Section::kObjective;
      continue;
    }
    if (line == "Subject To") {
      section = Section::kConstraints;
      continue;
    }
    if (line == "Binary") {
      section = Section::kBinary;
      continue;
    }
    if (line == "End") {
      section = Section::kEnd;
      continue;
    }
    switch (section) {
      case Section::kObjective: {
        const auto colon = line.find(':');
        FS_CHECK_MSG(colon != std::string_view::npos,
                     "objective line missing label");
        const auto terms = ParseLinearExpr(line.substr(colon + 1));
        objective_terms.insert(objective_terms.end(), terms.begin(),
                               terms.end());
        break;
      }
      case Section::kConstraints: {
        const auto colon = line.find(':');
        FS_CHECK_MSG(colon != std::string_view::npos,
                     "constraint line missing label");
        ParsedConstraint constraint;
        constraint.name = std::string(util::Trim(line.substr(0, colon)));
        const auto le = line.find("<=");
        FS_CHECK_MSG(le != std::string_view::npos,
                     "only <= constraints are supported");
        constraint.terms =
            ParseLinearExpr(line.substr(colon + 1, le - colon - 1));
        const auto rhs = util::ParseDouble(line.substr(le + 2));
        FS_CHECK_MSG(rhs.has_value(), "malformed constraint RHS");
        constraint.rhs = *rhs;
        ilp.constraints.push_back(std::move(constraint));
        break;
      }
      case Section::kBinary: {
        ilp.binaries.push_back(ParseVarIndex(line));
        break;
      }
      case Section::kNone:
      case Section::kEnd:
        FS_CHECK_MSG(false, "unexpected content outside sections: '" +
                                std::string(line) + "'");
    }
  }
  FS_CHECK_MSG(section == Section::kEnd, "LP file missing End marker");

  // Materialize the objective vector.
  std::size_t max_index = 0;
  for (const auto& [index, coeff] : objective_terms) {
    max_index = std::max(max_index, index);
  }
  for (const auto& constraint : ilp.constraints) {
    for (const auto& [index, coeff] : constraint.terms) {
      max_index = std::max(max_index, index);
    }
  }
  for (std::size_t index : ilp.binaries) {
    max_index = std::max(max_index, index);
  }
  ilp.num_variables = objective_terms.empty() && ilp.binaries.empty()
                          ? 0
                          : max_index + 1;
  ilp.objective.assign(ilp.num_variables, 0.0);
  for (const auto& [index, coeff] : objective_terms) {
    ilp.objective[index] += coeff;
  }
  return ilp;
}

double SolveParsedIlpExhaustive(const ParsedIlp& ilp,
                                std::size_t max_variables) {
  const std::size_t n = ilp.num_variables;
  FS_CHECK_MSG(n <= max_variables,
               "parsed ILP too large for exhaustive solving");
  FS_CHECK_MSG(ilp.binaries.size() == n,
               "exhaustive solver requires all variables binary");
  double best = 0.0;  // all-zero assignment is always feasible here
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    double objective = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) objective += ilp.objective[i];
    }
    if (objective <= best) continue;
    bool feasible = true;
    for (const auto& constraint : ilp.constraints) {
      double lhs = 0.0;
      for (const auto& [index, coeff] : constraint.terms) {
        if (mask & (std::size_t{1} << index)) lhs += coeff;
      }
      // Tolerance mirrors the feasibility slack used by the schedulers.
      if (lhs > constraint.rhs * (1.0 + 1e-9) + 1e-15) {
        feasible = false;
        break;
      }
    }
    if (feasible) best = objective;
  }
  return best;
}

}  // namespace fadesched::sched
