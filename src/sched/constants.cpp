#include "sched/constants.hpp"

#include <cmath>

#include "mathx/zeta.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

double LdpBetaForBudget(const channel::ChannelParams& params, double budget) {
  params.Validate();
  FS_CHECK_MSG(budget > 0.0, "interference budget must be positive");
  const double zeta = mathx::RiemannZeta(params.alpha - 1.0);
  return std::pow(8.0 * zeta * params.gamma_th / budget, 1.0 / params.alpha);
}

double LdpBeta(const channel::ChannelParams& params) {
  return LdpBetaForBudget(params, params.GammaEpsilon());
}

double RleC1(const channel::ChannelParams& params, double c2) {
  params.Validate();
  FS_CHECK_MSG(c2 > 0.0 && c2 < 1.0, "RLE c2 must be in (0, 1)");
  const double zeta = mathx::RiemannZeta(params.alpha - 1.0);
  return std::sqrt(2.0) *
             std::pow(12.0 * zeta * params.gamma_th /
                          (params.GammaEpsilon() * (1.0 - c2)),
                      1.0 / params.alpha) +
         1.0;
}

double LdpPerSquareBound(const channel::ChannelParams& params) {
  const double beta = LdpBeta(params);
  const double denom = std::log1p(
      1.0 / (std::pow(2.0 * beta, params.alpha) * params.gamma_th));
  return std::ceil(params.GammaEpsilon() / denom);
}

double ApproxLogNRhoForBudget(const channel::ChannelParams& params,
                              double budget) {
  params.Validate();
  FS_CHECK_MSG(budget > 0.0, "affectance budget must be positive");
  const double zeta = mathx::RiemannZeta(params.alpha - 1.0);
  return std::pow(8.0 * zeta * params.gamma_th / budget, 1.0 / params.alpha);
}

double ApproxLogNRho(const channel::ChannelParams& params) {
  return ApproxLogNRhoForBudget(params, 1.0);
}

double ApproxDiversityC1(const channel::ChannelParams& params, double c2) {
  params.Validate();
  FS_CHECK_MSG(c2 > 0.0 && c2 < 1.0, "c2 must be in (0, 1)");
  const double zeta = mathx::RiemannZeta(params.alpha - 1.0);
  return std::sqrt(2.0) *
             std::pow(12.0 * zeta * params.gamma_th / (1.0 - c2),
                      1.0 / params.alpha) +
         1.0;
}

}  // namespace fadesched::sched
