// FadingGreedy — a natural fading-resistant reference heuristic (not from
// the paper): visit links by descending rate and add each one iff the
// schedule stays feasible under Corollary 3.1 for *every* member.
//
// No approximation guarantee, but it is a strong practical competitor and
// gives the benches a third fading-resistant series.
#pragma once

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct FadingGreedyOptions {
  /// How factors are obtained for the membership tests. The differential
  /// tests pin every backend to the same schedule.
  channel::EngineOptions interference;
};

class FadingGreedyScheduler final : public Scheduler {
 public:
  explicit FadingGreedyScheduler(FadingGreedyOptions options = {});

  [[nodiscard]] std::string Name() const override { return "fading_greedy"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  FadingGreedyOptions options_;
};

}  // namespace fadesched::sched
