// ApproxLogN — the O(g(L)) scheduler of Goussevskaia, Oswald & Wattenhofer
// (MobiHoc'07), the paper's first comparison baseline.
//
// Structurally LDP's ancestor: two-sided length classes
// 2^h δ ≤ d < 2^{h+1} δ, a square grid per class, a 4-colouring, one link
// per same-colour square. The crucial difference is the feasibility model:
// the square side ρ_k = 2^{h+1}·δ·ρ with ρ = (8 ζ(α−1) γ_th)^{1/α} is
// derived from the *deterministic* SINR test (mean received powers), with
// no outage budget — so under Rayleigh fading its schedules fail a
// substantial fraction of transmissions (the paper's Fig. 5).
#pragma once

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct ApproxLogNOptions {
  /// Interference engine configuration. ApproxLogN only consumes the
  /// per-link noise table (identical for every backend), so its schedule
  /// never depends on the backend choice.
  channel::EngineOptions interference;
};

class ApproxLogNScheduler final : public Scheduler {
 public:
  explicit ApproxLogNScheduler(ApproxLogNOptions options = {});

  [[nodiscard]] std::string Name() const override { return "approx_logn"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  ApproxLogNOptions options_;
};

}  // namespace fadesched::sched
