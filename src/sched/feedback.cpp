#include "sched/feedback.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

void FeedbackOptions::Validate() const {
  FS_CHECK_MSG(max_slots > 0, "need at least one slot");
  FS_CHECK_MSG(max_attempts > 0, "need at least one attempt");
  FS_CHECK_MSG(backoff_base >= 1.0, "backoff base must be >= 1 slot");
  FS_CHECK_MSG(backoff_factor >= 1.0, "backoff factor must be >= 1");
  FS_CHECK_MSG(backoff_cap > 0, "backoff cap must be > 0");
  fading.Validate();
}

FeedbackResult RunFeedbackSchedule(const net::LinkSet& links,
                                   const channel::ChannelParams& params,
                                   const net::Schedule& schedule,
                                   const FeedbackOptions& options) {
  params.Validate();
  options.Validate();
  const std::size_t m = schedule.size();

  FeedbackResult result;
  result.outcomes.resize(m);
  if (m == 0) return result;

  double total_rate = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    FS_CHECK(schedule[j] < links.Size());
    result.outcomes[j].link = schedule[j];
    total_rate += links.Rate(schedule[j]);
  }

  // Mean received powers over scheduled pairs (i = interferer index,
  // j = victim index within `schedule`), as in the Monte-Carlo simulator.
  std::vector<double> mean(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    const double tx = links.EffectiveTxPower(schedule[i], params.tx_power);
    for (std::size_t j = 0; j < m; ++j) {
      const double d = geom::Distance(links.Sender(schedule[i]),
                                      links.Receiver(schedule[j]));
      FS_CHECK_MSG(d > 0.0, "sender coincides with a scheduled receiver");
      mean[i * m + j] = tx * std::pow(d, -params.alpha);
    }
  }

  // Gap before the next retry after `attempts` failures: exponential in
  // the failure count, clamped to [1, backoff_cap] slots.
  const auto backoff_gap = [&](std::uint32_t attempts) {
    const double gap =
        options.backoff_base *
        std::pow(options.backoff_factor, static_cast<double>(attempts - 1));
    const double clamped =
        std::min(static_cast<double>(options.backoff_cap), gap);
    return static_cast<std::size_t>(std::max(1.0, clamped));
  };

  std::vector<std::size_t> next_slot(m, 0);
  std::vector<std::size_t> active;
  std::vector<double> power;
  std::size_t pending = m;
  double delivered_rate = 0.0;

  for (std::size_t t = 0; t < options.max_slots && pending > 0; ++t) {
    active.clear();
    for (std::size_t j = 0; j < m; ++j) {
      const FeedbackLinkOutcome& out = result.outcomes[j];
      if (!out.delivered && !out.blacklisted && next_slot[j] == t) {
        active.push_back(j);
      }
    }
    if (active.empty()) continue;
    result.slots_used = t + 1;

    // One channel realization for this slot. The stream is keyed by
    // (seed, slot), so the realization is independent of how the caller
    // got here and of any threading around this function.
    rng::Xoshiro256 gen(options.seed ^
                        (0x9e3779b97f4a7c15ULL * (t + 1)));
    const std::size_t a = active.size();
    power.assign(a * a, 0.0);
    for (std::size_t i = 0; i < a; ++i) {
      for (std::size_t j = 0; j < a; ++j) {
        power[i * a + j] = sim::DrawFadedPower(
            gen, mean[active[i] * m + active[j]], options.fading);
      }
    }

    for (std::size_t j = 0; j < a; ++j) {
      FeedbackLinkOutcome& out = result.outcomes[active[j]];
      ++out.attempts;
      double interference = params.noise_power;
      for (std::size_t i = 0; i < a; ++i) {
        if (i != j) interference += power[i * a + j];
      }
      const bool ok = interference == 0.0
                          ? true
                          : power[j * a + j] >=
                                params.gamma_th * interference;
      if (ok) {
        out.delivered = true;
        out.delivery_slot = t;
        delivered_rate += links.Rate(out.link);
        --pending;
      } else if (out.attempts >= options.max_attempts) {
        out.blacklisted = true;
        --pending;
      } else {
        next_slot[active[j]] = t + backoff_gap(out.attempts);
      }
    }
  }

  for (const FeedbackLinkOutcome& out : result.outcomes) {
    result.attempts_per_link.Add(static_cast<double>(out.attempts));
    if (out.delivered) {
      ++result.delivered_links;
      result.delay_slots.Add(static_cast<double>(out.delivery_slot));
    }
    if (out.blacklisted) ++result.blacklisted_links;
  }
  result.delivered_rate_fraction =
      total_rate > 0.0 ? delivered_rate / total_rate : 1.0;
  return result;
}

}  // namespace fadesched::sched
