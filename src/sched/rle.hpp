// Recursive Link Elimination (RLE) — Algorithm 2; constant-factor
// approximation for the uniform-rate special case of Fading-R-LS.
//
// Repeatedly pick the remaining link with the shortest length, then
// eliminate (a) every link whose *sender* lies within c1·d_ii of the
// picked receiver r_i, and (b) every link whose receiver has accumulated
// interference factor above c2·γ_ε from the picked set. Theorem 4.3 shows
// the result satisfies Corollary 3.1; Theorem 4.4 bounds the gap to the
// optimum by a constant.
#pragma once

#include "channel/batch_interference.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct RleOptions {
  /// Split of the interference budget between already-picked links (c2·γ_ε)
  /// and future picks ((1−c2)·γ_ε). Must lie in (0, 1); the paper leaves
  /// the value open and the c2 ablation bench sweeps it.
  double c2 = 0.5;

  /// Multiplier on the derived elimination radius factor c1 (1.0 = paper's
  /// Formula (59)); the ablation bench probes the constant's slack.
  double c1_scale = 1.0;

  /// How rule B obtains interference factors. The differential tests pin
  /// every backend to the same schedule.
  channel::EngineOptions interference;
};

class RleScheduler final : public Scheduler {
 public:
  explicit RleScheduler(RleOptions options = {});

  [[nodiscard]] std::string Name() const override { return "rle"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  RleOptions options_;
};

}  // namespace fadesched::sched
