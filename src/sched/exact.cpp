#include "sched/exact.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "channel/interference.hpp"
#include "util/check.hpp"

namespace fadesched::sched {
namespace {

// Per-link noise factors (all zero in the paper's N₀ = 0 setting).
std::vector<double> NoiseFactors(const net::LinkSet& links,
                                 const channel::ChannelParams& params) {
  const channel::InterferenceCalculator calc(links, params);
  std::vector<double> noise(links.Size(), 0.0);
  for (net::LinkId j = 0; j < links.Size(); ++j) {
    noise[j] = calc.NoiseFactor(j);
  }
  return noise;
}

// Feasibility of an explicit subset via the dense factor matrix.
bool SubsetFeasible(const channel::InterferenceMatrix& matrix,
                    const std::vector<double>& noise,
                    const std::vector<net::LinkId>& subset, double gamma_eps) {
  for (net::LinkId j : subset) {
    if (noise[j] + matrix.SumFactor(subset, j) > gamma_eps) return false;
  }
  return true;
}

}  // namespace

BruteForceScheduler::BruteForceScheduler(ExactOptions options)
    : options_(options) {}

ScheduleResult BruteForceScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());
  const std::size_t n = links.Size();
  FS_CHECK_MSG(n <= options_.max_links,
               "instance too large for brute force; raise ExactOptions::max_links");
  const channel::InterferenceMatrix matrix(links, params);
  const std::vector<double> noise = NoiseFactors(links, params);
  const double gamma_eps = params.FeasibilityBudget();

  net::Schedule best;
  double best_rate = 0.0;
  std::vector<net::LinkId> subset;
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    subset.clear();
    double rate = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        subset.push_back(i);
        rate += links.Rate(i);
      }
    }
    if (rate <= best_rate) continue;  // cannot improve; skip feasibility
    if (SubsetFeasible(matrix, noise, subset, gamma_eps)) {
      best = subset;
      best_rate = rate;
    }
  }
  return FinalizeResult(links, std::move(best), Name());
}

BranchAndBoundScheduler::BranchAndBoundScheduler(ExactOptions options)
    : options_(options) {}

ScheduleResult BranchAndBoundScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());
  const std::size_t n = links.Size();
  FS_CHECK_MSG(n <= options_.max_links,
               "instance too large for branch and bound; raise ExactOptions::max_links");
  const channel::InterferenceMatrix matrix(links, params);
  const double gamma_eps = params.FeasibilityBudget();

  // Branch in descending rate order so high-value links are decided early
  // and the optimistic bound tightens fast.
  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (links.Rate(a) != links.Rate(b)) return links.Rate(a) > links.Rate(b);
    return a < b;
  });
  // suffix_rate[k] = Σ rates of order[k..n).
  std::vector<double> suffix_rate(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    suffix_rate[k] = suffix_rate[k + 1] + links.Rate(order[k]);
  }

  net::Schedule best;
  double best_rate = 0.0;
  net::Schedule chosen;
  // acc[j] = noise factor + Σ f from `chosen` onto receiver j; seeding
  // with noise keeps the include test exact under N₀ > 0.
  std::vector<double> acc = NoiseFactors(links, params);
  double chosen_rate = 0.0;

  // Recursive lambda over the decision index.
  auto dfs = [&](auto&& self, std::size_t k) -> void {
    if (chosen_rate + suffix_rate[k] <= best_rate) return;  // bound prune
    if (k == n) {
      // All members within budget by construction of the include branch.
      best = chosen;
      best_rate = chosen_rate;
      return;
    }
    const net::LinkId link = order[k];

    // Include branch (if the candidate itself and all chosen members stay
    // within budget — monotonicity makes this a complete test).
    if (acc[link] <= gamma_eps) {
      bool fits = true;
      for (net::LinkId member : chosen) {
        if (acc[member] + matrix.Factor(link, member) > gamma_eps) {
          fits = false;
          break;
        }
      }
      if (fits) {
        for (std::size_t j = 0; j < n; ++j) {
          if (j != link) acc[j] += matrix.Factor(link, j);
        }
        chosen.push_back(link);
        chosen_rate += links.Rate(link);
        self(self, k + 1);
        chosen_rate -= links.Rate(link);
        chosen.pop_back();
        for (std::size_t j = 0; j < n; ++j) {
          if (j != link) acc[j] -= matrix.Factor(link, j);
        }
      }
    }
    // Exclude branch.
    self(self, k + 1);
  };
  dfs(dfs, 0);
  return FinalizeResult(links, std::move(best), Name());
}

}  // namespace fadesched::sched
