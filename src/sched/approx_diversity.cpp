#include "sched/approx_diversity.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "channel/batch_interference.hpp"
#include "geom/spatial_hash.hpp"
#include "sched/constants.hpp"
#include "util/check.hpp"

namespace fadesched::sched {

ApproxDiversityScheduler::ApproxDiversityScheduler(
    ApproxDiversityOptions options)
    : options_(options) {
  FS_CHECK_MSG(options_.c2 > 0.0 && options_.c2 < 1.0, "c2 must be in (0, 1)");
}

ScheduleResult ApproxDiversityScheduler::Schedule(
    const net::LinkSet& links, const channel::ChannelParams& params) const {
  if (links.Empty()) return FinalizeResult(links, {}, Name());

  channel::EngineOptions engine_options = options_.interference;
  // This scheduler's quantity is the deterministic affectance, so a
  // materialized matrix must hold a_ij, not f_ij (and a shared engine
  // built for the factor quantity is rejected by ObtainEngine).
  engine_options.affectance_matrix = true;
  std::optional<channel::InterferenceEngine> local_engine;
  const channel::InterferenceEngine& engine =
      channel::ObtainEngine(links, params, engine_options, local_engine);
  channel::ChannelParams effective = params;
  effective.gamma_th *= links.TxPowerRatio(params.tx_power);
  const double c1 = ApproxDiversityC1(effective, options_.c2);
  const std::size_t n = links.Size();

  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (links.Length(a) != links.Length(b)) {
      return links.Length(a) < links.Length(b);
    }
    return a < b;
  });

  const geom::SpatialHash sender_index(links.Senders(),
                                       std::max(1e-9, c1 * links.MinLength()));

  std::vector<char> alive(n, 1);
  // Accumulated affectance per receiver (incremental Neumaier sums seeded
  // with the noise affectance — 0 in the paper's N₀ = 0 setting);
  // hopeless links drop up front.
  channel::IncrementalFeasibility acc(
      engine, channel::IncrementalFeasibility::Quantity::kAffectance);
  for (net::LinkId j = 0; j < n; ++j) {
    if (acc.Sum(j) > options_.c2) alive[j] = 0;
  }
  net::Schedule picked;

  for (net::LinkId i : order) {
    if (!alive[i]) continue;
    picked.push_back(i);
    alive[i] = 0;

    sender_index.ForEachInRadius(links.Receiver(i), c1 * links.Length(i),
                                 [&](std::size_t j) { alive[j] = 0; });

    // Deterministic affectance budget: the decode test is Σ a ≤ 1.
    const double budget = options_.c2;
    acc.Add(i, alive);
    for (net::LinkId j = 0; j < n; ++j) {
      if (alive[j] && acc.Sum(j) > budget) alive[j] = 0;
    }
  }
  return FinalizeResult(links, std::move(picked), Name());
}

}  // namespace fadesched::sched
