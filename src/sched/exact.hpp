// Exact solvers for small instances — Fading-R-LS is NP-hard
// (Theorem 3.2), so these are exponential by necessity. They exist to
// measure the *empirical* approximation ratios of LDP/RLE against the true
// optimum, which the paper only bounds analytically.
//
// Key structural fact both solvers exploit: the accumulated interference
// factor on a receiver is monotone in the schedule, so once any chosen
// member's budget is blown, every superset is infeasible — a sound prune.
#pragma once

#include <cstddef>

#include "sched/scheduler.hpp"

namespace fadesched::sched {

struct ExactOptions {
  /// Hard cap on instance size; beyond this the solver refuses to run
  /// (2^N subsets) rather than silently taking hours.
  std::size_t max_links = 26;
};

/// Plain 2^N enumeration with the monotone prune implicit (every subset is
/// checked directly). Simple enough to serve as the oracle for testing the
/// branch-and-bound solver.
class BruteForceScheduler final : public Scheduler {
 public:
  explicit BruteForceScheduler(ExactOptions options = {});

  [[nodiscard]] std::string Name() const override { return "exact_brute_force"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  ExactOptions options_;
};

/// Depth-first branch and bound: branches on link inclusion in descending
/// rate order, prunes on (a) infeasible partial schedules (monotonicity)
/// and (b) optimistic bound current + remaining ≤ incumbent.
class BranchAndBoundScheduler final : public Scheduler {
 public:
  explicit BranchAndBoundScheduler(ExactOptions options = {});

  [[nodiscard]] std::string Name() const override { return "exact_bb"; }
  [[nodiscard]] ScheduleResult Schedule(
      const net::LinkSet& links,
      const channel::ChannelParams& params) const override;

 private:
  ExactOptions options_;
};

}  // namespace fadesched::sched
