// TDMA frame construction by conflict-graph colouring — the classic
// graph-model answer to "schedule all links in few slots" (each colour
// class is one slot of pairwise non-conflicting links).
//
// Welsh–Powell greedy colouring (descending degree) uses at most
// Δ_G + 1 colours for maximum conflict degree Δ_G. Because the conflict
// graph ignores accumulated interference, these frames are typically NOT
// Corollary-3.1 feasible — the multislot bench puts that trade (shorter
// frame, failed transmissions) next to the fading-resistant frames.
#pragma once

#include "channel/graph_model.hpp"
#include "multislot/multislot.hpp"

namespace fadesched::multislot {

/// Builds a frame whose slots are the colour classes of a Welsh–Powell
/// greedy colouring of the conflict graph. Every link appears exactly
/// once; slots are ordered by descending size.
Frame ColorConflictGraph(const net::LinkSet& links,
                         const channel::ChannelParams& params,
                         const channel::GraphModelParams& graph_params = {});

}  // namespace fadesched::multislot
