#include "multislot/coloring.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace fadesched::multislot {

Frame ColorConflictGraph(const net::LinkSet& links,
                         const channel::ChannelParams& params,
                         const channel::GraphModelParams& graph_params) {
  params.Validate();
  Frame frame;
  frame.algorithm = "graph_coloring";
  if (links.Empty()) return frame;

  const channel::GraphInterference graph(links, graph_params);
  const std::size_t n = links.Size();

  // Welsh–Powell: colour vertices in descending degree order with the
  // smallest colour unused by any already-coloured neighbour.
  std::vector<std::size_t> degree(n, 0);
  for (net::LinkId i = 0; i < n; ++i) degree[i] = graph.Degree(i);
  std::vector<net::LinkId> order(n);
  std::iota(order.begin(), order.end(), net::LinkId{0});
  std::sort(order.begin(), order.end(), [&](net::LinkId a, net::LinkId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });

  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);
  std::vector<std::size_t> color(n, kUncolored);
  std::size_t num_colors = 0;
  std::vector<char> used;  // scratch: colours taken by neighbours
  for (net::LinkId v : order) {
    used.assign(num_colors, 0);
    for (net::LinkId u = 0; u < n; ++u) {
      if (color[u] != kUncolored && graph.Conflict(v, u)) {
        used[color[u]] = 1;
      }
    }
    std::size_t c = 0;
    while (c < num_colors && used[c]) ++c;
    if (c == num_colors) ++num_colors;
    color[v] = c;
  }

  frame.slots.assign(num_colors, {});
  for (net::LinkId i = 0; i < n; ++i) frame.slots[color[i]].push_back(i);
  // Biggest slots first: the frame drains fastest-first, which also makes
  // slot counts comparable across algorithms.
  std::sort(frame.slots.begin(), frame.slots.end(),
            [](const net::Schedule& a, const net::Schedule& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return frame;
}

}  // namespace fadesched::multislot
