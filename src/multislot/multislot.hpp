// Multi-slot scheduling — the paper's stated future work (§VII): instead
// of maximizing one slot's throughput, schedule *every* link using as few
// slots as possible (minimum makespan / minimum frame length).
//
// We implement the natural repeated-application construction: run a
// one-shot scheduler on the remaining links, commit its schedule as the
// next slot, remove those links, repeat. With a one-shot scheduler whose
// slots are Corollary-3.1 feasible, every slot of the frame is feasible;
// with a ρ-approximate one-shot scheduler this is the classic
// maximum-coverage-style O(ρ·log N) frame-length heuristic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "channel/params.hpp"
#include "net/link_set.hpp"
#include "sched/scheduler.hpp"

namespace fadesched::multislot {

struct Frame {
  /// One feasible schedule per slot, in transmission order; every link id
  /// appears in exactly one slot.
  std::vector<net::Schedule> slots;
  std::string algorithm;

  [[nodiscard]] std::size_t NumSlots() const { return slots.size(); }

  /// Mean slot index (1-based) at which a link transmits, weighted by
  /// rate — a latency proxy: lower is better for delay-sensitive traffic.
  [[nodiscard]] double RateWeightedCompletion(const net::LinkSet& links) const;
};

struct MultiSlotOptions {
  /// Hard cap against pathological non-progress; hit only if the one-shot
  /// scheduler returns an empty schedule on a non-empty set, in which case
  /// the frame builder force-schedules one link per slot instead.
  std::size_t max_slots = 100000;
};

/// Builds a frame by repeatedly applying `one_shot` to the unscheduled
/// remainder. Guarantees progress (at least one link per slot) and
/// termination; throws CheckFailure only if max_slots is exhausted.
Frame ScheduleAllLinks(const net::LinkSet& links,
                       const channel::ChannelParams& params,
                       const sched::Scheduler& one_shot,
                       const MultiSlotOptions& options = {});

/// Convenience overload resolving the one-shot scheduler by registry name.
Frame ScheduleAllLinks(const net::LinkSet& links,
                       const channel::ChannelParams& params,
                       const std::string& one_shot_name,
                       const MultiSlotOptions& options = {});

/// True iff every slot is Corollary-3.1 feasible and the slots partition
/// the full link set (each link exactly once).
bool FrameIsValid(const net::LinkSet& links,
                  const channel::ChannelParams& params, const Frame& frame);

}  // namespace fadesched::multislot
