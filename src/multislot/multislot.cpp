#include "multislot/multislot.hpp"

#include <algorithm>
#include <vector>

#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "sched/registry.hpp"
#include "util/check.hpp"

namespace fadesched::multislot {

double Frame::RateWeightedCompletion(const net::LinkSet& links) const {
  double weighted = 0.0;
  double total_rate = 0.0;
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    for (net::LinkId id : slots[slot]) {
      weighted += links.Rate(id) * static_cast<double>(slot + 1);
      total_rate += links.Rate(id);
    }
  }
  return total_rate > 0.0 ? weighted / total_rate : 0.0;
}

Frame ScheduleAllLinks(const net::LinkSet& links,
                       const channel::ChannelParams& params,
                       const sched::Scheduler& one_shot,
                       const MultiSlotOptions& options) {
  params.Validate();
  Frame frame;
  frame.algorithm = one_shot.Name();
  if (links.Empty()) return frame;

  // remaining[k] = original id of the k-th link still unscheduled.
  std::vector<net::LinkId> remaining(links.Size());
  for (net::LinkId i = 0; i < links.Size(); ++i) remaining[i] = i;

  while (!remaining.empty()) {
    FS_CHECK_MSG(frame.slots.size() < options.max_slots,
                 "multi-slot frame exceeded max_slots");
    const net::LinkSet sub = links.Subset(remaining);
    net::Schedule local = one_shot.Schedule(sub, params).schedule;
    if (local.empty()) {
      // Defensive progress guarantee: a singleton slot is always feasible
      // (no interferer, noise-free model).
      local.push_back(0);
    }
    // Map subset-local ids back to original ids; record the slot.
    net::Schedule slot;
    slot.reserve(local.size());
    for (net::LinkId sub_id : local) {
      FS_CHECK(sub_id < remaining.size());
      slot.push_back(remaining[sub_id]);
    }
    std::sort(slot.begin(), slot.end());
    frame.slots.push_back(slot);

    // Remove the scheduled links (local ids are unique; erase by flag to
    // stay O(remaining)).
    std::vector<char> gone(remaining.size(), 0);
    for (net::LinkId sub_id : local) gone[sub_id] = 1;
    std::vector<net::LinkId> next;
    next.reserve(remaining.size() - local.size());
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      if (!gone[k]) next.push_back(remaining[k]);
    }
    remaining = std::move(next);
  }
  return frame;
}

Frame ScheduleAllLinks(const net::LinkSet& links,
                       const channel::ChannelParams& params,
                       const std::string& one_shot_name,
                       const MultiSlotOptions& options) {
  const sched::SchedulerPtr scheduler = sched::MakeScheduler(one_shot_name);
  return ScheduleAllLinks(links, params, *scheduler, options);
}

bool FrameIsValid(const net::LinkSet& links,
                  const channel::ChannelParams& params, const Frame& frame) {
  const channel::InterferenceCalculator calc(links, params);
  std::vector<char> seen(links.Size(), 0);
  std::size_t scheduled = 0;
  for (const net::Schedule& slot : frame.slots) {
    if (!channel::ScheduleIsFeasible(calc, slot)) return false;
    for (net::LinkId id : slot) {
      if (id >= links.Size() || seen[id]) return false;
      seen[id] = 1;
      ++scheduled;
    }
  }
  return scheduled == links.Size();
}

}  // namespace fadesched::multislot
