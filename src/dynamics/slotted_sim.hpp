// The slotted dynamics simulator — the time-domain workload on top of the
// one-shot scheduling problem.
//
// Every slot: churn moves links in/out of the cell and drifts geometry,
// packets arrive per an ArrivalProcess, the scheduler is invoked on the
// backlogged active links, and scheduled transmissions succeed or fail
// under per-slot fading evaluated on the *true* (drifted) geometry.
//
// Engine modes — the tentpole contrast this module exists to measure:
//
//   kWarmSubset  — one InterferenceEngine is built over a snapshot of the
//                  full universe; each slot the backlogged subset is
//                  scheduled through an O(m) subset *view* of it
//                  (channel::MakeSubsetEngineView) that remaps queries
//                  into the warm factors instead of rebuilding them.
//   kColdRebuild — each slot the scheduler rebuilds its engine over the
//                  backlogged subset from scratch (O(m²) factor work for
//                  the kMatrix backend). The reference the warm path must
//                  be schedule-identical to.
//
// Both modes schedule on the same bounded-staleness *snapshot* geometry
// (refreshed by EngineRefreshPolicy), so the only difference between them
// is how factors are obtained — which the warm/cold oracle pins to
// bit-identical schedules. Ground-truth transmission success always uses
// the current drifted positions, so a stale snapshot costs real failures,
// making the refresh cadence a measurable knob rather than a free win.
//
// Determinism: arrivals, membership churn, mobility, and fading draw from
// four disjoint seeded substreams; fading additionally uses a fresh
// generator per slot keyed on (seed, slot), so a schedule difference in
// one slot cannot desynchronize later slots. Same (universe, params,
// scheduler, options) → byte-identical per-slot trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "channel/batch_interference.hpp"
#include "channel/params.hpp"
#include "dynamics/arrivals.hpp"
#include "dynamics/churn.hpp"
#include "mathx/stats.hpp"
#include "net/link_set.hpp"
#include "sim/fading_models.hpp"

namespace fadesched::dynamics {

enum class EngineMode {
  kWarmSubset,   ///< warm full-universe engine + per-slot subset view
  kColdRebuild,  ///< per-slot engine rebuild over the backlogged subset
};

const char* EngineModeName(EngineMode mode);

/// Bounded-staleness policy for the scheduling snapshot (and, in warm
/// mode, the engine built over it). Both triggers may be active at once;
/// with neither set the snapshot from slot 0 is used for the whole run.
struct EngineRefreshPolicy {
  /// Refresh every this many slots (0 = no periodic refresh).
  std::size_t period_slots = 0;
  /// Refresh once this many staleness events (fading rechecks) accumulate
  /// since the last refresh (0 = no budget trigger).
  std::uint64_t churn_budget = 0;
};

/// One slot's observable outcome — the unit of the determinism trace and
/// the warm/cold oracle diff.
struct SlotRecord {
  std::uint64_t slot = 0;
  std::uint64_t arrivals = 0;    ///< packets generated this slot
  std::uint64_t backlogged = 0;  ///< active links with nonempty queues
  net::Schedule schedule;        ///< scheduled links (universe ids, ascending)
  std::uint64_t delivered = 0;
  std::uint64_t failed = 0;
  std::uint64_t entered = 0;
  std::uint64_t left = 0;
  std::uint64_t fade_rechecks = 0;
  bool snapshot_refreshed = false;
  std::uint64_t total_backlog = 0;  ///< after this slot's transmissions
};

/// Canonical one-line rendering (the byte-identity unit of the trace
/// tests): every field in fixed order, schedule as comma-joined ids.
std::string FormatSlotRecord(const SlotRecord& record);

/// Exact packet conservation: every generated packet is delivered, dropped
/// (blocked at an inactive link, or overflowed a bounded queue), or still
/// queued. Holds after every slot, including interrupted runs.
struct PacketLedger {
  std::uint64_t arrivals = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_blocked = 0;   ///< arrivals at handed-off links
  std::uint64_t dropped_overflow = 0;  ///< queue-capacity drops
  std::uint64_t residual = 0;          ///< queued when the run ended

  [[nodiscard]] bool Balanced() const {
    return arrivals ==
           delivered + dropped_blocked + dropped_overflow + residual;
  }
};

struct DynamicsOptions {
  std::size_t num_slots = 2000;
  /// Slots excluded from the backlog/delay statistics (the ledger and the
  /// trace always cover every slot).
  std::size_t warmup_slots = 200;
  std::uint64_t seed = 1;

  ArrivalSpec arrivals;
  ChurnOptions churn;
  sim::FadingOptions fading;

  EngineMode engine_mode = EngineMode::kWarmSubset;
  /// Factor backend for the scheduling engine (both modes). kMatrix is
  /// where warm-vs-cold matters most; kTables/kCalculator also work.
  channel::FactorBackend backend = channel::FactorBackend::kMatrix;
  EngineRefreshPolicy refresh;

  /// Per-link queue bound; arrivals beyond it are dropped (0 = unbounded).
  std::size_t queue_capacity = 0;

  /// Optional per-slot trace hook (called after each completed slot).
  std::function<void(const SlotRecord&)> slot_observer;
  /// Optional graceful-interrupt poll, checked at each slot boundary; a
  /// true return stops the run with `interrupted` set and the ledger
  /// still exactly balanced (the SIGTERM path of the conservation test).
  std::function<bool()> stop_requested;

  void Validate() const;
};

struct DynamicsResult {
  mathx::RunningStats backlog;      ///< post-warmup per-slot total backlog
  mathx::RunningStats delay_slots;  ///< post-warmup delivery delays
  /// Post-warmup delivery delays, in delivery order (percentile input).
  std::vector<double> delay_samples;
  /// Post-warmup per-slot total backlog (the drift-test input).
  std::vector<double> backlog_series;

  PacketLedger ledger;
  std::uint64_t scheduled_transmissions = 0;
  std::uint64_t failed_transmissions = 0;
  std::uint64_t slots_run = 0;
  bool interrupted = false;

  std::uint64_t snapshot_refreshes = 0;  ///< refreshes after the initial build
  std::uint64_t links_entered = 0;
  std::uint64_t links_left = 0;
  std::uint64_t fade_rechecks = 0;

  /// Wall-clock seconds spent obtaining engines and scheduling (the
  /// quantity the warm-vs-cold speedup compares). Excludes arrivals,
  /// fading evaluation, and bookkeeping.
  double schedule_seconds = 0.0;
  /// Slots that actually invoked the scheduler (nonempty backlog).
  std::uint64_t scheduled_slots = 0;

  [[nodiscard]] double FailureRate() const {
    return scheduled_transmissions == 0
               ? 0.0
               : static_cast<double>(failed_transmissions) /
                     static_cast<double>(scheduled_transmissions);
  }
  [[nodiscard]] double ScheduleSecondsPerSlot() const {
    return scheduled_slots == 0
               ? 0.0
               : schedule_seconds / static_cast<double>(scheduled_slots);
  }
};

/// Runs the slotted simulation with the named registered scheduler.
/// Deterministic given (universe, params, scheduler_name, options).
DynamicsResult RunSlottedSimulation(const net::LinkSet& universe,
                                    const channel::ChannelParams& params,
                                    const std::string& scheduler_name,
                                    const DynamicsOptions& options);

}  // namespace fadesched::dynamics
