#include "dynamics/stability.hpp"

#include <cmath>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace fadesched::dynamics {

DriftAssessment AssessBacklogDrift(std::span<const double> backlog_series,
                                   double offered_load_per_slot,
                                   const DriftTestOptions& options) {
  FS_CHECK_MSG(options.windows >= 2, "drift test needs at least two windows");
  FS_CHECK_MSG(options.slope_tolerance > 0.0,
               "slope tolerance must be positive");
  FS_CHECK_MSG(offered_load_per_slot >= 0.0, "offered load must be >= 0");

  DriftAssessment out;
  out.threshold = options.slope_tolerance *
                  std::max(offered_load_per_slot, 1e-12);
  if (backlog_series.size() < options.min_samples ||
      backlog_series.size() < options.windows) {
    // Too short to fit a slope: call it stable only when the tail is
    // essentially empty relative to what one slot can inject.
    double tail = 0.0;
    if (!backlog_series.empty()) tail = backlog_series.back();
    out.stable = tail <= out.threshold * static_cast<double>(
                             backlog_series.empty() ? 1 : backlog_series.size());
    return out;
  }

  // Window means, then a least-squares line through (window center slot,
  // window mean). Centering the abscissa makes the slope formula a plain
  // covariance ratio with no cancellation risk at these magnitudes.
  const std::size_t w = options.windows;
  const std::size_t len = backlog_series.size() / w;
  double mean_x = 0.0;
  double mean_y = 0.0;
  std::vector<double> ys(w, 0.0);
  std::vector<double> xs(w, 0.0);
  for (std::size_t k = 0; k < w; ++k) {
    double sum = 0.0;
    for (std::size_t t = k * len; t < (k + 1) * len; ++t) {
      sum += backlog_series[t];
    }
    ys[k] = sum / static_cast<double>(len);
    xs[k] = (static_cast<double>(k) + 0.5) * static_cast<double>(len);
    mean_x += xs[k];
    mean_y += ys[k];
  }
  mean_x /= static_cast<double>(w);
  mean_y /= static_cast<double>(w);
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t k = 0; k < w; ++k) {
    const double dx = xs[k] - mean_x;
    cov += dx * (ys[k] - mean_y);
    var += dx * dx;
  }
  out.slope_per_slot = var == 0.0 ? 0.0 : cov / var;
  out.stable = out.slope_per_slot <= out.threshold;
  return out;
}

namespace {

constexpr std::uint64_t kProbeSalt = 0xa0761d6478bd642fULL;

bool ProbeStable(const net::LinkSet& universe,
                 const channel::ChannelParams& params,
                 const std::string& scheduler_name,
                 const DynamicsOptions& base, const FrontierOptions& options,
                 double rate, std::size_t probe_index) {
  DynamicsOptions probe = base;
  probe.arrivals.rate = rate;
  rng::SplitMix64 mix(base.seed ^ (kProbeSalt * (probe_index + 1)));
  probe.seed = mix.Next();
  const DynamicsResult run =
      RunSlottedSimulation(universe, params, scheduler_name, probe);
  const double offered = rate * static_cast<double>(universe.Size());
  return AssessBacklogDrift(run.backlog_series, offered, options.drift).stable;
}

}  // namespace

FrontierResult FindStabilityFrontier(const net::LinkSet& universe,
                                     const channel::ChannelParams& params,
                                     const std::string& scheduler_name,
                                     const DynamicsOptions& base,
                                     const FrontierOptions& options) {
  FS_CHECK_MSG(options.lambda_hi > options.lambda_lo,
               "frontier bracket must have lambda_hi > lambda_lo");
  FS_CHECK_MSG(options.lambda_lo >= 0.0, "lambda_lo must be >= 0");

  FrontierResult out;
  out.lambda_lo = options.lambda_lo;
  out.lambda_hi = options.lambda_hi;

  // Trust nothing: probe the upper bracket first. A stable lambda_hi
  // means the true frontier is beyond the search range — report that
  // honestly instead of bisecting toward a fictitious boundary.
  ++out.probes;
  if (ProbeStable(universe, params, scheduler_name, base, options,
                  options.lambda_hi, out.probes)) {
    out.saturated = true;
    out.lambda_star = options.lambda_hi;
    out.lambda_lo = options.lambda_hi;
    return out;
  }

  double lo = options.lambda_lo;  // invariant: stable (λ = 0 idles)
  double hi = options.lambda_hi;  // invariant: unstable (just probed)
  for (std::size_t k = 0; k < options.iterations; ++k) {
    const double mid = 0.5 * (lo + hi);
    ++out.probes;
    if (ProbeStable(universe, params, scheduler_name, base, options, mid,
                    out.probes)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.lambda_lo = lo;
  out.lambda_hi = hi;
  out.lambda_star = lo;
  return out;
}

}  // namespace fadesched::dynamics
