#include "dynamics/churn.hpp"

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"

namespace fadesched::dynamics {

namespace {

constexpr std::uint64_t kMembershipSalt = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMobilitySalt = 0x94d049bb133111ebULL;

rng::Xoshiro256 SubStream(std::uint64_t seed, std::uint64_t salt) {
  rng::SplitMix64 mix(seed ^ salt);
  return rng::Xoshiro256(mix.Next());
}

}  // namespace

ChurnProcess::ChurnProcess(const net::LinkSet& universe,
                           const ChurnOptions& options, std::uint64_t seed)
    : options_(options),
      mobility_(universe, options.mobility,
                SubStream(seed, kMobilitySalt)),
      membership_gen_(SubStream(seed, kMembershipSalt)),
      active_(universe.Size(), 1) {
  options_.Validate();
}

SlotChurn ChurnProcess::Step() {
  SlotChurn churn;
  if (!options_.enabled) return churn;

  // One uniform per universe link, ascending id order; the [0, 1) range is
  // partitioned into [0, p_move) → membership flip and
  // [p_move, p_move + p_fade) → fading recheck, where p_move is the
  // leave/enter probability for the link's current state.
  for (net::LinkId i = 0; i < active_.size(); ++i) {
    const double u = rng::UniformUnit(membership_gen_);
    const double p_move =
        active_[i] ? options_.leave_probability : options_.enter_probability;
    if (u < p_move) {
      if (active_[i]) {
        active_[i] = 0;
        ++churn.left;
      } else {
        active_[i] = 1;
        ++churn.entered;
      }
    } else if (u < p_move + options_.fade_recheck_probability) {
      ++churn.fade_rechecks;
    }
  }

  if (options_.drift_steps_per_slot > 0) {
    mobility_.Advance(options_.drift_steps_per_slot);
  }
  return churn;
}

}  // namespace fadesched::dynamics
