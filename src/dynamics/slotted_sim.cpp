#include "dynamics/slotted_sim.hpp"

#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "geom/vec2.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "sched/registry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace fadesched::dynamics {

namespace {

constexpr std::uint64_t kFadingSalt = 0xd1b54a32d192ed03ULL;

/// Fresh per-slot fading generator: keyed on (seed, slot) so a schedule
/// divergence in one slot cannot shift any later slot's draws.
rng::Xoshiro256 SlotFadingGen(std::uint64_t seed, std::uint64_t slot) {
  rng::SplitMix64 mix(seed ^ (kFadingSalt * (slot + 1)));
  return rng::Xoshiro256(mix.Next());
}

}  // namespace

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kWarmSubset: return "warm_subset";
    case EngineMode::kColdRebuild: return "cold_rebuild";
  }
  return "?";
}

std::string FormatSlotRecord(const SlotRecord& r) {
  std::string out = "slot=" + std::to_string(r.slot);
  out += " arrivals=" + std::to_string(r.arrivals);
  out += " backlogged=" + std::to_string(r.backlogged);
  out += " schedule=[";
  for (std::size_t k = 0; k < r.schedule.size(); ++k) {
    if (k > 0) out += ',';
    out += std::to_string(r.schedule[k]);
  }
  out += "] delivered=" + std::to_string(r.delivered);
  out += " failed=" + std::to_string(r.failed);
  out += " entered=" + std::to_string(r.entered);
  out += " left=" + std::to_string(r.left);
  out += " rechecks=" + std::to_string(r.fade_rechecks);
  out += " refresh=";
  out += r.snapshot_refreshed ? '1' : '0';
  out += " backlog=" + std::to_string(r.total_backlog);
  return out;
}

void DynamicsOptions::Validate() const {
  FS_CHECK_MSG(num_slots > 0, "simulation needs at least one slot");
  FS_CHECK_MSG(warmup_slots < num_slots,
               "warm-up must be shorter than the simulation");
  arrivals.Validate();
  churn.Validate();
  fading.Validate();
}

DynamicsResult RunSlottedSimulation(const net::LinkSet& universe,
                                    const channel::ChannelParams& params,
                                    const std::string& scheduler_name,
                                    const DynamicsOptions& options) {
  params.Validate();
  options.Validate();

  const std::size_t n = universe.Size();
  DynamicsResult result;
  if (n == 0) {
    result.slots_run = options.num_slots;
    return result;
  }

  ArrivalProcess arrivals(options.arrivals, n, options.seed);
  ChurnProcess churn(universe, options.churn, options.seed);

  channel::EngineOptions engine_options;
  engine_options.backend = options.backend;

  // Cold mode's scheduler is built once; its per-Schedule() ObtainEngine
  // call finds no shared engine and rebuilds over the subset every slot.
  // Warm mode constructs a scheduler per slot instead, threading the
  // slot's subset view through EngineOptions::shared.
  const bool warm = options.engine_mode == EngineMode::kWarmSubset;
  sched::SchedulerPtr cold_scheduler;
  if (!warm) cold_scheduler = sched::MakeScheduler(scheduler_name, engine_options);

  // The bounded-staleness snapshot both modes schedule on, plus (warm
  // only) the engine built over it. The snapshot must outlive the engine.
  std::unique_ptr<net::LinkSet> snapshot;
  std::shared_ptr<const channel::InterferenceEngine> base_engine;
  std::uint64_t staleness_events = 0;
  std::size_t slots_since_refresh = 0;

  // FIFO of arrival slots per universe link; front = oldest packet.
  std::vector<std::deque<std::uint64_t>> queues(n);
  std::vector<net::LinkId> backlogged;
  std::uint64_t total_queued = 0;

  for (std::size_t slot = 0; slot < options.num_slots; ++slot) {
    if (options.stop_requested && options.stop_requested()) {
      result.interrupted = true;
      break;
    }

    SlotRecord record;
    record.slot = slot;

    // 1. Churn: membership flips, fading rechecks, geometry drift.
    const SlotChurn slot_churn = churn.Step();
    record.entered = slot_churn.entered;
    record.left = slot_churn.left;
    record.fade_rechecks = slot_churn.fade_rechecks;
    result.links_entered += slot_churn.entered;
    result.links_left += slot_churn.left;
    result.fade_rechecks += slot_churn.fade_rechecks;
    staleness_events += slot_churn.StalenessEvents();

    // 2. Snapshot refresh — decided identically in both engine modes, so
    // warm and cold schedule on byte-identical geometry.
    const bool refresh =
        snapshot == nullptr ||
        (options.refresh.period_slots > 0 &&
         slots_since_refresh >= options.refresh.period_slots) ||
        (options.refresh.churn_budget > 0 &&
         staleness_events > options.refresh.churn_budget);
    if (refresh) {
      if (snapshot != nullptr) ++result.snapshot_refreshes;
      record.snapshot_refreshed = true;
      util::Stopwatch build_timer;
      base_engine.reset();  // frees the old snapshot's tables first
      auto fresh = std::make_unique<net::LinkSet>(churn.UniverseNow());
      if (warm) {
        base_engine = std::make_shared<const channel::InterferenceEngine>(
            *fresh, params, engine_options);
      }
      snapshot = std::move(fresh);
      staleness_events = 0;
      slots_since_refresh = 0;
      result.schedule_seconds += build_timer.Seconds();
    }
    ++slots_since_refresh;

    // 3. Arrivals — every link draws every slot (substream alignment);
    // arrivals at handed-off links are blocked, and bounded queues drop
    // the overflow. Both are accounted, so the ledger stays exact.
    const std::vector<char>& active = churn.Active();
    for (net::LinkId i = 0; i < n; ++i) {
      const std::uint64_t count = arrivals.ArrivalsFor(i);
      if (count == 0) continue;
      result.ledger.arrivals += count;
      record.arrivals += count;
      if (!active[i]) {
        result.ledger.dropped_blocked += count;
        continue;
      }
      for (std::uint64_t c = 0; c < count; ++c) {
        if (options.queue_capacity > 0 &&
            queues[i].size() >= options.queue_capacity) {
          ++result.ledger.dropped_overflow;
        } else {
          queues[i].push_back(slot);
          ++total_queued;
        }
      }
    }

    // 4. Schedule the backlogged active links on the snapshot geometry.
    backlogged.clear();
    for (net::LinkId i = 0; i < n; ++i) {
      if (active[i] && !queues[i].empty()) backlogged.push_back(i);
    }
    record.backlogged = backlogged.size();
    net::Schedule local_schedule;
    if (!backlogged.empty()) {
      util::Stopwatch schedule_timer;
      const net::LinkSet sub = snapshot->Subset(backlogged);
      if (warm) {
        auto view = channel::MakeSubsetEngineView(base_engine, sub, backlogged);
        channel::EngineOptions slot_options = view->Options();
        slot_options.shared = view;
        const sched::SchedulerPtr scheduler =
            sched::MakeScheduler(scheduler_name, slot_options);
        local_schedule = scheduler->Schedule(sub, params).schedule;
      } else {
        local_schedule = cold_scheduler->Schedule(sub, params).schedule;
      }
      result.schedule_seconds += schedule_timer.Seconds();
      ++result.scheduled_slots;
    }

    // 5. Fading + delivery, evaluated on the *current* drifted universe —
    // success is judged against reality, not the snapshot the scheduler
    // saw. One fading realization per scheduled (sender, receiver) pair,
    // drawn in fixed row-major order from the slot-keyed generator.
    const std::size_t s = local_schedule.size();
    if (s > 0) {
      record.schedule.reserve(s);
      for (const net::LinkId local : local_schedule) {
        record.schedule.push_back(backlogged[local]);
      }
      const net::LinkSet& truth = churn.UniverseNow();
      rng::Xoshiro256 fading_gen = SlotFadingGen(options.seed, slot);
      std::vector<double> power(s * s);
      for (std::size_t a = 0; a < s; ++a) {
        const net::LinkId ia = record.schedule[a];
        const double tx = truth.EffectiveTxPower(ia, params.tx_power);
        for (std::size_t b = 0; b < s; ++b) {
          const net::LinkId jb = record.schedule[b];
          const double d = geom::Distance(truth.Sender(ia), truth.Receiver(jb));
          FS_CHECK_MSG(d > 0.0, "sender on top of a receiver");
          power[a * s + b] = sim::DrawFadedPower(
              fading_gen, tx * std::pow(d, -params.alpha), options.fading);
        }
      }
      for (std::size_t b = 0; b < s; ++b) {
        const net::LinkId link = record.schedule[b];
        double interference = params.noise_power;
        for (std::size_t a = 0; a < s; ++a) {
          if (a != b) interference += power[a * s + b];
        }
        const bool ok = interference == 0.0
                            ? true
                            : power[b * s + b] >= params.gamma_th * interference;
        ++result.scheduled_transmissions;
        if (ok) {
          const std::uint64_t arrived = queues[link].front();
          queues[link].pop_front();
          --total_queued;
          ++result.ledger.delivered;
          ++record.delivered;
          if (slot >= options.warmup_slots) {
            const auto delay = static_cast<double>(slot - arrived);
            result.delay_slots.Add(delay);
            result.delay_samples.push_back(delay);
          }
        } else {
          ++result.failed_transmissions;
          ++record.failed;
        }
      }
    }

    // 6. Backlog sample (after transmissions). Queues of handed-off links
    // stay frozen and keep counting — their packets are still in the
    // system and resume service if the link re-enters.
    record.total_backlog = total_queued;
    if (slot >= options.warmup_slots) {
      result.backlog.Add(static_cast<double>(total_queued));
      result.backlog_series.push_back(static_cast<double>(total_queued));
    }
    ++result.slots_run;

    if (options.slot_observer) options.slot_observer(record);
  }

  result.ledger.residual = total_queued;
  FS_CHECK_MSG(result.ledger.Balanced(),
               "packet ledger out of balance — simulator accounting bug");
  return result;
}

}  // namespace fadesched::dynamics
