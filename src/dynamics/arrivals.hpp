// Pluggable per-link arrival processes for the slotted dynamics simulator.
//
// Four families spanning the stability literature's standard inputs:
//
//   kBernoulli    — i.i.d. one-packet arrivals, the memoryless baseline
//                   every stability proof starts from.
//   kPoissonBatch — Poisson(λ) batch per slot: same mean, unbounded batch
//                   size, so queues see burst variance even at low load.
//   kOnOff        — Markov-modulated on/off source: bursts at peak rate
//                   λ/duty while ON, silent while OFF, geometric sojourns
//                   with the stationary ON-fraction equal to `duty_cycle`.
//                   Same long-run rate as Bernoulli, much burstier — the
//                   canonical "bursty traffic" stressor.
//   kLeakyBucket  — adversarial (σ, ρ)-conforming source: tokens accrue at
//                   rate ρ = `rate`, and the source releases the whole
//                   accumulated burst at once (when the bucket fills, or
//                   earlier with `release_probability`). This is the
//                   worst-case burst pattern a (σ, ρ) regulator admits,
//                   the adversarial-queueing side of the frontier.
//
// Every link owns an independent substream derived from the process seed
// by the repo's SplitMix64 → xoshiro discipline, so arrivals at link i are
// byte-identical regardless of how many other links exist, which links
// are active, or which scheduler runs — the property the churn-replay and
// warm/cold determinism tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/link_set.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::dynamics {

enum class ArrivalFamily {
  kBernoulli,
  kPoissonBatch,
  kOnOff,
  kLeakyBucket,
};

/// Family name for tables / CLI flags ("bernoulli", "poisson", "onoff",
/// "leaky").
const char* ArrivalFamilyName(ArrivalFamily family);

/// Parses a family name; returns false (leaving `out` untouched) on an
/// unknown name.
bool ParseArrivalFamily(std::string_view name, ArrivalFamily& out);

/// All families, in declaration order (for test grids and the fuzzer).
std::vector<ArrivalFamily> AllArrivalFamilies();

struct ArrivalSpec {
  ArrivalFamily family = ArrivalFamily::kBernoulli;

  /// Long-run mean packets per slot per link — identical across families,
  /// so a frontier λ* is comparable between them.
  double rate = 0.02;

  /// kOnOff: stationary fraction of slots spent ON. The peak rate while
  /// ON is rate/duty_cycle, so rate ≤ duty_cycle is required.
  double duty_cycle = 0.25;
  /// kOnOff: mean ON-sojourn length in slots (geometric).
  double mean_burst_slots = 8.0;

  /// kLeakyBucket: bucket depth σ in packets; the source conforms to the
  /// (σ, ρ = rate) envelope.
  double bucket_depth = 4.0;
  /// kLeakyBucket: per-slot chance of an early (partial-bucket) release;
  /// 0 means releases happen only when the bucket fills.
  double release_probability = 0.25;

  void Validate() const;
};

/// Seed-pure batch-arrival generator: `ArrivalsFor(i)` must be called for
/// every link exactly once per slot, in ascending id order — the slotted
/// simulator's calling convention — and returns the number of packets
/// arriving at link i this slot.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, std::size_t num_links,
                 std::uint64_t seed);

  [[nodiscard]] const ArrivalSpec& Spec() const { return spec_; }
  [[nodiscard]] std::size_t Size() const { return states_.size(); }

  /// Packets arriving at link i this slot (advances link i's substream).
  std::uint64_t ArrivalsFor(net::LinkId i);

 private:
  struct LinkState {
    rng::Xoshiro256 gen;
    bool on = true;        // kOnOff modulation state
    double tokens = 0.0;   // kLeakyBucket fill level
  };

  ArrivalSpec spec_;
  std::vector<LinkState> states_;
};

}  // namespace fadesched::dynamics
