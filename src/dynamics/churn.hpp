// Mobility and membership churn for the dynamics simulator, after the
// classic PCS cellular workload (see SNIPPETS.md): links hand off out of
// the cell (HANDOFF_LEAVE), hand back in (HANDOFF_RECV), request fading
// rechecks, and drift through the region between slots.
//
// The process runs over a fixed *universe* LinkSet: membership is an
// active-flag per universe link, so link ids are stable across the whole
// run (queues, arrival substreams, and traces key on them). Geometry
// drifts via net::RandomWaypointMobility (rigid-pair moves, so link
// lengths — and every scheduler constant derived from them — are
// invariant).
//
// Replay discipline: each slot consumes exactly one uniform per universe
// link from the churn stream — the draw is partitioned into
// leave/enter/fade-recheck outcomes — so the membership trajectory is a
// pure function of (seed, options) and replays byte-identically no matter
// what the scheduler, engine mode, or fading did. The mobility stream is
// separate (waypoint picks consume a state-dependent number of draws).
#pragma once

#include <cstdint>
#include <vector>

#include "net/link_set.hpp"
#include "net/mobility.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::dynamics {

struct ChurnOptions {
  bool enabled = false;

  /// Per-slot chance an *active* link hands off and leaves the cell.
  double leave_probability = 0.0;

  /// Per-slot chance an *inactive* link hands back in and rejoins.
  double enter_probability = 0.0;

  /// Per-slot chance a link raises a fading recheck — the PCS event that
  /// invalidates cached channel state. Rechecks feed the engine-refresh
  /// policy's churn budget; they do not change membership.
  double fade_recheck_probability = 0.0;

  /// Mobility steps taken per slot (0 = static geometry).
  std::size_t drift_steps_per_slot = 0;
  net::MobilityParams mobility;

  void Validate() const {
    FS_CHECK_MSG(leave_probability >= 0.0 && leave_probability <= 1.0,
                 "leave probability must be in [0, 1]");
    FS_CHECK_MSG(enter_probability >= 0.0 && enter_probability <= 1.0,
                 "enter probability must be in [0, 1]");
    FS_CHECK_MSG(
        fade_recheck_probability >= 0.0 && fade_recheck_probability <= 1.0,
        "fade recheck probability must be in [0, 1]");
    FS_CHECK_MSG(leave_probability + fade_recheck_probability <= 1.0,
                 "leave + fade-recheck probability exceeds 1");
    FS_CHECK_MSG(enter_probability + fade_recheck_probability <= 1.0,
                 "enter + fade-recheck probability exceeds 1");
  }
};

/// What one slot of churn did (per-slot counts, not cumulative).
struct SlotChurn {
  std::uint64_t left = 0;
  std::uint64_t entered = 0;
  std::uint64_t fade_rechecks = 0;

  /// Events that age a cached interference engine: membership changes
  /// don't (the engine is built over the universe and subset per slot),
  /// but drifted geometry and fading invalidations do.
  [[nodiscard]] std::uint64_t StalenessEvents() const {
    return fade_rechecks;
  }
};

class ChurnProcess {
 public:
  /// `universe` is copied into the internal mobility model; ids are
  /// positions in it. All links start active.
  ChurnProcess(const net::LinkSet& universe, const ChurnOptions& options,
               std::uint64_t seed);

  /// Advances one slot: membership draws (one uniform per link, ascending
  /// id order) then drift. Disabled churn is a no-op returning zeros.
  SlotChurn Step();

  /// Active flag per universe link (1 = in the cell).
  [[nodiscard]] const std::vector<char>& Active() const { return active_; }

  /// The universe at its *current* (drifted) positions — the ground truth
  /// the transmission-success evaluation must use.
  [[nodiscard]] const net::LinkSet& UniverseNow() const {
    return mobility_.Current();
  }

  [[nodiscard]] const ChurnOptions& Options() const { return options_; }

 private:
  ChurnOptions options_;
  net::RandomWaypointMobility mobility_;
  rng::Xoshiro256 membership_gen_;
  std::vector<char> active_;
};

}  // namespace fadesched::dynamics
