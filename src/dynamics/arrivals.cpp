#include "dynamics/arrivals.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"

namespace fadesched::dynamics {

namespace {

// Per-link substream salt — a distinct odd constant per consumer keeps the
// dynamics layer's streams (arrivals / churn / fading) disjoint even when
// they share the user-facing seed.
constexpr std::uint64_t kArrivalSalt = 0x9e6c63d0876a3f35ULL;

}  // namespace

const char* ArrivalFamilyName(ArrivalFamily family) {
  switch (family) {
    case ArrivalFamily::kBernoulli: return "bernoulli";
    case ArrivalFamily::kPoissonBatch: return "poisson";
    case ArrivalFamily::kOnOff: return "onoff";
    case ArrivalFamily::kLeakyBucket: return "leaky";
  }
  return "?";
}

bool ParseArrivalFamily(std::string_view name, ArrivalFamily& out) {
  if (name == "bernoulli") {
    out = ArrivalFamily::kBernoulli;
  } else if (name == "poisson") {
    out = ArrivalFamily::kPoissonBatch;
  } else if (name == "onoff") {
    out = ArrivalFamily::kOnOff;
  } else if (name == "leaky") {
    out = ArrivalFamily::kLeakyBucket;
  } else {
    return false;
  }
  return true;
}

std::vector<ArrivalFamily> AllArrivalFamilies() {
  return {ArrivalFamily::kBernoulli, ArrivalFamily::kPoissonBatch,
          ArrivalFamily::kOnOff, ArrivalFamily::kLeakyBucket};
}

void ArrivalSpec::Validate() const {
  FS_CHECK_MSG(rate >= 0.0 && std::isfinite(rate),
               "arrival rate must be finite and >= 0");
  switch (family) {
    case ArrivalFamily::kBernoulli:
      FS_CHECK_MSG(rate <= 1.0, "Bernoulli arrival rate must be <= 1");
      break;
    case ArrivalFamily::kPoissonBatch:
      break;
    case ArrivalFamily::kOnOff:
      FS_CHECK_MSG(duty_cycle > 0.0 && duty_cycle < 1.0,
                   "on/off duty cycle must be in (0, 1)");
      FS_CHECK_MSG(rate <= duty_cycle,
                   "on/off peak rate/duty exceeds 1 packet per slot");
      FS_CHECK_MSG(mean_burst_slots >= 1.0,
                   "mean burst length must be >= 1 slot");
      break;
    case ArrivalFamily::kLeakyBucket:
      FS_CHECK_MSG(bucket_depth >= 1.0, "bucket depth must be >= 1 packet");
      FS_CHECK_MSG(release_probability >= 0.0 && release_probability <= 1.0,
                   "release probability must be in [0, 1]");
      break;
  }
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, std::size_t num_links,
                               std::uint64_t seed)
    : spec_(spec) {
  spec_.Validate();
  states_.reserve(num_links);
  for (std::size_t i = 0; i < num_links; ++i) {
    rng::SplitMix64 mix(seed ^ (kArrivalSalt * (i + 1)));
    LinkState state{rng::Xoshiro256(mix.Next()), /*on=*/true, /*tokens=*/0.0};
    if (spec_.family == ArrivalFamily::kOnOff) {
      // Start each modulator in its stationary distribution so the
      // measured rate has no initial-state transient.
      state.on = rng::UniformUnit(state.gen) < spec_.duty_cycle;
    }
    states_.push_back(state);
  }
}

std::uint64_t ArrivalProcess::ArrivalsFor(net::LinkId i) {
  FS_CHECK_MSG(i < states_.size(), "arrival draw for out-of-range link");
  LinkState& st = states_[i];
  switch (spec_.family) {
    case ArrivalFamily::kBernoulli:
      return rng::UniformUnit(st.gen) < spec_.rate ? 1 : 0;

    case ArrivalFamily::kPoissonBatch: {
      // Knuth's product-of-uniforms sampler: exact, inverse-CDF-free, and
      // cheap at the per-slot rates the frontier search probes (λ « 10).
      const double floor = std::exp(-spec_.rate);
      std::uint64_t count = 0;
      double product = rng::UniformUnit(st.gen);
      while (product > floor) {
        ++count;
        product *= rng::UniformUnit(st.gen);
      }
      return count;
    }

    case ArrivalFamily::kOnOff: {
      // Fixed two draws per slot (arrival candidate, then transition) so
      // the substream advances identically in both states.
      const double arrival_u = rng::UniformUnit(st.gen);
      const double switch_u = rng::UniformUnit(st.gen);
      const double peak = spec_.rate / spec_.duty_cycle;
      const std::uint64_t packets = (st.on && arrival_u < peak) ? 1 : 0;
      // Geometric sojourns with stationary ON-fraction = duty:
      // P(on→off) = 1/burst, P(off→on) = duty/((1−duty)·burst).
      const double p_off = 1.0 / spec_.mean_burst_slots;
      const double p_on =
          spec_.duty_cycle / ((1.0 - spec_.duty_cycle) * spec_.mean_burst_slots);
      if (st.on) {
        if (switch_u < p_off) st.on = false;
      } else {
        if (switch_u < p_on) st.on = true;
      }
      return packets;
    }

    case ArrivalFamily::kLeakyBucket: {
      // ρ tokens accrue per slot; the source dumps the whole accumulated
      // burst when the bucket fills (forced) or on a random early release.
      st.tokens += spec_.rate;
      const bool full = st.tokens >= spec_.bucket_depth;
      const bool release =
          full || rng::UniformUnit(st.gen) < spec_.release_probability;
      if (full) {
        // The forced release still consumes the slot's uniform so the
        // stream advances one draw per slot regardless of fill level.
        (void)rng::UniformUnit(st.gen);
      }
      if (!release) return 0;
      const auto burst = static_cast<std::uint64_t>(st.tokens);
      st.tokens -= static_cast<double>(burst);
      return burst;
    }
  }
  FS_CHECK_MSG(false, "unknown arrival family");
  return 0;
}

}  // namespace fadesched::dynamics
