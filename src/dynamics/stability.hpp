// Empirical stability: backlog-drift detection and the λ* frontier search.
//
// A scheduler is *stable* at offered load λ when queues stay bounded —
// equivalently, when the time-averaged backlog has no positive drift. We
// measure that directly: split the post-warmup backlog series into equal
// windows, take each window's mean, and fit a least-squares slope over
// the window means. A stable run's slope fluctuates around zero; an
// unstable run's backlog grows linearly at a rate bounded below by the
// excess arrival rate, so the slope test separates the two phases
// sharply once the run is a few multiples of the mixing time.
//
// The frontier λ* per scheduler is then located by bisection on λ,
// maintaining the invariant [lo stable, hi unstable]. Probes are
// seed-pure: probe k of a search uses a seed derived from (seed, k), so
// the whole frontier is a deterministic function of its inputs — the
// reproducibility property the CI stability-smoke job asserts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "channel/params.hpp"
#include "dynamics/slotted_sim.hpp"
#include "net/link_set.hpp"

namespace fadesched::dynamics {

struct DriftTestOptions {
  /// Number of equal windows the series is split into (≥ 2).
  std::size_t windows = 8;
  /// Stability threshold: the fitted backlog slope (packets per slot) must
  /// stay below tolerance × total offered load (packets per slot). The
  /// offered load is the natural scale — an unstable queue grows at the
  /// excess rate, a fraction of the offered rate.
  double slope_tolerance = 0.05;
  /// Series shorter than this are judged stable only if the final window
  /// mean is no larger than tolerance allows — too little data to fit.
  std::size_t min_samples = 32;
};

struct DriftAssessment {
  bool stable = false;
  /// Fitted backlog growth in packets per slot.
  double slope_per_slot = 0.0;
  /// The threshold the slope was compared against.
  double threshold = 0.0;
};

/// Windowed least-squares slope test on a post-warmup backlog series.
/// `offered_load_per_slot` is the expected total packet arrivals per slot
/// (num_links × per-link rate).
DriftAssessment AssessBacklogDrift(std::span<const double> backlog_series,
                                   double offered_load_per_slot,
                                   const DriftTestOptions& options = {});

struct FrontierOptions {
  /// Initial bracket on the per-link arrival rate. `lambda_hi` should be
  /// comfortably unstable (it is probed and trusted, not assumed).
  double lambda_lo = 0.0;
  double lambda_hi = 0.2;
  /// Bisection steps after bracketing (each halves the interval).
  std::size_t iterations = 7;
  DriftTestOptions drift;
};

struct FrontierResult {
  /// The frontier estimate: the highest probed rate judged stable.
  double lambda_star = 0.0;
  /// Final bracket [stable, unstable] around λ*.
  double lambda_lo = 0.0;
  double lambda_hi = 0.0;
  /// True when even lambda_hi was stable (λ* ≥ lambda_hi; bracket open).
  bool saturated = false;
  std::size_t probes = 0;
};

/// Bisection search for the named scheduler's stability frontier λ* (per
/// link, packets per slot). `base` supplies everything but the arrival
/// rate; probe k runs with seed mixed from (base.seed, k) so repeated
/// searches are byte-identical.
FrontierResult FindStabilityFrontier(const net::LinkSet& universe,
                                     const channel::ChannelParams& params,
                                     const std::string& scheduler_name,
                                     const DynamicsOptions& base,
                                     const FrontierOptions& options = {});

}  // namespace fadesched::dynamics
