#include "mathx/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace fadesched::mathx {

double KsStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf) {
  FS_CHECK_MSG(!sample.empty(), "KS statistic of empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    FS_CHECK_MSG(f >= -1e-12 && f <= 1.0 + 1e-12,
                 "reference CDF out of [0, 1]");
    const double above = (static_cast<double>(i) + 1.0) / n - f;
    const double below = f - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  return d;
}

double KsPValue(double statistic, std::size_t n) {
  FS_CHECK_MSG(n > 0, "KS p-value needs a sample size");
  FS_CHECK_MSG(statistic >= 0.0, "negative KS statistic");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda =
      (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;  // Stephens correction
  if (lambda < 1e-6) return 1.0;
  // Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2 k² λ²}.
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

bool KsTestPasses(std::span<const double> sample,
                  const std::function<double(double)>& cdf, double alpha) {
  FS_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  return KsPValue(KsStatistic(sample, cdf), sample.size()) >= alpha;
}

}  // namespace fadesched::mathx
