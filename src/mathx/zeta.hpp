// Riemann zeta for real arguments s > 1.
//
// LDP's square size and RLE's elimination radius both depend on ζ(α−1)
// (Formulas (37) and (59) of the paper), so we need ζ on (1, ∞) with a
// few digits of accuracy — Euler–Maclaurin with a modest cutoff delivers
// ~1e-12 everywhere we use it.
#pragma once

namespace fadesched::mathx {

/// ζ(s) for s > 1. Throws CheckFailure for s <= 1 (the series diverges and
/// the paper's constants are only defined for α > 2, i.e. s = α−1 > 1).
double RiemannZeta(double s);

}  // namespace fadesched::mathx
