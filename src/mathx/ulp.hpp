// ULP (units-in-the-last-place) distance between doubles.
//
// The differential tests pin the batched interference engine against the
// serial reference at the ULP level; a count of representable doubles
// between two values is the right metric there, where relative epsilons
// either over- or under-shoot near zero.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace fadesched::mathx {

/// Number of representable doubles strictly between `a` and `b` plus one
/// when they differ (0 for equal values; -0.0 and +0.0 count as equal).
/// NaN or infinity on either side yields UINT64_MAX.
inline std::uint64_t UlpDistance(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  // Map the double line onto a monotone integer line: non-negative values
  // keep their bit pattern, negative values are reflected below zero.
  const auto ordered = [](double x) -> std::int64_t {
    const auto bits = std::bit_cast<std::int64_t>(x);
    return bits >= 0 ? bits : std::numeric_limits<std::int64_t>::min() - bits;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia >= ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                  : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

}  // namespace fadesched::mathx
