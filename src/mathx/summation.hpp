// Compensated (Neumaier) summation.
//
// Interference-factor sums mix values spanning many orders of magnitude
// (near links vs the far-field tail), so accumulation error matters when
// checking feasibility against the tight γ_ε = ln(1/(1-ε)) threshold.
#pragma once

#include <cmath>

namespace fadesched::mathx {

class NeumaierSum {
 public:
  void Add(double value) {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] double Total() const { return sum_ + compensation_; }

  void Reset() {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Sum a range with compensation.
template <typename It>
double CompensatedSum(It begin, It end) {
  NeumaierSum acc;
  for (It it = begin; it != end; ++it) acc.Add(static_cast<double>(*it));
  return acc.Total();
}

}  // namespace fadesched::mathx
