// Special functions needed by the statistical validation layer.
#pragma once

namespace fadesched::mathx {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x)/Γ(a) for a > 0,
/// x ≥ 0 — the CDF of Gamma(shape a, scale 1). Series expansion for
/// x < a+1, continued fraction otherwise (Numerical-Recipes style),
/// accurate to ~1e-12.
double RegularizedGammaP(double a, double x);

/// CDF of Gamma(shape, scale) at x.
double GammaCdf(double x, double shape, double scale);

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

}  // namespace fadesched::mathx
