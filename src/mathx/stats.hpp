// Online and batch statistics used by the simulator and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace fadesched::mathx {

/// Welford's online mean/variance accumulator; numerically stable and
/// mergeable (parallel reduction across simulator threads).
class RunningStats {
 public:
  void Add(double value);

  /// Merge another accumulator (Chan et al. parallel combination).
  void Merge(const RunningStats& other);

  [[nodiscard]] std::size_t Count() const { return count_; }
  [[nodiscard]] double Mean() const;
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  [[nodiscard]] double Variance() const;
  [[nodiscard]] double StdDev() const;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double StdError() const;
  [[nodiscard]] double Min() const { return min_; }
  [[nodiscard]] double Max() const { return max_; }

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ConfidenceHalfWidth95() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); q in [0, 1].
double Percentile(std::span<const double> sorted_values, double q);

/// Bootstrap confidence interval for the sample mean.
struct BootstrapCi {
  double lower = 0.0;
  double upper = 0.0;
};
BootstrapCi BootstrapMeanCi(std::span<const double> values, double confidence,
                            std::size_t resamples, rng::Xoshiro256& gen);

}  // namespace fadesched::mathx
