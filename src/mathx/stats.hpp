// Online and batch statistics used by the simulator and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace fadesched::mathx {

/// Welford's online mean/variance accumulator; numerically stable and
/// mergeable (parallel reduction across simulator threads).
class RunningStats {
 public:
  void Add(double value);

  /// Merge another accumulator (Chan et al. parallel combination).
  void Merge(const RunningStats& other);

  [[nodiscard]] std::size_t Count() const { return count_; }
  [[nodiscard]] double Mean() const;
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  [[nodiscard]] double Variance() const;
  [[nodiscard]] double StdDev() const;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double StdError() const;
  [[nodiscard]] double Min() const { return min_; }
  [[nodiscard]] double Max() const { return max_; }

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ConfidenceHalfWidth95() const;

  /// Raw Welford moments, exposed for exact (bit-identical) checkpoint
  /// serialization. M2 is the sum of squared deviations from the mean.
  [[nodiscard]] double RawMean() const { return mean_; }
  [[nodiscard]] double RawM2() const { return m2_; }

  /// Rebuilds an accumulator from previously captured raw moments.
  /// Continuing to Add() after restoring produces bit-identical state to
  /// an accumulator that never round-tripped — the basis of crash-safe
  /// sweep resume.
  static RunningStats FromRawMoments(std::size_t count, double mean,
                                     double m2, double min, double max);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); q in [0, 1].
double Percentile(std::span<const double> sorted_values, double q);

/// Bootstrap confidence interval for the sample mean.
struct BootstrapCi {
  double lower = 0.0;
  double upper = 0.0;
};
BootstrapCi BootstrapMeanCi(std::span<const double> values, double confidence,
                            std::size_t resamples, rng::Xoshiro256& gen);

}  // namespace fadesched::mathx
