// Fixed-width histogram over a closed range, used to summarize SINR and
// interference-factor distributions in the examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fadesched::mathx {

class Histogram {
 public:
  /// Buckets of equal width cover [lo, hi); values outside land in the
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t num_buckets);

  void Add(double value);

  [[nodiscard]] std::size_t TotalCount() const { return total_; }
  [[nodiscard]] std::size_t Underflow() const { return underflow_; }
  [[nodiscard]] std::size_t Overflow() const { return overflow_; }
  [[nodiscard]] std::size_t NumBuckets() const { return counts_.size(); }
  [[nodiscard]] std::size_t BucketCount(std::size_t index) const;
  [[nodiscard]] double BucketLow(std::size_t index) const;
  [[nodiscard]] double BucketHigh(std::size_t index) const;

  /// Fraction of in-range samples at or below `value` (empirical CDF).
  [[nodiscard]] double EmpiricalCdf(double value) const;

  /// ASCII bar rendering, one line per bucket.
  [[nodiscard]] std::string ToAscii(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace fadesched::mathx
