#include "mathx/zeta.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fadesched::mathx {

double RiemannZeta(double s) {
  FS_CHECK_MSG(s > 1.0, "RiemannZeta requires s > 1");
  // Euler–Maclaurin: sum_{k=1}^{N-1} k^-s + N^-s/2 + N^{1-s}/(s-1)
  //                  + sum of Bernoulli correction terms.
  constexpr int kCutoff = 32;
  double sum = 0.0;
  for (int k = 1; k < kCutoff; ++k) {
    sum += std::pow(static_cast<double>(k), -s);
  }
  const double n = static_cast<double>(kCutoff);
  sum += 0.5 * std::pow(n, -s);
  sum += std::pow(n, 1.0 - s) / (s - 1.0);

  // Correction terms B_{2j}/(2j)! * (s)(s+1)...(s+2j-2) * N^{-s-2j+1}.
  // Bernoulli numbers B2=1/6, B4=-1/30, B6=1/42, B8=-1/30.
  static constexpr double kBernoulliOverFact[] = {
      1.0 / 12.0,        // B2/2!
      -1.0 / 720.0,      // B4/4!
      1.0 / 30240.0,     // B6/6!
      -1.0 / 1209600.0,  // B8/8!
  };
  double rising = s;  // s (s+1) ... accumulated across terms
  double power = std::pow(n, -s - 1.0);
  for (int j = 0; j < 4; ++j) {
    sum += kBernoulliOverFact[j] * rising * power;
    rising *= (s + 2.0 * j + 1.0) * (s + 2.0 * j + 2.0);
    power /= n * n;
  }
  return sum;
}

}  // namespace fadesched::mathx
