// One-sample Kolmogorov–Smirnov goodness-of-fit test — the statistical
// backbone of the RNG/distribution validation tests. Moment checks catch
// gross errors; KS catches shape errors (e.g. a subtly wrong inverse-CDF
// transform) that leave the first two moments intact.
#pragma once

#include <functional>
#include <span>

namespace fadesched::mathx {

/// D_n = sup |F_empirical − F| for an arbitrary (continuous) reference
/// CDF. The sample is copied and sorted internally.
double KsStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf);

/// Asymptotic two-sided p-value for the KS statistic at sample size n
/// (Kolmogorov distribution with the Stephens small-sample correction).
double KsPValue(double statistic, std::size_t n);

/// Convenience: true iff the sample is NOT rejected at significance
/// `alpha` against the reference CDF.
bool KsTestPasses(std::span<const double> sample,
                  const std::function<double(double)>& cdf,
                  double alpha = 0.01);

}  // namespace fadesched::mathx
