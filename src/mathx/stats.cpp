#include "mathx/stats.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace fadesched::mathx {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::FromRawMoments(std::size_t count, double mean,
                                          double m2, double min, double max) {
  RunningStats stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ < 2) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ConfidenceHalfWidth95() const {
  return 1.959963984540054 * StdError();
}

double Percentile(std::span<const double> sorted_values, double q) {
  FS_CHECK_MSG(!sorted_values.empty(), "percentile of empty sample");
  FS_CHECK(q >= 0.0 && q <= 1.0);
  FS_DCHECK(std::is_sorted(sorted_values.begin(), sorted_values.end()));
  if (sorted_values.size() == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

BootstrapCi BootstrapMeanCi(std::span<const double> values, double confidence,
                            std::size_t resamples, rng::Xoshiro256& gen) {
  FS_CHECK_MSG(!values.empty(), "bootstrap of empty sample");
  FS_CHECK(confidence > 0.0 && confidence < 1.0);
  FS_CHECK(resamples >= 2);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[rng::UniformIndex(gen, values.size())];
    }
    means.push_back(sum / static_cast<double>(values.size()));
  }
  std::sort(means.begin(), means.end());
  const double tail = (1.0 - confidence) / 2.0;
  return BootstrapCi{Percentile(means, tail), Percentile(means, 1.0 - tail)};
}

}  // namespace fadesched::mathx
