#include "mathx/special.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fadesched::mathx {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-14;

// Series representation: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a)_{n+1}.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a,x) = 1 − P(a,x) (modified Lentz).
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  FS_CHECK_MSG(a > 0.0, "gamma shape must be positive");
  FS_CHECK_MSG(x >= 0.0, "negative argument to incomplete gamma");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaCdf(double x, double shape, double scale) {
  FS_CHECK_MSG(scale > 0.0, "gamma scale must be positive");
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(shape, x / scale);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / 1.4142135623730950488);
}

}  // namespace fadesched::mathx
