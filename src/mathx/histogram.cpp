#include "mathx/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::mathx {

Histogram::Histogram(double lo, double hi, std::size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets, 0) {
  FS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  FS_CHECK_MSG(num_buckets > 0, "histogram needs at least one bucket");
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (value - lo_) / (hi_ - lo_);
  auto index = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  index = std::min(index, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[index];
}

std::size_t Histogram::BucketCount(std::size_t index) const {
  FS_CHECK(index < counts_.size());
  return counts_[index];
}

double Histogram::BucketLow(std::size_t index) const {
  FS_CHECK(index < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(index);
}

double Histogram::BucketHigh(std::size_t index) const {
  return BucketLow(index) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::EmpiricalCdf(double value) const {
  std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::size_t at_or_below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (BucketHigh(i) <= value) {
      at_or_below += counts_[i];
    }
  }
  return static_cast<double>(at_or_below) / static_cast<double>(in_range);
}

std::string Histogram::ToAscii(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * max_bar_width / peak;
    os << '[' << util::FormatDouble(BucketLow(i), 3) << ", "
       << util::FormatDouble(BucketHigh(i), 3) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace fadesched::mathx
