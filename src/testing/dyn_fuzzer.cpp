#include "testing/dyn_fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <utility>

#include "rng/distributions.hpp"
#include "testing/shrinker.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::testing {
namespace {

constexpr const char* kDynMagic = "# fadesched dynscenario v1";

// Case-derivation salts (distinct odd constants, same discipline as the
// dynamics substreams): one stream for the embedded topology, one for the
// dynamics knobs, so adding knob draws never perturbs the geometry.
constexpr std::uint64_t kTopologySalt = 0x8cb92ba72f3d8dd7ULL;
constexpr std::uint64_t kKnobSalt = 0xe7037ed1a0b428dbULL;

/// 17-significant-digit double rendering, same as the static corpus.
std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

const char* BackendName(channel::FactorBackend backend) {
  switch (backend) {
    case channel::FactorBackend::kCalculator: return "calculator";
    case channel::FactorBackend::kTables: return "tables";
    case channel::FactorBackend::kMatrix: return "matrix";
  }
  return "?";
}

bool ParseBackend(std::string_view name, channel::FactorBackend& out) {
  if (name == "calculator") {
    out = channel::FactorBackend::kCalculator;
  } else if (name == "tables") {
    out = channel::FactorBackend::kTables;
  } else if (name == "matrix") {
    out = channel::FactorBackend::kMatrix;
  } else {
    return false;
  }
  return true;
}

bool ParseFadingModel(std::string_view name, sim::FadingModel& out) {
  if (name == "rayleigh") {
    out = sim::FadingModel::kRayleigh;
  } else if (name == "nakagami") {
    out = sim::FadingModel::kNakagami;
  } else if (name == "shadowed") {
    out = sim::FadingModel::kShadowedRayleigh;
  } else {
    return false;
  }
  return true;
}

std::uint64_t ParseU64(std::string_view text, std::size_t line) {
  const std::string copy(util::Trim(text));
  FS_CHECK_MSG(!copy.empty() && copy.find_first_not_of("0123456789") ==
                                    std::string::npos,
               "dynscenario line " + std::to_string(line) +
                   ": expected unsigned integer, got '" + copy + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  FS_CHECK_MSG(errno == 0 && end == copy.c_str() + copy.size(),
               "dynscenario line " + std::to_string(line) +
                   ": integer out of range: '" + copy + "'");
  return static_cast<std::uint64_t>(value);
}

double ParseNum(std::string_view text, std::size_t line) {
  const auto value = util::ParseDouble(util::Trim(text));
  FS_CHECK_MSG(value.has_value(), "dynscenario line " + std::to_string(line) +
                                      ": expected number, got '" +
                                      std::string(util::Trim(text)) + "'");
  return *value;
}

std::string SanitizeForFilename(std::string text) {
  for (char& c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return text;
}

/// Runs the case in the given engine mode and captures the per-slot trace.
std::vector<std::string> TraceRun(const DynamicCase& dyn,
                                  dynamics::EngineMode mode) {
  dynamics::DynamicsOptions options = dyn.dynamics;
  options.engine_mode = mode;
  std::vector<std::string> trace;
  trace.reserve(options.num_slots);
  options.slot_observer = [&trace](const dynamics::SlotRecord& record) {
    trace.push_back(dynamics::FormatSlotRecord(record));
  };
  options.stop_requested = nullptr;
  dynamics::RunSlottedSimulation(dyn.scenario.links, dyn.scenario.params,
                                 dyn.scheduler, options);
  return trace;
}

/// Empty string when identical; otherwise the first diverging slot with
/// both renderings.
std::string DiffTraces(const std::vector<std::string>& a,
                       const std::vector<std::string>& b, const char* name_a,
                       const char* name_b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      std::ostringstream os;
      os << "traces diverge at slot " << i << ": " << name_a << " {" << a[i]
         << "} vs " << name_b << " {" << b[i] << "}";
      return os.str();
    }
  }
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "trace lengths differ: " << name_a << " has " << a.size() << ", "
       << name_b << " has " << b.size() << " slots";
    return os.str();
  }
  return {};
}

}  // namespace

std::vector<std::string> DefaultDynamicSchedulers() {
  // The engine-aware registry subset (these consult the shared engine and
  // thus exercise the warm subset view), plus the geometry-only greedy as
  // a control.
  return {"ldp",   "rle",         "fading_greedy",
          "approx_diversity",     "approx_logn",
          "graph_greedy"};
}

DynamicFuzzer::DynamicFuzzer(std::uint64_t seed, DynFuzzerOptions options)
    : seed_(seed), options_(std::move(options)) {
  if (options_.schedulers.empty()) {
    options_.schedulers = DefaultDynamicSchedulers();
  }
  FS_CHECK_MSG(options_.min_slots >= 2 &&
                   options_.min_slots <= options_.max_slots,
               "dynamic fuzzer slot range invalid");
}

DynamicCase DynamicFuzzer::Case(std::uint64_t index) const {
  DynamicCase dyn;
  const ScenarioFuzzer topology(seed_ ^ kTopologySalt, options_.topology);
  dyn.scenario = topology.Case(index);

  rng::SplitMix64 mix(seed_ ^ (kKnobSalt * (index + 1)));
  rng::Xoshiro256 gen(mix.Next());
  dynamics::DynamicsOptions& d = dyn.dynamics;

  dyn.scheduler = options_.schedulers[static_cast<std::size_t>(
      rng::UniformIndex(gen, options_.schedulers.size()))];

  d.num_slots = options_.min_slots +
                static_cast<std::size_t>(rng::UniformIndex(
                    gen, options_.max_slots - options_.min_slots + 1));
  d.warmup_slots = d.num_slots / 8;
  d.seed = gen();

  const std::uint64_t backend_draw = rng::UniformIndex(gen, 4);
  d.backend = backend_draw == 0   ? channel::FactorBackend::kCalculator
              : backend_draw == 1 ? channel::FactorBackend::kTables
                                  : channel::FactorBackend::kMatrix;

  d.queue_capacity = rng::UniformIndex(gen, 4) == 0
                         ? 1 + static_cast<std::size_t>(
                                   rng::UniformIndex(gen, 6))
                         : 0;

  // Arrival knobs: every parameter is drawn unconditionally so the draw
  // count per case is family-independent (case purity under option edits).
  const auto families = dynamics::AllArrivalFamilies();
  d.arrivals.family = families[static_cast<std::size_t>(
      rng::UniformIndex(gen, families.size()))];
  d.arrivals.rate = rng::UniformRange(gen, 0.02, 0.3);
  d.arrivals.duty_cycle = rng::UniformRange(gen, 0.3, 0.8);
  d.arrivals.mean_burst_slots = rng::UniformRange(gen, 2.0, 16.0);
  d.arrivals.bucket_depth =
      1.0 + static_cast<double>(rng::UniformIndex(gen, 8));
  d.arrivals.release_probability = rng::UniformRange(gen, 0.0, 0.5);
  if (d.arrivals.family == dynamics::ArrivalFamily::kOnOff) {
    d.arrivals.rate = std::min(d.arrivals.rate, d.arrivals.duty_cycle * 0.9);
  }

  // Churn knobs, drawn unconditionally for the same reason.
  const bool churn_on = rng::UniformIndex(gen, 2) == 0;
  const double leave = rng::UniformRange(gen, 0.0, 0.05);
  const double enter = rng::UniformRange(gen, 0.05, 0.25);
  const double fade = rng::UniformRange(gen, 0.0, 0.1);
  const std::size_t drift =
      static_cast<std::size_t>(rng::UniformIndex(gen, 3));
  if (options_.with_churn && churn_on) {
    d.churn.enabled = true;
    d.churn.leave_probability = leave;
    d.churn.enter_probability = enter;
    d.churn.fade_recheck_probability = fade;
    d.churn.drift_steps_per_slot = drift;
    const geom::Aabb box = dyn.scenario.links.BoundingBox();
    const double extent =
        std::max({std::abs(box.lo.x), std::abs(box.lo.y), std::abs(box.hi.x),
                  std::abs(box.hi.y), 10.0});
    d.churn.mobility.region_size = extent * 1.5;
    d.churn.mobility.min_speed = extent * 0.001;
    d.churn.mobility.max_speed = extent * 0.01;
  }

  const std::uint64_t refresh_mode = rng::UniformIndex(gen, 4);
  const std::size_t period_draw =
      4 + static_cast<std::size_t>(rng::UniformIndex(gen, 29));
  const std::uint64_t budget_draw = 1 + rng::UniformIndex(gen, 16);
  if (refresh_mode == 1 || refresh_mode == 3) {
    d.refresh.period_slots = period_draw;
  }
  if (refresh_mode == 2 || refresh_mode == 3) {
    d.refresh.churn_budget = budget_draw;
  }

  const std::uint64_t fading_draw = rng::UniformIndex(gen, 4);
  const double nakagami_m = rng::UniformRange(gen, 0.5, 3.0);
  const double sigma_db = rng::UniformRange(gen, 2.0, 8.0);
  if (fading_draw == 2) {
    d.fading.model = sim::FadingModel::kNakagami;
    d.fading.nakagami_m = nakagami_m;
  } else if (fading_draw == 3) {
    d.fading.model = sim::FadingModel::kShadowedRayleigh;
    d.fading.shadowing_sigma_db = sigma_db;
  }

  d.Validate();
  return dyn;
}

std::string FormatDynScenario(const DynamicCase& dyn) {
  const dynamics::DynamicsOptions& d = dyn.dynamics;
  std::ostringstream os;
  os << kDynMagic << "\n";
  os << "scheduler = " << dyn.scheduler << "\n";
  os << "engine_backend = " << BackendName(d.backend) << "\n";
  os << "num_slots = " << d.num_slots << "\n";
  os << "warmup_slots = " << d.warmup_slots << "\n";
  os << "dyn_seed = " << d.seed << "\n";
  os << "queue_capacity = " << d.queue_capacity << "\n";
  os << "arrival_family = " << dynamics::ArrivalFamilyName(d.arrivals.family)
     << "\n";
  os << "arrival_rate = " << Num(d.arrivals.rate) << "\n";
  os << "duty_cycle = " << Num(d.arrivals.duty_cycle) << "\n";
  os << "mean_burst_slots = " << Num(d.arrivals.mean_burst_slots) << "\n";
  os << "bucket_depth = " << Num(d.arrivals.bucket_depth) << "\n";
  os << "release_probability = " << Num(d.arrivals.release_probability)
     << "\n";
  os << "churn_enabled = " << (d.churn.enabled ? 1 : 0) << "\n";
  os << "leave_probability = " << Num(d.churn.leave_probability) << "\n";
  os << "enter_probability = " << Num(d.churn.enter_probability) << "\n";
  os << "fade_recheck_probability = "
     << Num(d.churn.fade_recheck_probability) << "\n";
  os << "drift_steps_per_slot = " << d.churn.drift_steps_per_slot << "\n";
  os << "region_size = " << Num(d.churn.mobility.region_size) << "\n";
  os << "min_speed = " << Num(d.churn.mobility.min_speed) << "\n";
  os << "max_speed = " << Num(d.churn.mobility.max_speed) << "\n";
  os << "repick_probability = " << Num(d.churn.mobility.repick_probability)
     << "\n";
  os << "refresh_period_slots = " << d.refresh.period_slots << "\n";
  os << "refresh_churn_budget = " << d.refresh.churn_budget << "\n";
  os << "fading_model = " << sim::FadingModelName(d.fading.model) << "\n";
  os << "nakagami_m = " << Num(d.fading.nakagami_m) << "\n";
  os << "shadowing_sigma_db = " << Num(d.fading.shadowing_sigma_db) << "\n";
  os << "scenario:\n";
  os << FormatScenario(dyn.scenario);
  return os.str();
}

DynamicCase ParseDynScenario(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;

  FS_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
               "dynscenario: empty input");
  ++line_number;
  FS_CHECK_MSG(util::Trim(line) == kDynMagic,
               "dynscenario line 1: expected magic '" +
                   std::string(kDynMagic) + "'");

  DynamicCase dyn;
  dynamics::DynamicsOptions& d = dyn.dynamics;
  bool saw_scenario_block = false;
  bool saw_scheduler = false;

  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed == "scenario:") {
      saw_scenario_block = true;
      break;
    }
    const std::size_t eq = trimmed.find('=');
    FS_CHECK_MSG(eq != std::string_view::npos,
                 "dynscenario line " + std::to_string(line_number) +
                     ": expected 'key = value', got '" + std::string(trimmed) +
                     "'");
    const std::string key(util::Trim(trimmed.substr(0, eq)));
    const std::string_view value = util::Trim(trimmed.substr(eq + 1));
    const std::size_t n = line_number;

    if (key == "scheduler") {
      dyn.scheduler = std::string(value);
      saw_scheduler = true;
    } else if (key == "engine_backend") {
      FS_CHECK_MSG(ParseBackend(value, d.backend),
                   "dynscenario line " + std::to_string(n) +
                       ": unknown backend '" + std::string(value) + "'");
    } else if (key == "num_slots") {
      d.num_slots = static_cast<std::size_t>(ParseU64(value, n));
    } else if (key == "warmup_slots") {
      d.warmup_slots = static_cast<std::size_t>(ParseU64(value, n));
    } else if (key == "dyn_seed") {
      d.seed = ParseU64(value, n);
    } else if (key == "queue_capacity") {
      d.queue_capacity = static_cast<std::size_t>(ParseU64(value, n));
    } else if (key == "arrival_family") {
      FS_CHECK_MSG(dynamics::ParseArrivalFamily(value, d.arrivals.family),
                   "dynscenario line " + std::to_string(n) +
                       ": unknown arrival family '" + std::string(value) +
                       "'");
    } else if (key == "arrival_rate") {
      d.arrivals.rate = ParseNum(value, n);
    } else if (key == "duty_cycle") {
      d.arrivals.duty_cycle = ParseNum(value, n);
    } else if (key == "mean_burst_slots") {
      d.arrivals.mean_burst_slots = ParseNum(value, n);
    } else if (key == "bucket_depth") {
      d.arrivals.bucket_depth = ParseNum(value, n);
    } else if (key == "release_probability") {
      d.arrivals.release_probability = ParseNum(value, n);
    } else if (key == "churn_enabled") {
      d.churn.enabled = ParseU64(value, n) != 0;
    } else if (key == "leave_probability") {
      d.churn.leave_probability = ParseNum(value, n);
    } else if (key == "enter_probability") {
      d.churn.enter_probability = ParseNum(value, n);
    } else if (key == "fade_recheck_probability") {
      d.churn.fade_recheck_probability = ParseNum(value, n);
    } else if (key == "drift_steps_per_slot") {
      d.churn.drift_steps_per_slot =
          static_cast<std::size_t>(ParseU64(value, n));
    } else if (key == "region_size") {
      d.churn.mobility.region_size = ParseNum(value, n);
    } else if (key == "min_speed") {
      d.churn.mobility.min_speed = ParseNum(value, n);
    } else if (key == "max_speed") {
      d.churn.mobility.max_speed = ParseNum(value, n);
    } else if (key == "repick_probability") {
      d.churn.mobility.repick_probability = ParseNum(value, n);
    } else if (key == "refresh_period_slots") {
      d.refresh.period_slots = static_cast<std::size_t>(ParseU64(value, n));
    } else if (key == "refresh_churn_budget") {
      d.refresh.churn_budget = ParseU64(value, n);
    } else if (key == "fading_model") {
      FS_CHECK_MSG(ParseFadingModel(value, d.fading.model),
                   "dynscenario line " + std::to_string(n) +
                       ": unknown fading model '" + std::string(value) + "'");
    } else if (key == "nakagami_m") {
      d.fading.nakagami_m = ParseNum(value, n);
    } else if (key == "shadowing_sigma_db") {
      d.fading.shadowing_sigma_db = ParseNum(value, n);
    } else {
      FS_CHECK_MSG(false, "dynscenario line " + std::to_string(n) +
                              ": unknown key '" + key + "'");
    }
  }

  FS_CHECK_MSG(saw_scenario_block, "dynscenario: missing 'scenario:' block");
  FS_CHECK_MSG(saw_scheduler, "dynscenario: missing 'scheduler' key");

  std::ostringstream rest;
  rest << in.rdbuf();
  dyn.scenario = ParseScenario(rest.str());
  d.Validate();
  return dyn;
}

void SaveDynScenarioFile(const DynamicCase& dyn, const std::string& path) {
  util::AtomicWriteFile(path, FormatDynScenario(dyn));
}

DynamicCase LoadDynScenarioFile(const std::string& path) {
  return ParseDynScenario(util::ReadFileToString(path));
}

DynOracleOutcome CheckDynamicCase(const DynamicCase& dyn) {
  DynOracleOutcome out;
  try {
    const auto warm = TraceRun(dyn, dynamics::EngineMode::kWarmSubset);
    const auto cold = TraceRun(dyn, dynamics::EngineMode::kColdRebuild);
    std::string diff = DiffTraces(warm, cold, "warm", "cold");
    if (!diff.empty()) {
      out.ok = false;
      out.check = "warm_cold_divergence";
      out.detail = std::move(diff);
      return out;
    }
    const auto replay = TraceRun(dyn, dynamics::EngineMode::kWarmSubset);
    diff = DiffTraces(warm, replay, "run1", "run2");
    if (!diff.empty()) {
      out.ok = false;
      out.check = "replay_divergence";
      out.detail = std::move(diff);
      return out;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.check = "crash";
    out.detail = e.what();
  }
  return out;
}

DynShrinkResult ShrinkDynamicCase(const DynamicCase& failing,
                                  const DynShrinkOptions& options) {
  const DynOracleOutcome original = CheckDynamicCase(failing);
  FS_CHECK_MSG(!original.ok,
               "ShrinkDynamicCase: input does not fail the oracle");

  DynShrinkResult result;
  result.shrunk = failing;
  std::size_t budget = options.max_evaluations;

  const auto still_fails = [&](const DynamicCase& candidate) {
    if (budget == 0) return false;
    --budget;
    ++result.evaluations;
    const DynOracleOutcome out = CheckDynamicCase(candidate);
    return !out.ok && out.check == original.check;
  };

  // Phase 1: ddmin over the link set via the static shrinker. Roughly
  // half the budget, so slot/knob reduction always gets a chance.
  if (budget > 2) {
    const FailurePredicate predicate = [&](const ScenarioCase& candidate) {
      if (candidate.links.Size() == 0) return false;
      DynamicCase dyn = result.shrunk;
      dyn.scenario = candidate;
      return still_fails(dyn);
    };
    ShrinkOptions link_options;
    link_options.max_evaluations = budget / 2;
    const ShrinkResult links =
        ShrinkScenario(result.shrunk.scenario, predicate, link_options);
    result.shrunk.scenario = links.scenario;
    result.links_minimal = links.minimal;
  }

  // Phase 2: halve the slot count (clamping warmup with it).
  while (budget > 0 && result.shrunk.dynamics.num_slots > 8) {
    DynamicCase candidate = result.shrunk;
    candidate.dynamics.num_slots =
        std::max<std::size_t>(8, candidate.dynamics.num_slots / 2);
    candidate.dynamics.warmup_slots = std::min(
        candidate.dynamics.warmup_slots, candidate.dynamics.num_slots / 4);
    if (!still_fails(candidate)) break;
    result.shrunk = candidate;
  }

  // Phase 3: best-effort knob simplification — each accepted only if the
  // same failure class survives.
  const auto try_knob = [&](auto&& mutate) {
    if (budget == 0) return;
    DynamicCase candidate = result.shrunk;
    mutate(candidate);
    if (still_fails(candidate)) result.shrunk = std::move(candidate);
  };
  try_knob([](DynamicCase& c) { c.dynamics.churn = dynamics::ChurnOptions{}; });
  try_knob([](DynamicCase& c) { c.dynamics.queue_capacity = 0; });
  try_knob([](DynamicCase& c) { c.dynamics.fading = sim::FadingOptions{}; });
  try_knob(
      [](DynamicCase& c) { c.dynamics.refresh = dynamics::EngineRefreshPolicy{}; });

  return result;
}

DynFuzzReport RunDynamicFuzz(const DynFuzzDriverOptions& options) {
  const DynamicFuzzer fuzzer(options.seed, options.fuzzer);
  DynFuzzReport report;
  std::set<std::pair<std::string, std::string>> seen;  // (scheduler, check)

  const auto log = [&](const std::string& message) {
    if (options.log) options.log(message);
  };

  for (std::uint64_t index = 0; index < options.iterations; ++index) {
    if (report.failures.size() >= options.max_failures) break;
    const DynamicCase dyn = fuzzer.Case(index);
    const DynOracleOutcome outcome = CheckDynamicCase(dyn);
    ++report.iterations_run;
    if (options.log_every != 0 && (index + 1) % options.log_every == 0) {
      std::ostringstream os;
      os << "dynfuzz: " << (index + 1) << "/" << options.iterations
         << " cases, " << report.failures.size() << " distinct failure(s)";
      log(os.str());
    }
    if (outcome.ok) continue;
    ++report.cases_with_failures;
    if (!seen.insert({dyn.scheduler, outcome.check}).second) continue;

    DynFuzzFailure failure;
    failure.original = dyn;
    failure.outcome = outcome;
    failure.shrunk = dyn;
    if (options.shrink) {
      failure.shrunk = ShrinkDynamicCase(dyn, options.shrinker).shrunk;
    }

    if (!options.corpus_dir.empty()) {
      std::ostringstream name;
      name << options.corpus_dir << "/dyn-seed" << options.seed << "-i"
           << index << "-" << SanitizeForFilename(dyn.scheduler) << "-"
           << SanitizeForFilename(outcome.check) << ".dynscenario";
      failure.corpus_path = name.str();
      SaveDynScenarioFile(failure.shrunk, failure.corpus_path);
    }

    std::ostringstream os;
    os << "dynfuzz FAILURE [" << dyn.scheduler << "/" << outcome.check
       << "] at case " << index << ": " << outcome.detail << " (shrunk to "
       << failure.shrunk.scenario.links.Size() << " links, "
       << failure.shrunk.dynamics.num_slots << " slots"
       << (failure.corpus_path.empty() ? ""
                                       : ", wrote " + failure.corpus_path)
       << ")";
    log(os.str());
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace fadesched::testing
