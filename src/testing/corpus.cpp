#include "testing/corpus.hpp"

#include <array>
#include <cstdio>
#include <iterator>
#include <sstream>

#include "net/scenario_io.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::testing {
namespace {

constexpr const char* kMagic = "# fadesched scenario v1";

// 17 *significant* digits round-trip every double, so shrunk boundary
// instances replay bit-identically. %g, not util::FormatDouble's fixed
// %f, which drops significance below 1e-17 absolute.
std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string FormatScenario(const ScenarioCase& scenario) {
  FS_CHECK_MSG(scenario.description.find('\n') == std::string::npos,
               "scenario description must be a single line");
  std::ostringstream os;
  os << kMagic << "\n";
  os << "# description: " << scenario.description << "\n";
  os << "alpha = " << Num(scenario.params.alpha) << "\n";
  os << "epsilon = " << Num(scenario.params.epsilon) << "\n";
  os << "gamma_th = " << Num(scenario.params.gamma_th) << "\n";
  os << "tx_power = " << Num(scenario.params.tx_power) << "\n";
  os << "noise_power = " << Num(scenario.params.noise_power) << "\n";
  os << "links:\n";
  // The link block reuses scenario_io's CSV schema, but at full precision:
  // rebuild the table cells here instead of calling ToCsv (12 digits).
  const net::LinkSet& links = scenario.links;
  const bool with_power = !links.HasUniformTxPower();
  os << "sx,sy,rx,ry,rate" << (with_power ? ",tx_power" : "") << "\n";
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    os << Num(links.Sender(i).x) << ',' << Num(links.Sender(i).y) << ','
       << Num(links.Receiver(i).x) << ',' << Num(links.Receiver(i).y) << ','
       << Num(links.Rate(i));
    if (with_power) os << ',' << Num(links.TxPower(i));
    os << "\n";
  }
  return os.str();
}

ScenarioCase ParseScenario(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  const auto where = [&] {
    return "scenario file line " + std::to_string(line_no);
  };

  ScenarioCase result;
  const bool has_magic = static_cast<bool>(std::getline(is, line));
  ++line_no;
  FS_CHECK_MSG(has_magic && util::Trim(line) == kMagic,
               "scenario file line 1: missing header '" + std::string(kMagic) +
                   "'");

  bool saw_links = false;
  std::array<bool, 5> seen{};  // alpha, epsilon, gamma_th, tx_power, noise
  while (std::getline(is, line)) {
    ++line_no;
    const std::string trimmed{util::Trim(line)};
    if (trimmed.empty()) continue;
    if (trimmed.rfind("# description:", 0) == 0) {
      result.description = std::string{util::Trim(trimmed.substr(14))};
      continue;
    }
    if (trimmed[0] == '#') continue;
    if (trimmed == "links:") {
      saw_links = true;
      break;
    }
    const auto eq = trimmed.find('=');
    FS_CHECK_MSG(eq != std::string::npos,
                 where() + ": expected 'key = value' or 'links:'");
    const std::string key{util::Trim(trimmed.substr(0, eq))};
    const auto value = util::ParseDouble(util::Trim(trimmed.substr(eq + 1)));
    FS_CHECK_MSG(value.has_value(),
                 where() + ": malformed value for key '" + key + "'");
    if (key == "alpha") {
      result.params.alpha = *value;
      seen[0] = true;
    } else if (key == "epsilon") {
      result.params.epsilon = *value;
      seen[1] = true;
    } else if (key == "gamma_th") {
      result.params.gamma_th = *value;
      seen[2] = true;
    } else if (key == "tx_power") {
      result.params.tx_power = *value;
      seen[3] = true;
    } else if (key == "noise_power") {
      result.params.noise_power = *value;
      seen[4] = true;
    } else {
      FS_CHECK_MSG(false, where() + ": unknown key '" + key + "'");
    }
  }
  FS_CHECK_MSG(saw_links, "scenario file: missing 'links:' block");
  for (std::size_t k = 0; k < seen.size(); ++k) {
    static constexpr const char* kKeys[] = {"alpha", "epsilon", "gamma_th",
                                            "tx_power", "noise_power"};
    FS_CHECK_MSG(seen[k], "scenario file: missing key '" +
                              std::string(kKeys[k]) + "'");
  }
  result.params.Validate();

  // Remainder of the stream is the scenario_io CSV block; FromCsv reports
  // malformed values as "scenario row N" relative to this block.
  std::string csv_block((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  FS_CHECK_MSG(!util::Trim(csv_block).empty(),
               "scenario file: truncated after 'links:' — missing CSV "
               "header row");
  result.links = net::FromCsv(util::CsvTable::ParseString(csv_block));
  return result;
}

void SaveScenarioFile(const ScenarioCase& scenario, const std::string& path) {
  util::AtomicWriteFile(path, FormatScenario(scenario));
}

ScenarioCase LoadScenarioFile(const std::string& path) {
  return ParseScenario(util::ReadFileToString(path));
}

}  // namespace fadesched::testing
