// Oracle harness: checks every registered scheduler's output against the
// paper's mechanically verifiable invariants on arbitrary instances.
//
// Per scheduler × instance, driven by the sched::SchedulerContract the
// scheduler registered:
//
//   well_formed    — ids strictly ascending and in range; claimed_rate
//                    equals Σλ of the schedule.
//   determinism    — a second run from a fresh instance returns the
//                    identical schedule (all registered schedulers are
//                    seeded, never wall-clock randomized).
//   feasibility    — every scheduled link informed per Corollary 3.1,
//                    judged by the reference InterferenceCalculator
//                    (contract.fading_feasible only).
//   backend_ulp    — per-victim interference sums from the kCalculator,
//                    kTables, and kMatrix engine backends agree with the
//                    reference to ≤ max_ulp ULP.
//   exact_*        — on instances with N ≤ exact_cap, cross-validation
//                    against BranchAndBoundScheduler: the informed rate of
//                    ANY schedule is bounded by the optimum (removing
//                    non-informed links only shrinks interference, so the
//                    informed subset is itself feasible); feasible
//                    schedulers' claimed rate is bounded by the optimum;
//                    exact schedulers must match it; schedulers with
//                    contract.nonempty_when_feasible must return a link
//                    whenever some singleton is feasible.
//   metamorphic_*  — the transformations of testing/metamorphic.hpp:
//                    schedule-level invariance (relabeling, rigid motion,
//                    α-consistent scaling) and the proved direction under
//                    ε relaxation / γ_th tightening, both for the fixed
//                    base schedule and for the re-run scheduler.
//
// Heuristic tie-breaking is id-sensitive by design, so metamorphic checks
// never assert schedule *equality* for heuristics across relabelings —
// only contract compliance of the transformed run plus the invariance of
// the feasibility verdict of the mapped base schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "testing/corpus.hpp"

namespace fadesched::testing {

struct OracleOptions {
  /// Cross-validate against the exact solver when N ≤ exact_cap.
  std::size_t exact_cap = 14;
  /// Backend-agreement tolerance vs the reference calculator.
  std::uint64_t backend_max_ulp = 16;
  bool check_backends = true;
  bool metamorphic = true;
  /// Scheduler names to check; empty = every registered scheduler.
  std::vector<std::string> schedulers;
  /// Factory override, e.g. to check a planted-bug mutant in a mutation
  /// test; empty = sched::MakeScheduler.
  std::function<sched::SchedulerPtr(const std::string&)> factory;
};

struct Violation {
  std::string scheduler;
  std::string check;      ///< stable id, e.g. "feasibility", "backend_ulp"
  std::string detail;     ///< human-readable diagnosis
  ScenarioCase scenario;  ///< instance that produced it (post-transform)
};

class OracleHarness {
 public:
  explicit OracleHarness(OracleOptions options = {});

  /// Runs every selected registered scheduler on the instance and returns
  /// all violations found (empty = instance passed).
  [[nodiscard]] std::vector<Violation> CheckCase(
      const ScenarioCase& scenario) const;

  /// Checks one scheduler (by contract) on one instance. Exceptions from
  /// the scheduler surface as a violation with check == "exception".
  void CheckScheduler(const sched::SchedulerContract& contract,
                      const ScenarioCase& scenario,
                      std::vector<Violation>& out) const;

  [[nodiscard]] const OracleOptions& Options() const { return options_; }

 private:
  OracleOptions options_;
};

}  // namespace fadesched::testing
