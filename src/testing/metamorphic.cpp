#include "testing/metamorphic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::testing {
namespace {

std::vector<net::LinkId> IdentityMap(std::size_t n) {
  std::vector<net::LinkId> map(n);
  std::iota(map.begin(), map.end(), net::LinkId{0});
  return map;
}

}  // namespace

TransformedCase PermuteLinks(const ScenarioCase& base, std::uint64_t seed) {
  const std::size_t n = base.links.Size();
  // Fisher–Yates over the *positions*: order[k] = old id placed at new k.
  std::vector<net::LinkId> order = IdentityMap(n);
  rng::Xoshiro256 gen(seed);
  for (std::size_t k = n; k > 1; --k) {
    std::swap(order[k - 1], order[rng::UniformIndex(gen, k)]);
  }
  TransformedCase result;
  result.scenario.params = base.params;
  result.scenario.description = base.description + " | permuted";
  result.relabel.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    result.scenario.links.Add(base.links.At(order[k]));
    result.relabel[order[k]] = k;
  }
  result.bitwise_invariant = true;
  result.name = "permute";
  return result;
}

TransformedCase RigidMotion(const ScenarioCase& base, double angle,
                            double dx, double dy) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  geom::Vec2 pivot{0.0, 0.0};
  if (!base.links.Empty()) {
    const geom::Aabb box = base.links.BoundingBox();
    pivot = geom::Vec2{(box.lo.x + box.hi.x) / 2.0,
                       (box.lo.y + box.hi.y) / 2.0};
  }
  const auto move = [&](geom::Vec2 p) {
    const geom::Vec2 q = p - pivot;
    return geom::Vec2{pivot.x + c * q.x - s * q.y + dx,
                      pivot.y + s * q.x + c * q.y + dy};
  };
  TransformedCase result;
  result.scenario.params = base.params;
  result.scenario.description = base.description + " | rigid-motion";
  for (net::LinkId i = 0; i < base.links.Size(); ++i) {
    net::Link link = base.links.At(i);
    link.sender = move(link.sender);
    link.receiver = move(link.receiver);
    result.scenario.links.Add(link);
  }
  result.relabel = IdentityMap(base.links.Size());
  result.name = "rigid_motion";
  return result;
}

TransformedCase UniformScale(const ScenarioCase& base, double s) {
  FS_CHECK(s > 0.0);
  const double power_scale = std::pow(s, base.params.alpha);
  TransformedCase result;
  result.scenario.params = base.params;
  result.scenario.params.tx_power *= power_scale;
  result.scenario.description = base.description + " | scaled";
  for (net::LinkId i = 0; i < base.links.Size(); ++i) {
    net::Link link = base.links.At(i);
    link.sender = link.sender * s;
    link.receiver = link.receiver * s;
    if (link.tx_power > 0.0) link.tx_power *= power_scale;
    result.scenario.links.Add(link);
  }
  result.relabel = IdentityMap(base.links.Size());
  result.name = "uniform_scale";
  return result;
}

TransformedCase RelaxEpsilon(const ScenarioCase& base, double factor) {
  FS_CHECK(factor > 1.0);
  TransformedCase result;
  result.scenario.links = base.links;
  result.scenario.params = base.params;
  result.scenario.params.epsilon =
      std::min(base.params.epsilon * factor, 0.999);
  result.scenario.description = base.description + " | epsilon-relaxed";
  result.relabel = IdentityMap(base.links.Size());
  result.bitwise_invariant = true;  // factors untouched, only the budget moves
  result.relaxation =
      result.scenario.params.epsilon > base.params.epsilon;
  result.name = "relax_epsilon";
  return result;
}

TransformedCase TightenGamma(const ScenarioCase& base, double factor) {
  FS_CHECK(factor > 0.0 && factor < 1.0);
  TransformedCase result;
  result.scenario.links = base.links;
  result.scenario.params = base.params;
  result.scenario.params.gamma_th = base.params.gamma_th * factor;
  result.scenario.description = base.description + " | gamma-tightened";
  result.relabel = IdentityMap(base.links.Size());
  result.relaxation = true;
  result.name = "tighten_gamma";
  return result;
}

net::Schedule MapSchedule(const net::Schedule& schedule,
                          const std::vector<net::LinkId>& relabel) {
  net::Schedule mapped;
  mapped.reserve(schedule.size());
  for (net::LinkId id : schedule) {
    FS_CHECK(id < relabel.size());
    mapped.push_back(relabel[id]);
  }
  std::sort(mapped.begin(), mapped.end());
  return mapped;
}

}  // namespace fadesched::testing
