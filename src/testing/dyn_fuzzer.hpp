// Dynamic-scenario fuzzing: the `dynamic` fuzz family.
//
// A dynamic case is a static fuzzed topology (reusing ScenarioFuzzer's
// adversarial geometry/channel families) plus randomized *dynamics*
// knobs — arrival family and load, churn probabilities, drift, engine
// refresh cadence, queue capacity, backend, fading model, and the
// scheduler under test. Cases are pure in (master seed, index), same as
// the static fuzzer.
//
// The oracle is the tentpole contract of the dynamics subsystem: a run in
// kWarmSubset mode (warm full-universe engine + per-slot subset views)
// must produce a per-slot trace *byte-identical* to the kColdRebuild
// reference, and a warm re-run must replay byte-identically (seed
// determinism). Packet-ledger conservation is FS_CHECKed inside the
// simulator; a thrown check surfaces here as a "crash" outcome.
//
// Failures shrink to a minimal `.dynscenario` reproducer: ddmin over the
// link set (via ShrinkScenario), then slot-count halving, then
// best-effort knob simplification (drop churn, unbound the queue, revert
// to Rayleigh fading, drop the refresh policy) — each step kept only if
// the same oracle check still fails.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dynamics/slotted_sim.hpp"
#include "testing/fuzzer.hpp"

namespace fadesched::testing {

/// One dynamic fuzz instance: static scenario + dynamics knobs + the
/// scheduler under test. `dynamics.slot_observer` / `stop_requested` are
/// never serialized and must stay empty in corpus files.
struct DynamicCase {
  ScenarioCase scenario;
  std::string scheduler;
  dynamics::DynamicsOptions dynamics;
};

struct DynFuzzerOptions {
  /// Topology families for the embedded static scenario. Smaller default
  /// cap than the static fuzzer: the oracle runs the slotted simulator
  /// three times per case.
  FuzzerOptions topology{.min_links = 2, .max_links = 14};
  std::size_t min_slots = 40;
  std::size_t max_slots = 160;
  /// Allow churn (membership + drift + fade rechecks) on a fraction of
  /// cases; false pins a static universe.
  bool with_churn = true;
  /// Schedulers to draw from; empty = the engine-aware registry subset
  /// (DefaultDynamicSchedulers).
  std::vector<std::string> schedulers;
};

/// The schedulers the dynamic family exercises by default.
std::vector<std::string> DefaultDynamicSchedulers();

/// Deterministic dynamic-case generator; pure in (seed, index).
class DynamicFuzzer {
 public:
  explicit DynamicFuzzer(std::uint64_t seed, DynFuzzerOptions options = {});

  [[nodiscard]] DynamicCase Case(std::uint64_t index) const;
  DynamicCase Next() { return Case(next_index_++); }
  [[nodiscard]] std::uint64_t NextIndex() const { return next_index_; }

 private:
  std::uint64_t seed_;
  DynFuzzerOptions options_;
  std::uint64_t next_index_ = 0;
};

/// Serialize to the `.dynscenario` text format: a line-oriented dynamics
/// header, then `scenario:` followed by the embedded `.scenario` v1 text.
std::string FormatDynScenario(const DynamicCase& dyn);

/// Parse the `.dynscenario` format; throws CheckFailure naming the
/// offending 1-based line on malformed input.
DynamicCase ParseDynScenario(const std::string& text);

/// File round-trips (atomic save, same contract as the static corpus).
void SaveDynScenarioFile(const DynamicCase& dyn, const std::string& path);
DynamicCase LoadDynScenarioFile(const std::string& path);

/// Oracle outcome for one dynamic case.
struct DynOracleOutcome {
  bool ok = true;
  /// Stable failure identity: "warm_cold_divergence", "replay_divergence",
  /// or "crash". Empty when ok.
  std::string check;
  /// Human-readable detail (first diverging slot + both trace lines, or
  /// the exception message).
  std::string detail;
};

/// Runs the warm/cold schedule-identity + warm-replay oracle. Never
/// throws: simulator exceptions (including ledger FS_CHECK failures)
/// become a "crash" outcome.
DynOracleOutcome CheckDynamicCase(const DynamicCase& dyn);

struct DynShrinkOptions {
  /// Upper bound on oracle evaluations across all shrink phases.
  std::size_t max_evaluations = 300;
};

struct DynShrinkResult {
  DynamicCase shrunk;
  std::size_t evaluations = 0;
  /// True when the link-set phase reached 1-minimality within budget.
  bool links_minimal = false;
};

/// Shrinks `failing` (which must fail CheckDynamicCase) while preserving
/// the original outcome's `check` identity.
DynShrinkResult ShrinkDynamicCase(const DynamicCase& failing,
                                  const DynShrinkOptions& options = {});

struct DynFuzzFailure {
  DynamicCase original;
  DynOracleOutcome outcome;  ///< first occurrence
  DynamicCase shrunk;        ///< minimal reproducer (== original if !shrink)
  std::string corpus_path;   ///< file written under corpus_dir, if any
};

struct DynFuzzReport {
  std::uint64_t iterations_run = 0;
  std::uint64_t cases_with_failures = 0;
  std::vector<DynFuzzFailure> failures;  ///< deduped by (scheduler, check)
  [[nodiscard]] bool Ok() const { return failures.empty(); }
};

struct DynFuzzDriverOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 200;
  DynFuzzerOptions fuzzer;
  bool shrink = true;
  DynShrinkOptions shrinker;
  /// Directory for shrunk `.dynscenario` reproducers; empty = don't write.
  std::string corpus_dir;
  /// Stop after this many distinct (scheduler, check) failures.
  std::size_t max_failures = 4;
  std::function<void(const std::string&)> log;
  std::uint64_t log_every = 50;
};

/// The generate → check → shrink → persist loop behind
/// `fadesched_cli fuzz --dynamic`.
DynFuzzReport RunDynamicFuzz(const DynFuzzDriverOptions& options);

}  // namespace fadesched::testing
