// Failure shrinker: reduces a violating scenario to a (locally) minimal
// reproducer by delta-debugging over the link set.
//
// Classic ddmin: try dropping large contiguous chunks first, halving the
// chunk size on failure to reproduce, down to single links; iterate to a
// fixpoint. The predicate decides "still violates", so the same shrinker
// serves oracle violations, crashes, and hand-written repro conditions.
// Channel parameters are left untouched — they are part of the bug's
// identity — except for a final best-effort attempt to zero the ambient
// noise, which removes one irrelevant dimension from most reproducers.
#pragma once

#include <cstddef>
#include <functional>

#include "testing/corpus.hpp"

namespace fadesched::testing {

/// Returns true iff the candidate scenario still exhibits the failure.
/// The predicate must tolerate any subset of the original links,
/// including the empty set, and must not throw (wrap oracle calls).
using FailurePredicate = std::function<bool(const ScenarioCase&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations; shrinking stops (keeping the
  /// best reproducer so far) when exhausted.
  std::size_t max_evaluations = 2000;
};

struct ShrinkResult {
  ScenarioCase scenario;          ///< smallest reproducer found
  std::size_t evaluations = 0;    ///< predicate calls spent
  std::size_t original_links = 0;
  /// True when no single link can be removed without losing the failure
  /// (1-minimal); false when max_evaluations cut the search short.
  bool minimal = false;
};

/// Shrinks `failing` under `predicate`. The input must itself satisfy the
/// predicate (CheckFailure otherwise).
ShrinkResult ShrinkScenario(const ScenarioCase& failing,
                            const FailurePredicate& predicate,
                            const ShrinkOptions& options = {});

}  // namespace fadesched::testing
