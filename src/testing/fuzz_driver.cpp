#include "testing/fuzz_driver.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace fadesched::testing {
namespace {

std::string SanitizeForFilename(std::string text) {
  for (char& c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return text;
}

}  // namespace

FuzzReport RunFuzz(const FuzzDriverOptions& options) {
  const ScenarioFuzzer fuzzer(options.seed, options.fuzzer);
  const OracleHarness harness(options.oracle);
  FuzzReport report;
  std::set<std::pair<std::string, std::string>> seen;  // (scheduler, check)

  const auto log = [&](const std::string& message) {
    if (options.log) options.log(message);
  };

  for (std::uint64_t index = 0; index < options.iterations; ++index) {
    if (report.failures.size() >= options.max_failures) break;
    const ScenarioCase scenario = fuzzer.Case(index);
    const std::vector<Violation> violations = harness.CheckCase(scenario);
    ++report.iterations_run;
    if (options.log_every != 0 && (index + 1) % options.log_every == 0) {
      std::ostringstream os;
      os << "fuzz: " << (index + 1) << "/" << options.iterations
         << " cases, " << report.failures.size() << " distinct failure(s)";
      log(os.str());
    }
    if (violations.empty()) continue;
    ++report.cases_with_violations;

    for (const Violation& violation : violations) {
      if (report.failures.size() >= options.max_failures) break;
      if (!seen.insert({violation.scheduler, violation.check}).second) {
        continue;  // already have a reproducer for this failure class
      }
      FuzzFailure failure;
      failure.violation = violation;
      failure.shrunk = violation.scenario;

      if (options.shrink) {
        // Reproduce = "the same (scheduler, check) class fires again".
        // Exceptions count as reproducing only the "exception" class.
        const auto predicate = [&](const ScenarioCase& candidate) {
          std::vector<Violation> found;
          try {
            harness.CheckScheduler(sched::ContractFor(violation.scheduler),
                                   candidate, found);
          } catch (const std::exception&) {
            return violation.check == "exception";
          }
          return std::any_of(found.begin(), found.end(),
                             [&](const Violation& v) {
                               return v.check == violation.check;
                             });
        };
        // The shrinker demands a reproducing input; the violation carries
        // a transformed instance when a metamorphic check fired, and that
        // instance re-checked from scratch may map to a different check
        // id — fall back to the unshrunk scenario in that case.
        if (predicate(violation.scenario)) {
          const ShrinkResult shrunk =
              ShrinkScenario(violation.scenario, predicate, options.shrinker);
          failure.shrunk = shrunk.scenario;
        }
      }
      failure.shrunk_links = failure.shrunk.links.Size();

      if (!options.corpus_dir.empty()) {
        std::ostringstream name;
        name << options.corpus_dir << "/shrunk-seed" << options.seed << "-i"
             << index << "-" << SanitizeForFilename(violation.scheduler)
             << "-" << SanitizeForFilename(violation.check) << ".scenario";
        failure.corpus_path = name.str();
        SaveScenarioFile(failure.shrunk, failure.corpus_path);
      }

      std::ostringstream os;
      os << "fuzz FAILURE [" << violation.scheduler << "/" << violation.check
         << "] at case " << index << ": " << violation.detail << " (shrunk to "
         << failure.shrunk_links << " links"
         << (failure.corpus_path.empty() ? ""
                                         : ", wrote " + failure.corpus_path)
         << ")";
      log(os.str());
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

}  // namespace fadesched::testing
