// Fuzz driver: generate → oracle-check → shrink → persist, the loop
// behind `fadesched_cli fuzz` and the fuzz regression tests.
//
// Violations are deduplicated by (scheduler, check) so one systematic bug
// produces one shrunk reproducer instead of thousands, and the run keeps
// scanning for *different* bugs until max_failures distinct ones exist.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/fuzzer.hpp"
#include "testing/oracle.hpp"
#include "testing/shrinker.hpp"

namespace fadesched::testing {

struct FuzzDriverOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 1000;
  FuzzerOptions fuzzer;
  OracleOptions oracle;
  bool shrink = true;
  ShrinkOptions shrinker;
  /// Directory for shrunk `.scenario` reproducers; empty = don't write.
  std::string corpus_dir;
  /// Stop after this many distinct (scheduler, check) failures.
  std::size_t max_failures = 8;
  /// Progress sink (e.g. stderr); called every `log_every` iterations and
  /// on every failure. Empty = silent.
  std::function<void(const std::string&)> log;
  std::uint64_t log_every = 500;
};

struct FuzzFailure {
  Violation violation;      ///< first occurrence, original instance
  ScenarioCase shrunk;      ///< minimal reproducer (== original if !shrink)
  std::size_t shrunk_links = 0;
  std::string corpus_path;  ///< file written under corpus_dir, if any
};

struct FuzzReport {
  std::uint64_t iterations_run = 0;
  std::uint64_t cases_with_violations = 0;
  std::vector<FuzzFailure> failures;
  [[nodiscard]] bool Ok() const { return failures.empty(); }
};

FuzzReport RunFuzz(const FuzzDriverOptions& options);

}  // namespace fadesched::testing
