// Deterministic, seed-driven scenario fuzzer.
//
// Every fuzzed case is a pure function of (master seed, case index): the
// index is hashed into an independent Xoshiro stream, so case #1371 of a
// million-iteration run replays alone, the shrinker can re-derive the
// exact instance, and adding topologies never perturbs existing cases'
// geometry draws.
//
// Topologies cover the generators the paper uses (uniform) plus the
// adversarial families that historically break SINR schedulers: clustered
// hotspots, near-far knots, colinear (Knapsack-gadget) geometry, exact
// duplicate links, and wide length diversity. Channel parameters sweep
// α ∈ [2.05, 8], log-uniform ε and γ_th, and an ambient-noise regime whose
// noise factor is kept strictly inside the feasibility budget (so "no
// link can ever decode" degenerate instances don't drown the search).
#pragma once

#include <cstdint>
#include <string>

#include "testing/corpus.hpp"

namespace fadesched::testing {

enum class TopologyKind {
  kUniform,
  kClustered,
  kNearFar,
  kColinear,
  kDuplicatePosition,
  kDiverseLength,
};

/// Stable lowercase name ("uniform", "near_far", ...).
const char* TopologyKindName(TopologyKind kind);

struct FuzzerOptions {
  std::size_t min_links = 2;
  std::size_t max_links = 24;
  /// Draw α/ε/γ_th from the wide adversarial ranges; false pins the
  /// paper's defaults (α = 3, ε = 0.01, γ_th = 1).
  bool extreme_params = true;
  /// Allow per-link rates from U[0.5, 4] on a fraction of cases (LDP's
  /// weighted objective); false keeps every λ = 1.
  bool weighted_rates = true;
  /// Allow an ambient-noise regime (N₀ > 0) on a fraction of cases.
  bool with_noise = true;
};

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(std::uint64_t seed, FuzzerOptions options = {});

  /// The index-th case — pure in (seed, index).
  [[nodiscard]] ScenarioCase Case(std::uint64_t index) const;

  /// Case(0), Case(1), ... in sequence.
  ScenarioCase Next() { return Case(next_index_++); }

  [[nodiscard]] std::uint64_t NextIndex() const { return next_index_; }

 private:
  std::uint64_t seed_;
  FuzzerOptions options_;
  std::uint64_t next_index_ = 0;
};

}  // namespace fadesched::testing
