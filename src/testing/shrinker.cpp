#include "testing/shrinker.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace fadesched::testing {
namespace {

ScenarioCase WithLinks(const ScenarioCase& base,
                       const std::vector<net::LinkId>& keep) {
  ScenarioCase candidate;
  candidate.params = base.params;
  candidate.description = base.description;
  candidate.links = base.links.Subset(keep);
  return candidate;
}

}  // namespace

ShrinkResult ShrinkScenario(const ScenarioCase& failing,
                            const FailurePredicate& predicate,
                            const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_links = failing.links.Size();

  std::vector<net::LinkId> kept(failing.links.Size());
  std::iota(kept.begin(), kept.end(), net::LinkId{0});

  const auto reproduces = [&](const std::vector<net::LinkId>& keep) {
    ++result.evaluations;
    return predicate(WithLinks(failing, keep));
  };
  FS_CHECK_MSG(predicate(failing),
               "shrinker input does not reproduce the failure");

  // ddmin over chunks: drop [i, i+chunk) and keep the rest; on success
  // restart at the same granularity, otherwise advance, halving the chunk
  // when a full sweep removes nothing.
  std::size_t chunk = std::max<std::size_t>(1, kept.size() / 2);
  bool out_of_budget = false;
  while (chunk >= 1 && !out_of_budget) {
    bool removed_any = false;
    std::size_t i = 0;
    while (i < kept.size()) {
      if (result.evaluations >= options.max_evaluations) {
        out_of_budget = true;
        break;
      }
      std::vector<net::LinkId> candidate;
      candidate.reserve(kept.size());
      candidate.insert(candidate.end(), kept.begin(),
                       kept.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t end = std::min(i + chunk, kept.size());
      candidate.insert(candidate.end(),
                       kept.begin() + static_cast<std::ptrdiff_t>(end),
                       kept.end());
      if (!candidate.empty() && reproduces(candidate)) {
        kept = std::move(candidate);
        removed_any = true;
        // Keep i in place: the next chunk slid into this position.
      } else {
        i += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk /= 2;
    } else {
      chunk = std::min(chunk, std::max<std::size_t>(1, kept.size() / 2));
    }
  }
  result.minimal = !out_of_budget;

  ScenarioCase best = WithLinks(failing, kept);

  // Best-effort noise removal: most bugs don't need the N₀ dimension.
  if (best.params.noise_power > 0.0 &&
      result.evaluations < options.max_evaluations) {
    ScenarioCase quiet = best;
    quiet.params.noise_power = 0.0;
    ++result.evaluations;
    if (predicate(quiet)) best = std::move(quiet);
  }

  best.description = failing.description + " | shrunk " +
                     std::to_string(result.original_links) + "->" +
                     std::to_string(best.links.Size()) + " links";
  result.scenario = std::move(best);
  return result;
}

}  // namespace fadesched::testing
