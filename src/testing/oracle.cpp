#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "channel/batch_interference.hpp"
#include "channel/feasibility.hpp"
#include "channel/interference.hpp"
#include "mathx/ulp.hpp"
#include "sched/exact.hpp"
#include "testing/metamorphic.hpp"
#include "util/check.hpp"

namespace fadesched::testing {
namespace {

// Relative slack for rate comparisons: summation order differs between
// schedulers and the oracle, so equality is up to accumulated rounding.
constexpr double kRateSlack = 1e-9;

// A schedule member whose budget margin is below this relative band sits
// on the feasibility knife edge; geometric metamorphic checks skip verdict
// and optimum-equality assertions there, because a last-ULP coordinate
// perturbation may legitimately flip the comparison.
constexpr double kKnifeEdgeBand = 1e-7;

bool RateLe(double a, double b) {
  return a <= b + kRateSlack * std::max({std::abs(a), std::abs(b), 1.0});
}

bool RateNear(double a, double b, double band) {
  return std::abs(a - b) <= band * std::max({std::abs(a), std::abs(b), 1.0});
}

bool WellFormed(const net::LinkSet& links, const net::Schedule& schedule,
                std::string& why) {
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    if (schedule[k] >= links.Size()) {
      why = "id " + std::to_string(schedule[k]) + " out of range";
      return false;
    }
    if (k > 0 && schedule[k] <= schedule[k - 1]) {
      why = "ids not strictly ascending at position " + std::to_string(k);
      return false;
    }
  }
  return true;
}

/// Exact-solver cross-validation state, computed once per instance.
struct ExactReference {
  double optimum = 0.0;
  net::Schedule schedule;
  /// Smallest relative budget margin over the optimum's members; a tiny
  /// margin marks a knife-edge instance (see kKnifeEdgeBand).
  double min_margin = std::numeric_limits<double>::infinity();
};

/// Per-instance shared state: reference calculator, lazily built engine
/// backends, lazily computed exact optimum.
class CaseContext {
 public:
  CaseContext(const ScenarioCase& scenario, const OracleOptions& options)
      : scenario_(scenario), options_(options),
        calc_(scenario.links, scenario.params) {}

  const ScenarioCase& Scenario() const { return scenario_; }
  const channel::InterferenceCalculator& Calc() const { return calc_; }

  const std::vector<channel::InterferenceEngine>& Engines() {
    if (engines_.empty()) {
      for (channel::FactorBackend backend :
           {channel::FactorBackend::kCalculator,
            channel::FactorBackend::kTables,
            channel::FactorBackend::kMatrix}) {
        channel::EngineOptions engine_options;
        engine_options.backend = backend;
        engines_.emplace_back(scenario_.links, scenario_.params,
                              engine_options);
      }
    }
    return engines_;
  }

  /// nullopt when the instance exceeds the exact cap.
  const ExactReference* Exact() {
    if (scenario_.links.Size() > options_.exact_cap) return nullptr;
    if (!exact_.has_value()) {
      const sched::BranchAndBoundScheduler solver;
      const sched::ScheduleResult result =
          solver.Schedule(scenario_.links, scenario_.params);
      ExactReference ref;
      ref.optimum = result.claimed_rate;
      ref.schedule = result.schedule;
      const double budget = scenario_.params.FeasibilityBudget();
      for (const channel::LinkFeasibility& lf :
           channel::AnalyzeSchedule(calc_, result.schedule)) {
        const double margin = budget - (lf.noise_factor + lf.sum_factor);
        ref.min_margin = std::min(ref.min_margin,
                                  margin / std::max(budget, 1e-300));
      }
      exact_ = std::move(ref);
    }
    return &*exact_;
  }

 private:
  const ScenarioCase& scenario_;
  const OracleOptions& options_;
  channel::InterferenceCalculator calc_;
  std::vector<channel::InterferenceEngine> engines_;
  std::optional<ExactReference> exact_;
};

}  // namespace

OracleHarness::OracleHarness(OracleOptions options)
    : options_(std::move(options)) {}

namespace {

class SchedulerChecker {
 public:
  SchedulerChecker(const OracleOptions& options,
                   const sched::SchedulerContract& contract,
                   CaseContext& context, std::vector<Violation>& out)
      : options_(options), contract_(contract), context_(context), out_(out) {}

  void Run() {
    const ScenarioCase& scenario = context_.Scenario();
    if (contract_.max_links != 0 &&
        scenario.links.Size() > contract_.max_links) {
      return;  // the scheduler refuses instances this large by contract
    }
    if (contract_.fuzz_cap != 0 && scenario.links.Size() > contract_.fuzz_cap) {
      return;  // too slow to re-run ~12x per instance; see SchedulerContract
    }
    sched::ScheduleResult base;
    try {
      base = MakeAndRun(scenario);
    } catch (const std::exception& e) {
      Report("exception", std::string("Schedule() threw: ") + e.what(),
             scenario);
      return;
    }
    try {
      CheckBasics(base, scenario, "");
      CheckDeterminism(base, scenario);
      if (options_.check_backends) CheckBackends(base.schedule);
      CheckExact(base, scenario);
      if (options_.metamorphic) CheckMetamorphic(base);
    } catch (const std::exception& e) {
      // A check infrastructure throw (e.g. an engine precondition) is a
      // finding too — degenerate geometry the model cannot represent.
      Report("exception", std::string("oracle check threw: ") + e.what(),
             scenario);
    }
  }

 private:
  sched::ScheduleResult MakeAndRun(const ScenarioCase& scenario) const {
    const sched::SchedulerPtr scheduler =
        options_.factory ? options_.factory(contract_.name)
                         : sched::MakeScheduler(contract_.name);
    return scheduler->Schedule(scenario.links, scenario.params);
  }

  void Report(const std::string& check, const std::string& detail,
              const ScenarioCase& scenario) {
    Violation v;
    v.scheduler = contract_.name;
    v.check = check;
    v.detail = detail + " [" + scenario.description + "]";
    v.scenario = scenario;
    out_.push_back(std::move(v));
  }

  /// Contract checks that apply to any run (base or transformed):
  /// well-formedness, claimed-rate accounting, Corollary 3.1 feasibility.
  /// `tag` suffixes the check id for transformed runs.
  bool CheckBasics(const sched::ScheduleResult& result,
                   const ScenarioCase& scenario, const std::string& tag) {
    bool ok = true;
    std::string why;
    if (!WellFormed(scenario.links, result.schedule, why)) {
      Report("well_formed" + tag, why, scenario);
      return false;  // downstream checks would index out of range
    }
    const double total = scenario.links.TotalRate(result.schedule);
    if (!RateNear(result.claimed_rate, total, kRateSlack)) {
      std::ostringstream os;
      os << "claimed_rate " << result.claimed_rate << " != schedule rate "
         << total;
      Report("well_formed" + tag, os.str(), scenario);
      ok = false;
    }
    if (contract_.fading_feasible && !result.schedule.empty()) {
      const channel::InterferenceCalculator calc(scenario.links,
                                                 scenario.params);
      const double budget = scenario.params.FeasibilityBudget();
      for (const channel::LinkFeasibility& lf :
           channel::AnalyzeSchedule(calc, result.schedule)) {
        if (!lf.informed) {
          std::ostringstream os;
          os << "link " << lf.link << " not informed: noise+sum = "
             << lf.noise_factor + lf.sum_factor << " > budget " << budget;
          Report("feasibility" + tag, os.str(), scenario);
          ok = false;
        }
      }
    }
    return ok;
  }

  void CheckDeterminism(const sched::ScheduleResult& base,
                        const ScenarioCase& scenario) {
    const sched::ScheduleResult again = MakeAndRun(scenario);
    if (again.schedule != base.schedule) {
      Report("determinism",
             "two runs from fresh instances returned different schedules (" +
                 std::to_string(base.schedule.size()) + " vs " +
                 std::to_string(again.schedule.size()) + " links)",
             scenario);
    }
  }

  void CheckBackends(const net::Schedule& schedule) {
    if (schedule.empty()) return;
    const ScenarioCase& scenario = context_.Scenario();
    const auto& engines = context_.Engines();
    for (net::LinkId victim : schedule) {
      const double ref = context_.Calc().SumFactor(schedule, victim);
      const double ref_noise = context_.Calc().NoiseFactor(victim);
      for (const channel::InterferenceEngine& engine : engines) {
        const double sum = engine.SumFactor(schedule, victim);
        const std::uint64_t sum_ulp = mathx::UlpDistance(sum, ref);
        const std::uint64_t noise_ulp =
            mathx::UlpDistance(engine.NoiseFactor(victim), ref_noise);
        if (sum_ulp > options_.backend_max_ulp ||
            noise_ulp > options_.backend_max_ulp) {
          std::ostringstream os;
          os << "backend " << static_cast<int>(engine.Backend())
             << " diverges from reference on victim " << victim << ": sum "
             << sum << " vs " << ref << " (" << sum_ulp << " ULP), noise "
             << noise_ulp << " ULP";
          Report("backend_ulp", os.str(), scenario);
        }
      }
    }
  }

  void CheckExact(const sched::ScheduleResult& base,
                  const ScenarioCase& scenario) {
    const ExactReference* exact = context_.Exact();
    if (exact == nullptr) return;
    // The informed subset of ANY schedule is itself feasible (dropping
    // non-informed members only removes interference), so its rate can
    // never beat the optimum.
    const double informed =
        channel::InformedRate(context_.Calc(), base.schedule);
    if (!RateLe(informed, exact->optimum)) {
      std::ostringstream os;
      os << "informed rate " << informed << " exceeds exact optimum "
         << exact->optimum;
      Report("exact_upper_bound", os.str(), scenario);
    }
    if (contract_.fading_feasible &&
        !RateLe(base.claimed_rate, exact->optimum)) {
      std::ostringstream os;
      os << "claimed rate " << base.claimed_rate
         << " of a feasible schedule exceeds exact optimum "
         << exact->optimum;
      Report("exact_upper_bound", os.str(), scenario);
    }
    if (contract_.exact &&
        !RateNear(base.claimed_rate, exact->optimum, kRateSlack)) {
      std::ostringstream os;
      os << "exact solver returned " << base.claimed_rate
         << " but the branch-and-bound optimum is " << exact->optimum;
      Report("exact_mismatch", os.str(), scenario);
    }
    if (contract_.nonempty_when_feasible && base.schedule.empty() &&
        exact->optimum > 0.0) {
      Report("exact_nonempty",
             "returned an empty schedule although the optimum is " +
                 std::to_string(exact->optimum),
             scenario);
    }
  }

  void CheckMetamorphic(const sched::ScheduleResult& base) {
    const ScenarioCase& scenario = context_.Scenario();
    const TransformedCase transforms[] = {
        PermuteLinks(scenario, 0x9e3779b9 + scenario.links.Size()),
        RigidMotion(scenario, 0.6, 17.0, -9.0),
        UniformScale(scenario, 2.0),
        RelaxEpsilon(scenario, 4.0),
        TightenGamma(scenario, 0.5),
    };
    for (const TransformedCase& t : transforms) {
      CheckMappedSchedule(base, t);
      CheckTransformedRun(base, t);
    }
  }

  /// Fixed-schedule invariance: the base run's schedule, mapped through
  /// the relabeling, must keep its per-victim sums (within the declared
  /// band) and its feasibility verdict (exactly for relaxations, outside
  /// the knife-edge band otherwise).
  void CheckMappedSchedule(const sched::ScheduleResult& base,
                           const TransformedCase& t) {
    if (base.schedule.empty()) return;
    const ScenarioCase& scenario = context_.Scenario();
    const channel::InterferenceCalculator calc_t(t.scenario.links,
                                                 t.scenario.params);
    const net::Schedule mapped = MapSchedule(base.schedule, t.relabel);
    const double budget_b = scenario.params.FeasibilityBudget();
    const double budget_t = t.scenario.params.FeasibilityBudget();
    for (net::LinkId victim : base.schedule) {
      const net::LinkId victim_t = t.relabel[victim];
      const double total_b = context_.Calc().NoiseFactor(victim) +
                             context_.Calc().SumFactor(base.schedule, victim);
      const double total_t =
          calc_t.NoiseFactor(victim_t) + calc_t.SumFactor(mapped, victim_t);
      if (t.relaxation) {
        // Factors shrink (γ_th↓) or stay put (ε↑) while the budget does
        // the opposite: a feasible member must stay feasible, exactly.
        if (budget_b - total_b >= 0.0 && budget_t - total_t < 0.0) {
          std::ostringstream os;
          os << t.name << ": victim " << victim << " lost feasibility under "
             << "a relaxation (margin " << budget_b - total_b << " -> "
             << budget_t - total_t << ")";
          Report(std::string("metamorphic_") + t.name, os.str(), t.scenario);
        }
        continue;
      }
      const bool close =
          t.bitwise_invariant
              ? mathx::UlpDistance(total_b, total_t) <= options_.backend_max_ulp
              : RateNear(total_b, total_t, kRateSlack);
      if (!close) {
        std::ostringstream os;
        os << t.name << ": victim " << victim << " interference sum moved "
           << total_b << " -> " << total_t;
        Report(std::string("metamorphic_") + t.name, os.str(), t.scenario);
        continue;
      }
      const double margin_b = budget_b - total_b;
      if (std::abs(margin_b) >
              kKnifeEdgeBand * std::max(budget_b, 1.0) &&
          (margin_b >= 0.0) != (budget_t - total_t >= 0.0)) {
        std::ostringstream os;
        os << t.name << ": victim " << victim
           << " feasibility verdict flipped (margin " << margin_b << ")";
        Report(std::string("metamorphic_") + t.name, os.str(), t.scenario);
      }
    }
  }

  /// Re-run the scheduler on the transformed instance: contract checks
  /// always, objective relations only where the theory proves them (the
  /// exact solvers; heuristic tie-breaking is id- and coordinate-
  /// sensitive by design).
  void CheckTransformedRun(const sched::ScheduleResult& base,
                           const TransformedCase& t) {
    sched::ScheduleResult transformed;
    try {
      transformed = MakeAndRun(t.scenario);
    } catch (const std::exception& e) {
      Report(std::string("metamorphic_") + t.name,
             std::string("Schedule() threw on transformed instance: ") +
                 e.what(),
             t.scenario);
      return;
    }
    const std::string tag = std::string("_") + t.name;
    if (!CheckBasics(transformed, t.scenario, tag)) return;
    if (!contract_.exact ||
        context_.Scenario().links.Size() > options_.exact_cap) {
      return;
    }
    const ExactReference* exact = context_.Exact();
    if (exact == nullptr || exact->min_margin < kKnifeEdgeBand) {
      return;  // knife-edge optimum: a last-ULP nudge may change OPT
    }
    if (t.relaxation) {
      if (!RateLe(base.claimed_rate, transformed.claimed_rate)) {
        std::ostringstream os;
        os << t.name << ": optimum decreased under a relaxation ("
           << base.claimed_rate << " -> " << transformed.claimed_rate << ")";
        Report(std::string("metamorphic_") + t.name, os.str(), t.scenario);
      }
    } else if (!RateNear(base.claimed_rate, transformed.claimed_rate,
                         kKnifeEdgeBand)) {
      std::ostringstream os;
      os << t.name << ": optimum moved under an invariant transform ("
         << base.claimed_rate << " -> " << transformed.claimed_rate << ")";
      Report(std::string("metamorphic_") + t.name, os.str(), t.scenario);
    }
  }

  const OracleOptions& options_;
  const sched::SchedulerContract& contract_;
  CaseContext& context_;
  std::vector<Violation>& out_;
};

}  // namespace

std::vector<Violation> OracleHarness::CheckCase(
    const ScenarioCase& scenario) const {
  std::vector<Violation> out;
  CaseContext context(scenario, options_);
  for (const sched::SchedulerContract& contract :
       sched::RegisteredSchedulers()) {
    if (!options_.schedulers.empty() &&
        std::find(options_.schedulers.begin(), options_.schedulers.end(),
                  contract.name) == options_.schedulers.end()) {
      continue;
    }
    SchedulerChecker(options_, contract, context, out).Run();
  }
  return out;
}

void OracleHarness::CheckScheduler(const sched::SchedulerContract& contract,
                                   const ScenarioCase& scenario,
                                   std::vector<Violation>& out) const {
  CaseContext context(scenario, options_);
  SchedulerChecker(options_, contract, context, out).Run();
}

}  // namespace fadesched::testing
