#include "testing/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>

#include "net/scenario.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "util/check.hpp"

namespace fadesched::testing {
namespace {

constexpr TopologyKind kAllKinds[] = {
    TopologyKind::kUniform,          TopologyKind::kClustered,
    TopologyKind::kNearFar,          TopologyKind::kColinear,
    TopologyKind::kDuplicatePosition, TopologyKind::kDiverseLength,
};

/// Log-uniform draw in [lo, hi] — equal mass per decade, which is how the
/// interesting ε and γ_th regimes are distributed.
double LogUniform(rng::Xoshiro256& gen, double lo, double hi) {
  return std::exp(rng::UniformRange(gen, std::log(lo), std::log(hi)));
}

}  // namespace

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kUniform: return "uniform";
    case TopologyKind::kClustered: return "clustered";
    case TopologyKind::kNearFar: return "near_far";
    case TopologyKind::kColinear: return "colinear";
    case TopologyKind::kDuplicatePosition: return "duplicate_position";
    case TopologyKind::kDiverseLength: return "diverse_length";
  }
  return "unknown";
}

ScenarioFuzzer::ScenarioFuzzer(std::uint64_t seed, FuzzerOptions options)
    : seed_(seed), options_(options) {
  FS_CHECK(options_.min_links >= 1);
  FS_CHECK(options_.max_links >= options_.min_links);
}

ScenarioCase ScenarioFuzzer::Case(std::uint64_t index) const {
  // Hash (seed, index) into an independent stream: two SplitMix64 rounds
  // decorrelate adjacent indices before the xoshiro state expansion.
  rng::SplitMix64 mix(seed_ ^ (0x517cc1b727220a95ULL * (index + 1)));
  mix.Next();
  rng::Xoshiro256 gen(mix.Next());

  const auto kind = kAllKinds[rng::UniformIndex(gen, std::size(kAllKinds))];
  const auto num_links =
      options_.min_links +
      rng::UniformIndex(gen, options_.max_links - options_.min_links + 1);
  // Region scale sweeps dense (interference-bound) to sparse layouts.
  const double region = LogUniform(gen, 60.0, 1500.0);

  ScenarioCase result;
  if (options_.extreme_params) {
    result.params.alpha = rng::UniformRange(gen, 2.05, 8.0);
    result.params.epsilon = LogUniform(gen, 1e-5, 0.5);
    result.params.gamma_th = LogUniform(gen, 0.05, 20.0);
    result.params.tx_power = LogUniform(gen, 0.1, 10.0);
  }

  const bool weighted =
      options_.weighted_rates && rng::UniformUnit(gen) < 0.25;
  switch (kind) {
    case TopologyKind::kUniform: {
      if (weighted) {
        net::WeightedScenarioParams p;
        p.base.region_size = region;
        result.links = net::MakeWeightedScenario(num_links, p, gen);
      } else {
        net::UniformScenarioParams p;
        p.region_size = region;
        result.links = net::MakeUniformScenario(num_links, p, gen);
      }
      break;
    }
    case TopologyKind::kClustered: {
      net::ClusteredScenarioParams p;
      p.region_size = region;
      p.num_clusters = 1 + rng::UniformIndex(gen, 4);
      result.links = net::MakeClusteredScenario(num_links, p, gen);
      break;
    }
    case TopologyKind::kNearFar: {
      net::NearFarScenarioParams p;
      p.region_size = region;
      p.near_fraction = rng::UniformRange(gen, 0.2, 0.8);
      result.links = net::MakeNearFarScenario(num_links, p, gen);
      break;
    }
    case TopologyKind::kColinear: {
      net::ColinearScenarioParams p;
      p.region_size = region;
      result.links = net::MakeColinearScenario(num_links, p, gen);
      break;
    }
    case TopologyKind::kDuplicatePosition: {
      net::DuplicatePositionScenarioParams p;
      p.base.region_size = region;
      p.duplicate_fraction = rng::UniformRange(gen, 0.1, 0.5);
      result.links = net::MakeDuplicatePositionScenario(num_links, p, gen);
      break;
    }
    case TopologyKind::kDiverseLength: {
      net::DiverseLengthScenarioParams p;
      p.region_size = std::max(region, 500.0);
      p.length_octaves = 4 + rng::UniformIndex(gen, 5);
      result.links = net::MakeDiverseLengthScenario(num_links, p, gen);
      break;
    }
  }

  if (options_.with_noise && rng::UniformUnit(gen) < 0.25) {
    // Scale N₀ so the *longest* link's noise factor γ_th·N₀·d^α/P stays at
    // most half the budget γ_ε: noisy regimes stress the noise paths
    // without making every instance trivially infeasible.
    const double d = result.links.MaxLength();
    const double ceiling = 0.5 * result.params.GammaEpsilon() *
                           result.params.tx_power /
                           (result.params.gamma_th * std::pow(d, result.params.alpha));
    result.params.noise_power = ceiling * rng::UniformUnit(gen);
  }
  result.params.Validate();

  std::ostringstream os;
  os << "fuzz seed=" << seed_ << " index=" << index << " topology="
     << TopologyKindName(kind) << " n=" << result.links.Size();
  result.description = os.str();
  return result;
}

}  // namespace fadesched::testing
