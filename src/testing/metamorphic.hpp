// Metamorphic transformations of a Fading-R-LS instance, each paired with
// a *proved* relation on feasibility/objective that the oracle harness
// asserts:
//
//   * Relabeling π        — interference factors are per-pair, so the
//                           factor multiset is invariant; any schedule S
//                           feasible before is feasible as π(S) after.
//   * Rigid motion        — f_ij depends only on distances, which a
//                           rotation + translation preserves (up to
//                           last-ULP coordinate rounding).
//   * Uniform scaling s   — with the α-consistent power rescale
//                           P → P·s^α every ratio (d_jj/d_ij)^α, every
//                           mean power P·d^{-α}, and every noise factor
//                           is invariant.
//   * ε relaxation        — γ_ε = ln(1/(1−ε)) grows with ε while every
//                           f_ij is unchanged: feasible schedules stay
//                           feasible and the optimum cannot decrease.
//   * γ_th tightening (↓) — every f_ij = ln(1+γ_th·a) shrinks while γ_ε
//                           is unchanged: feasible schedules stay
//                           feasible and the optimum cannot decrease.
#pragma once

#include <cstdint>
#include <vector>

#include "testing/corpus.hpp"

namespace fadesched::testing {

/// A transformed instance plus the id mapping back to the original.
struct TransformedCase {
  ScenarioCase scenario;
  /// new_id[old_id]; identity for the geometric/parameter transforms.
  std::vector<net::LinkId> relabel;
  /// True when the transform preserves every interference factor and
  /// budget bit-for-bit (relabeling); geometric transforms perturb
  /// coordinates in the last ULP and need a tolerance band instead.
  bool bitwise_invariant = false;
  /// True when the transform can only enlarge the feasible set (ε↑, γ_th↓):
  /// feasibility of a fixed schedule must be preserved exactly, and any
  /// optimum is monotone non-decreasing.
  bool relaxation = false;
  const char* name = "";
};

/// π drawn from the given generator seed; relabel[i] is link i's new id.
TransformedCase PermuteLinks(const ScenarioCase& base, std::uint64_t seed);

/// Rotation by `angle` about the bounding-box centre, then translation.
TransformedCase RigidMotion(const ScenarioCase& base, double angle,
                            double dx, double dy);

/// All coordinates ×s, transmit power ×s^α (both the channel default and
/// any per-link override), noise unchanged — the α-consistent rescale.
TransformedCase UniformScale(const ScenarioCase& base, double s);

/// ε → min(ε·factor, 0.999…) with factor > 1.
TransformedCase RelaxEpsilon(const ScenarioCase& base, double factor);

/// γ_th → γ_th·factor with factor < 1.
TransformedCase TightenGamma(const ScenarioCase& base, double factor);

/// Maps a schedule through `relabel` and re-sorts ascending.
net::Schedule MapSchedule(const net::Schedule& schedule,
                          const std::vector<net::LinkId>& relabel);

}  // namespace fadesched::testing
