// Replayable `.scenario` corpus files: one fuzzed (or shrunk) instance —
// channel parameters plus the full link set — in a single text file, so a
// violation found by the fuzzer is a checked-in regression the moment the
// shrinker writes it.
//
// Format (line-oriented header, then the scenario_io CSV link block):
//
//   # fadesched scenario v1
//   # description: <free-form provenance, one line>
//   alpha = 3
//   epsilon = 0.01
//   gamma_th = 1
//   tx_power = 1
//   noise_power = 0
//   links:
//   sx,sy,rx,ry,rate
//   ...
//
// Doubles are written with 17 significant digits so a shrunk boundary
// case replays bit-identically. Parse errors name the 1-based file line
// (header) or scenario row (link block); the corpus loader test pins
// those messages.
#pragma once

#include <string>

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::testing {

struct ScenarioCase {
  net::LinkSet links;
  channel::ChannelParams params;
  std::string description;  ///< one-line provenance (seed, topology, check)
};

/// Serialize to the `.scenario` text format.
std::string FormatScenario(const ScenarioCase& scenario);

/// Parse the `.scenario` text format; throws CheckFailure with the
/// offending 1-based line (header) or row (link block) on malformed input.
ScenarioCase ParseScenario(const std::string& text);

/// File round-trips. Saving is atomic (temp → fsync → rename); loading
/// throws CheckFailure / HarnessError on I/O or parse failure.
void SaveScenarioFile(const ScenarioCase& scenario, const std::string& path);
ScenarioCase LoadScenarioFile(const std::string& path);

}  // namespace fadesched::testing
