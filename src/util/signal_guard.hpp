// Cooperative SIGINT/SIGTERM handling for long-running sweeps.
//
// The handler only flips an atomic flag; the sweep driver polls it
// between seeds, checkpoints, flushes partial CSVs atomically, and exits
// with the distinct "interrupted" status. A second signal while the flag
// is already set restores the default disposition, so a stuck shutdown
// can still be killed the usual way.
#pragma once

namespace fadesched::util {

/// RAII: installs SIGINT/SIGTERM handlers on construction and restores
/// the previous dispositions on destruction. Nestable; only the
/// outermost guard installs/restores.
class ScopedSignalGuard {
 public:
  ScopedSignalGuard();
  ~ScopedSignalGuard();

  ScopedSignalGuard(const ScopedSignalGuard&) = delete;
  ScopedSignalGuard& operator=(const ScopedSignalGuard&) = delete;
};

/// True once SIGINT or SIGTERM has been received (under an active guard).
bool ShutdownRequested();

/// Clears the flag (tests; or a driver that handled one interruption and
/// wants to observe the next).
void ClearShutdownRequest();

/// For tests and drills: flips the same flag the handler would.
void RequestShutdown();

}  // namespace fadesched::util
