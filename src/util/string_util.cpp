#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fadesched::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t first = 0;
  while (first < text.size() &&
         std::isspace(static_cast<unsigned char>(text[first]))) {
    ++first;
  }
  std::size_t last = text.size();
  while (last > first &&
         std::isspace(static_cast<unsigned char>(text[last - 1]))) {
    --last;
  }
  return text.substr(first, last - first);
}

std::optional<long long> ParseInt(std::string_view text) {
  text = Trim(text);
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  double value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string FormatDouble(double value, int max_precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace fadesched::util
