// Process-wide cache of huge allocations. glibc serves blocks this large
// straight from mmap and hands them back to the kernel on free, so every
// rebuild of an O(N²) matrix pays the page-fault cost of touching
// hundreds of MB of fresh zero pages again (~250 ms for the 512 MB
// N=8000 factor matrix on this host — more than the SIMD fill itself).
// Recycling the last few freed blocks keeps the pages resident: a rebuild
// of the same or smaller size skips the fault storm entirely.
#pragma once

#include <cstddef>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

namespace fadesched::util {

/// Bounded free-cache for over-aligned blocks of at least kMinBytes.
///
/// At most kMaxCachedBlocks blocks / kMaxCachedBytes total are parked;
/// anything beyond that is released to the OS immediately, and a cached
/// block is only handed out again when it wastes less than 4× the
/// requested size. The cache is disabled under AddressSanitizer (reuse
/// defeats use-after-free poisoning) and by FADESCHED_NO_RECYCLE=1.
class PageRecycler {
 public:
  static constexpr std::size_t kMinBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMaxCachedBlocks = 2;
  static constexpr std::size_t kMaxCachedBytes = std::size_t{2} << 30;

  /// The process-wide instance (leaked on purpose: buffers owned by
  /// statics may release after ordinary static destructors have run).
  static PageRecycler& Instance();

  /// An `alignment`-aligned block of at least `bytes`, recycled when a
  /// suitable cached block exists. Pair every call with Release().
  [[nodiscard]] void* Acquire(std::size_t bytes, std::size_t alignment);

  /// Returns a block from Acquire() to the cache (or the OS).
  void Release(void* block, std::size_t alignment) noexcept;

  /// False when caching is compiled/configured out (AddressSanitizer or
  /// FADESCHED_NO_RECYCLE=1): Acquire/Release degrade to plain new/delete.
  [[nodiscard]] bool Enabled() const { return enabled_; }

  /// Bytes currently parked in the free cache (test hook).
  [[nodiscard]] std::size_t CachedBytes();

  /// Drops every cached block back to the OS.
  void Trim();

  struct Block {
    void* ptr = nullptr;
    std::size_t bytes = 0;
    std::size_t alignment = 0;
  };

 private:
  PageRecycler();

  bool enabled_ = true;
  std::mutex mutex_;
  std::vector<Block> free_;
  // Capacity of every live recycled block: a reused block may be larger
  // than the size the caller asked for, so Release() cannot trust the
  // container's own byte count.
  std::unordered_map<void*, Block> live_;
};

/// Allocator for huge SoA/matrix buffers: over-aligned like
/// util::AlignedAllocator, backed by the PageRecycler for blocks of at
/// least PageRecycler::kMinBytes, and — deliberately — default-
/// initializing in construct(). For trivially-constructible element
/// types, `resize(n)` therefore leaves new elements UNINITIALIZED: an
/// O(N²) buffer whose every entry is about to be overwritten must not be
/// zero-filled first (that is a full extra write pass over the working
/// set). Use `assign(n, value)` when a background value is required.
template <class T, std::size_t Alignment>
struct RecyclingAlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  RecyclingAlignedAllocator() noexcept = default;
  template <class U>
  RecyclingAlignedAllocator(
      const RecyclingAlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = RecyclingAlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes >= PageRecycler::kMinBytes) {
      return static_cast<T*>(PageRecycler::Instance().Acquire(bytes, Alignment));
    }
    return static_cast<T*>(::operator new(bytes, std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n * sizeof(T) >= PageRecycler::kMinBytes) {
      PageRecycler::Instance().Release(p, Alignment);
      return;
    }
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(static_cast<Args&&>(args)...);
  }
  template <class U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;  // default-init: trivial T stays raw
  }

  friend bool operator==(const RecyclingAlignedAllocator&,
                         const RecyclingAlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const RecyclingAlignedAllocator&,
                         const RecyclingAlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace fadesched::util
