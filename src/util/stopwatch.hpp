// Monotonic wall-clock stopwatch used by benches and the experiment runner.
#pragma once

#include <chrono>

namespace fadesched::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch; subsequent readings measure from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double Milliseconds() const { return Seconds() * 1e3; }
  [[nodiscard]] double Microseconds() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fadesched::util
