#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fadesched::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelChunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body) {
  if (count == 0) return;
  const std::size_t num_chunks =
      std::min<std::size_t>(pool.NumThreads(), count);
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  const std::size_t base = count / num_chunks;
  const std::size_t extra = count % num_chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(pool.Submit([&body, c, begin, end] { body(c, begin, end); }));
    begin = end;
  }
  FS_CHECK(begin == count);
  for (auto& f : futures) f.get();  // rethrows the first failure
}

}  // namespace fadesched::util
