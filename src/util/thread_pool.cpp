#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fadesched::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::string TaskReport::Summary() const {
  std::string text = std::to_string(failures.size()) + "/" +
                     std::to_string(completed + failures.size()) +
                     " tasks failed";
  if (!failures.empty()) text += ": " + failures.front().message;
  return text;
}

TaskReport WaitAll(std::vector<std::future<void>>& futures) {
  TaskReport report;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      futures[i].get();
      ++report.completed;
    } catch (const std::exception& e) {
      if (!report.first_error) report.first_error = std::current_exception();
      report.failures.push_back({i, e.what()});
    } catch (...) {
      if (!report.first_error) report.first_error = std::current_exception();
      report.failures.push_back({i, "(non-std exception)"});
    }
  }
  futures.clear();
  return report;
}

void ParallelChunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body) {
  if (count == 0) return;
  const std::size_t num_chunks =
      std::min<std::size_t>(pool.NumThreads(), count);
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  const std::size_t base = count / num_chunks;
  const std::size_t extra = count % num_chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(pool.Submit([&body, c, begin, end] { body(c, begin, end); }));
    begin = end;
  }
  FS_CHECK(begin == count);
  // Draining every future before throwing keeps `body`'s captures alive
  // until no worker can still touch them.
  WaitAll(futures).Rethrow();
}

}  // namespace fadesched::util
