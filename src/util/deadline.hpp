// Monotonic watchdog deadline for cooperative cancellation.
//
// C++ cannot preempt a compute thread, so deadlines are enforced at
// checkpoints the workload already passes (per trial chunk, between
// schedulers). A default-constructed Deadline is disabled and never
// expires, so hot loops can check unconditionally.
#pragma once

#include <chrono>
#include <limits>

namespace fadesched::util {

class Deadline {
 public:
  /// Disabled deadline: Expired() is always false.
  Deadline() = default;

  /// Deadline `seconds` from now on the steady clock. Non-positive
  /// seconds yields a disabled deadline (convenient for "0 = no limit"
  /// flags).
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.enabled_ = true;
      d.due_ = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds));
    }
    return d;
  }

  [[nodiscard]] bool Enabled() const { return enabled_; }

  [[nodiscard]] bool Expired() const {
    return enabled_ && std::chrono::steady_clock::now() >= due_;
  }

  /// Seconds until expiry; +inf when disabled, clamped at 0 when past due.
  [[nodiscard]] double RemainingSeconds() const {
    if (!enabled_) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double>(
        due_ - std::chrono::steady_clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point due_{};
};

}  // namespace fadesched::util
