#include "util/cli.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

long long& CliParser::AddInt(const std::string& name, long long default_value,
                             const std::string& help) {
  FS_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  Flag flag;
  flag.kind = Kind::kInt;
  flag.help = help;
  flag.int_value = default_value;
  flag.default_repr = std::to_string(default_value);
  order_.push_back(name);
  return flags_.emplace(name, std::move(flag)).first->second.int_value;
}

double& CliParser::AddDouble(const std::string& name, double default_value,
                             const std::string& help) {
  FS_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flag.default_repr = FormatDouble(default_value);
  order_.push_back(name);
  return flags_.emplace(name, std::move(flag)).first->second.double_value;
}

std::string& CliParser::AddString(const std::string& name,
                                  std::string default_value,
                                  const std::string& help) {
  FS_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.string_value = std::move(default_value);
  flag.default_repr = flag.string_value;
  order_.push_back(name);
  return flags_.emplace(name, std::move(flag)).first->second.string_value;
}

bool& CliParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  FS_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flag.default_repr = default_value ? "true" : "false";
  order_.push_back(name);
  return flags_.emplace(name, std::move(flag)).first->second.bool_value;
}

bool CliParser::Assign(Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Kind::kInt: {
      auto parsed = ParseInt(value);
      if (!parsed) return false;
      flag.int_value = *parsed;
      return true;
    }
    case Kind::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed) return false;
      flag.double_value = *parsed;
      return true;
    }
    case Kind::kString:
      flag.string_value = value;
      return true;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
        return true;
      }
      if (value == "false" || value == "0") {
        flag.bool_value = false;
        return true;
      }
      return false;
  }
  return false;
}

bool CliParser::Parse(int argc, const char* const* argv) {
  status_ = ParseStatus::kOk;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      status_ = ParseStatus::kHelp;
      return false;
    }
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), Usage().c_str());
      status_ = ParseStatus::kError;
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   Usage().c_str());
      status_ = ParseStatus::kError;
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n%s", name.c_str(),
                     Usage().c_str());
        status_ = ParseStatus::kError;
        return false;
      }
      value = argv[++i];
    }
    if (!Assign(flag, value)) {
      std::fprintf(stderr, "malformed value for --%s: '%s'\n%s", name.c_str(),
                   value.c_str(), Usage().c_str());
      status_ = ParseStatus::kError;
      return false;
    }
  }
  return true;
}

int CliParser::UsageExitCode() const {
  return status_ == ParseStatus::kHelp ? 0 : 2;
}

std::string CliParser::Usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default: " << flag.default_repr << ")  "
       << flag.help << '\n';
  }
  return os.str();
}

}  // namespace fadesched::util
