// Structured error taxonomy for the experiment harness.
//
// Long-running sweeps need to tell three failure classes apart: transient
// errors (I/O hiccups, OOM — worth retrying), timeouts (a watchdog
// deadline fired — record and move on), and fatal errors (programming
// bugs, corrupted inputs — abort loudly). A fourth kind, interrupted,
// marks cooperative SIGINT/SIGTERM shutdown so callers can exit with a
// distinct status after checkpointing.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace fadesched::util {

enum class ErrorKind {
  kTransient,    ///< retryable: I/O failure, allocation pressure
  kTimeout,      ///< a watchdog deadline expired
  kInterrupted,  ///< cooperative shutdown (SIGINT/SIGTERM)
  kFatal,        ///< programming error or corrupted state; do not retry
};

/// Stable lowercase name ("transient", "timeout", ...).
const char* ErrorKindName(ErrorKind kind);

/// Exception carrying its taxonomy kind, thrown throughout the harness.
class HarnessError : public std::runtime_error {
 public:
  HarnessError(ErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Convenience constructors so call sites read as intent.
inline HarnessError TransientError(const std::string& what) {
  return HarnessError(ErrorKind::kTransient, what);
}
inline HarnessError TimeoutError(const std::string& what) {
  return HarnessError(ErrorKind::kTimeout, what);
}
inline HarnessError InterruptedError(const std::string& what) {
  return HarnessError(ErrorKind::kInterrupted, what);
}
inline HarnessError FatalError(const std::string& what) {
  return HarnessError(ErrorKind::kFatal, what);
}

/// Classifies an in-flight exception for the retry policy: HarnessError
/// reports its own kind; std::bad_alloc is transient (memory pressure may
/// clear); std::logic_error (including CheckFailure) is a programming
/// error, hence fatal; anything else defaults to transient so one odd
/// seed cannot abort a sweep.
ErrorKind ClassifyException(const std::exception_ptr& error);

/// Process exit codes shared by the CLI and every bench binary.
/// 0 success, 1 runtime failure, 2 usage error, 3 timeout/interrupted.
enum ExitCode : int {
  kExitOk = 0,
  kExitRuntime = 1,
  kExitUsage = 2,
  kExitInterrupted = 3,
};

/// Exit code for a failure of the given kind (timeout/interrupted → 3,
/// everything else → 1).
int ExitCodeForError(ErrorKind kind);

}  // namespace fadesched::util
