#include "util/error.hpp"

#include <new>

namespace fadesched::util {

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTransient: return "transient";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kInterrupted: return "interrupted";
    case ErrorKind::kFatal: return "fatal";
  }
  return "?";
}

ErrorKind ClassifyException(const std::exception_ptr& error) {
  if (!error) return ErrorKind::kFatal;
  try {
    std::rethrow_exception(error);
  } catch (const HarnessError& e) {
    return e.kind();
  } catch (const std::bad_alloc&) {
    return ErrorKind::kTransient;
  } catch (const std::logic_error&) {
    return ErrorKind::kFatal;
  } catch (...) {
    return ErrorKind::kTransient;
  }
}

int ExitCodeForError(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTimeout:
    case ErrorKind::kInterrupted:
      return kExitInterrupted;
    case ErrorKind::kTransient:
    case ErrorKind::kFatal:
      return kExitRuntime;
  }
  return kExitRuntime;
}

}  // namespace fadesched::util
