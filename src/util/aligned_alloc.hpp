// Minimal over-aligned allocator so std::vector buffers can satisfy
// alignment requirements stricter than operator new's default. The
// AVX-512 streaming stores in channel/simd_kernel require 64-byte
// destinations; glibc's malloc only guarantees 16 for large blocks.
#pragma once

#include <cstddef>
#include <new>

namespace fadesched::util {

template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

}  // namespace fadesched::util
