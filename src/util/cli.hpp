// Tiny declarative command-line flag parser for examples and benches.
//
//   util::CliParser cli("quickstart", "Run a small scheduling demo");
//   auto& n     = cli.AddInt("links", 200, "number of links");
//   auto& alpha = cli.AddDouble("alpha", 3.0, "path-loss exponent");
//   cli.Parse(argc, argv);   // exits with usage on --help / bad input
//
// Flags take the forms --name=value, --name value, and --flag for bools.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fadesched::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  long long& AddInt(const std::string& name, long long default_value,
                    const std::string& help);
  double& AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  std::string& AddString(const std::string& name, std::string default_value,
                         const std::string& help);
  bool& AddBool(const std::string& name, bool default_value,
                const std::string& help);

  /// Why the last Parse() returned false (help is a successful exit;
  /// malformed input is a usage error).
  enum class ParseStatus { kOk, kHelp, kError };

  /// Parse argv. On --help prints usage and returns false; on malformed
  /// input prints the error plus usage and returns false. Callers should
  /// exit when this returns false, using UsageExitCode() as the status.
  [[nodiscard]] bool Parse(int argc, const char* const* argv);

  [[nodiscard]] ParseStatus Status() const { return status_; }

  /// Process exit code after a failed Parse(): 0 when the user asked for
  /// --help, 2 (usage error) otherwise.
  [[nodiscard]] int UsageExitCode() const;

  [[nodiscard]] std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string default_repr;
    // Owned storage; stable addresses because flags live in a std::map.
    long long int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
  };

  bool Assign(Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  ParseStatus status_ = ParseStatus::kOk;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fadesched::util
