// In-memory CSV table with typed cells, used for scenario I/O and for
// printing benchmark series in a uniform shape.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fadesched::util {

/// A rectangular table of string cells with a header row.
///
/// All mutation validates shape: every appended row must match the header
/// width. Numeric accessors parse on demand and throw CheckFailure on
/// malformed cells, which keeps scenario loading honest.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  [[nodiscard]] std::size_t NumRows() const { return rows_.size(); }
  [[nodiscard]] std::size_t NumCols() const { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& Header() const { return header_; }

  /// Index of a named column; throws if absent.
  [[nodiscard]] std::size_t ColumnIndex(const std::string& name) const;
  [[nodiscard]] bool HasColumn(const std::string& name) const;

  void AppendRow(std::vector<std::string> row);

  [[nodiscard]] const std::string& Cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& Cell(std::size_t row, const std::string& col) const;
  [[nodiscard]] double CellAsDouble(std::size_t row, const std::string& col) const;
  [[nodiscard]] long long CellAsInt(std::size_t row, const std::string& col) const;

  /// Serialize to RFC-4180-ish CSV (no quoting needed for our value set;
  /// cells containing separators/quotes are quoted defensively).
  void Write(std::ostream& os) const;
  [[nodiscard]] std::string ToString() const;

  /// Write the CSV to `path` atomically (temp → fsync → rename), so an
  /// interrupted run can never leave a truncated table on disk.
  void Save(const std::string& path) const;

  /// Parse a table from CSV text; first line is the header.
  static CsvTable Parse(std::istream& is);
  static CsvTable ParseString(const std::string& text);

  /// Render as an aligned human-readable table (for bench stdout).
  [[nodiscard]] std::string ToPrettyString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience builder: appends typed cells and materializes rows.
class CsvRowBuilder {
 public:
  explicit CsvRowBuilder(CsvTable& table) : table_(table) {}

  CsvRowBuilder& Add(std::string value);
  CsvRowBuilder& Add(double value);
  CsvRowBuilder& Add(long long value);
  CsvRowBuilder& Add(std::size_t value);
  CsvRowBuilder& Add(int value);

  /// Validates width and appends to the table.
  void Commit();

 private:
  CsvTable& table_;
  std::vector<std::string> cells_;
};

}  // namespace fadesched::util
