// Crash-safe file writes: write-temp → fsync → rename.
//
// Every CSV/JSON/LP emitter in the repo goes through AtomicWriteFile so a
// crash, OOM-kill, or SIGKILL mid-write can never leave a truncated file
// that masquerades as a complete result. The rename is atomic on POSIX,
// so readers observe either the old content or the new content, never a
// prefix.
#pragma once

#include <string>
#include <string_view>

namespace fadesched::util {

/// Writes `content` to `path` atomically: the data lands in a temporary
/// file in the same directory, is fsync'd, and is renamed over `path`.
/// Throws HarnessError (transient) on any I/O failure; the temporary is
/// unlinked on error.
void AtomicWriteFile(const std::string& path, std::string_view content);

/// Reads a whole file; throws HarnessError (transient) if it cannot be
/// opened or read.
std::string ReadFileToString(const std::string& path);

/// True iff `path` exists (any file type).
bool FileExists(const std::string& path);

/// Best-effort unlink; returns true if the file was removed.
bool RemoveFile(const std::string& path);

}  // namespace fadesched::util
