#include "util/atomic_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fadesched::util {
namespace {

[[noreturn]] void ThrowIo(const std::string& action, const std::string& path) {
  throw TransientError(action + " failed for '" + path +
                       "': " + std::strerror(errno));
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_DIRECTORY fsync; the data file
/// is already synced, so we ignore failures here.
void SyncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void AtomicWriteFile(const std::string& path, std::string_view content) {
  // The temp name embeds the pid so two concurrent writers (e.g. a bench
  // and its resume) cannot clobber each other's scratch file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowIo("open", tmp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      ThrowIo("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    ThrowIo("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    ThrowIo("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    ThrowIo("rename", path);
  }
  SyncParentDir(path);
}

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw TransientError("cannot open for reading: '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) throw TransientError("read failed: '" + path + "'");
  return os.str();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool RemoveFile(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

}  // namespace fadesched::util
