#include "util/signal_guard.hpp"

#include <csignal>

#include <atomic>

namespace fadesched::util {
namespace {

std::atomic<bool> g_shutdown_requested{false};
int g_guard_depth = 0;  // main-thread only
struct sigaction g_prev_int;
struct sigaction g_prev_term;

void HandleSignal(int signo) {
  // Async-signal-safe: one atomic store, one syscall on the repeat path.
  if (g_shutdown_requested.exchange(true, std::memory_order_relaxed)) {
    // Second signal: give up on graceful shutdown.
    ::signal(signo, SIG_DFL);
    ::raise(signo);
  }
}

}  // namespace

ScopedSignalGuard::ScopedSignalGuard() {
  if (g_guard_depth++ > 0) return;
  struct sigaction action{};
  action.sa_handler = &HandleSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, &g_prev_int);
  ::sigaction(SIGTERM, &action, &g_prev_term);
}

ScopedSignalGuard::~ScopedSignalGuard() {
  if (--g_guard_depth > 0) return;
  ::sigaction(SIGINT, &g_prev_int, nullptr);
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void ClearShutdownRequest() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
}

void RequestShutdown() {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

}  // namespace fadesched::util
