#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace fadesched::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, std::string_view msg) {
  if (level < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[fadesched %s] %.*s\n", LevelTag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace fadesched::util
