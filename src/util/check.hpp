// Lightweight runtime checking macros.
//
// FS_CHECK is always on (used to validate API preconditions); FS_DCHECK
// compiles out in NDEBUG builds (used on hot paths).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fadesched::util {

/// Thrown when an FS_CHECK fails. Deriving from std::logic_error keeps the
/// failure catchable in tests while signalling a programming error.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void RaiseCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace fadesched::util

#define FS_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::fadesched::util::RaiseCheckFailure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define FS_CHECK_MSG(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::fadesched::util::RaiseCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define FS_DCHECK(expr) ((void)0)
#else
#define FS_DCHECK(expr) FS_CHECK(expr)
#endif
