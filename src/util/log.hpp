// Minimal leveled logger for library diagnostics.
//
// The library itself logs sparingly (schedulers are silent on the hot
// path); benches and examples use Info level for progress reporting.
#pragma once

#include <sstream>
#include <string_view>

namespace fadesched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one log line (thread-safe; line-buffered to stderr).
void LogMessage(LogLevel level, std::string_view msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fadesched::util

#define FS_LOG(level_name)                                             \
  if (::fadesched::util::LogLevel::k##level_name <                     \
      ::fadesched::util::GetLogLevel()) {                              \
  } else                                                               \
    ::fadesched::util::detail::LogLine(                                \
        ::fadesched::util::LogLevel::k##level_name)
