// Small string helpers shared by the CSV and CLI modules.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fadesched::util {

/// Split `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Parse helpers returning nullopt on malformed input instead of throwing.
std::optional<long long> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Join items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style double formatting with trailing-zero trimming ("1.25", "3").
std::string FormatDouble(double value, int max_precision = 6);

}  // namespace fadesched::util
