#include "util/page_recycler.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace fadesched::util {
namespace {

void* RawAllocate(std::size_t bytes, std::size_t alignment) {
  return ::operator new(bytes, std::align_val_t(alignment));
}

void RawFree(const PageRecycler::Block& block) noexcept {
  ::operator delete(block.ptr, std::align_val_t(block.alignment));
}

}  // namespace

PageRecycler::PageRecycler() {
#if defined(__SANITIZE_ADDRESS__)
  enabled_ = false;  // reuse would defeat use-after-free poisoning
#else
  const char* env = std::getenv("FADESCHED_NO_RECYCLE");
  enabled_ = env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0;
#endif
  // Pre-size so the noexcept Release() never needs a growing push_back.
  free_.reserve(kMaxCachedBlocks + 1);
}

PageRecycler& PageRecycler::Instance() {
  static PageRecycler* instance = new PageRecycler;  // leaked: see header
  return *instance;
}

void* PageRecycler::Acquire(std::size_t bytes, std::size_t alignment) {
  if (!enabled_) return RawAllocate(bytes, alignment);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Best fit: the smallest cached block that holds the request without
    // pinning gross overcapacity to a long-lived small buffer.
    std::size_t best = free_.size();
    for (std::size_t k = 0; k < free_.size(); ++k) {
      if (free_[k].alignment != alignment) continue;
      if (free_[k].bytes < bytes || free_[k].bytes / 4 > bytes) continue;
      if (best == free_.size() || free_[k].bytes < free_[best].bytes) {
        best = k;
      }
    }
    if (best != free_.size()) {
      const Block block = free_[best];
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
      live_.emplace(block.ptr, block);
      return block.ptr;
    }
  }
  void* ptr = RawAllocate(bytes, alignment);
  std::lock_guard<std::mutex> lock(mutex_);
  live_.emplace(ptr, Block{ptr, bytes, alignment});
  return ptr;
}

void PageRecycler::Release(void* block, std::size_t alignment) noexcept {
  if (block == nullptr) return;
  if (!enabled_) {
    RawFree(Block{block, 0, alignment});
    return;
  }
  Block spill[kMaxCachedBlocks + 1];
  std::size_t spill_count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(block);
    if (it == live_.end()) {
      // Not ours (should not happen) — free conservatively.
      RawFree(Block{block, 0, alignment});
      return;
    }
    free_.push_back(it->second);  // capacity reserved in the constructor
    live_.erase(it);
    // Evict smallest-first until within the block/byte budget: the big
    // blocks are the ones whose page faults are worth avoiding.
    std::sort(free_.begin(), free_.end(),
              [](const Block& a, const Block& b) { return a.bytes < b.bytes; });
    std::size_t total = 0;
    for (const Block& b : free_) total += b.bytes;
    while (!free_.empty() && (free_.size() > kMaxCachedBlocks ||
                              total > kMaxCachedBytes)) {
      spill[spill_count++] = free_.front();
      total -= free_.front().bytes;
      free_.erase(free_.begin());
    }
  }
  for (std::size_t k = 0; k < spill_count; ++k) RawFree(spill[k]);
}

std::size_t PageRecycler::CachedBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const Block& b : free_) total += b.bytes;
  return total;
}

void PageRecycler::Trim() {
  std::vector<Block> spill;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spill.swap(free_);
  }
  for (const Block& b : spill) RawFree(b);
}

}  // namespace fadesched::util
