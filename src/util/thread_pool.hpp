// Fixed-size worker pool with a simple task queue.
//
// The Monte-Carlo simulator and the experiment runner submit coarse-grained
// tasks (thousands of fading trials each), so a mutex-protected deque is
// plenty; we do not need work stealing at this granularity.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fadesched::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). Pass 0 to use the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned NumThreads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task; the returned future observes its completion and
  /// propagates exceptions.
  template <typename F>
  std::future<void> Submit(F&& task) {
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(task));
    std::future<void> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// One failed pool task, by submission index.
struct TaskFailure {
  std::size_t index = 0;
  std::string message;
};

/// Outcome summary for a batch of pool futures: how many completed, every
/// failure's message, and the first exception for rethrow. Lets a retry
/// policy inspect all errors without try/catching future::get at every
/// call site.
struct TaskReport {
  std::size_t completed = 0;
  std::vector<TaskFailure> failures;
  std::exception_ptr first_error;

  [[nodiscard]] bool AllOk() const { return failures.empty(); }

  /// Rethrows the first failure, if any.
  void Rethrow() const {
    if (first_error) std::rethrow_exception(first_error);
  }

  /// "3/8 tasks failed: <first message>" — for logs and error wrapping.
  [[nodiscard]] std::string Summary() const;
};

/// Blocks on every future (so no task can outlive its captures), then
/// reports the outcomes. Futures are consumed.
TaskReport WaitAll(std::vector<std::future<void>>& futures);

/// Splits [0, count) into roughly equal chunks and runs
/// `body(chunk_index, begin, end)` on the pool, blocking until ALL chunks
/// finish — even when one throws, so no chunk can dangle on unwound stack
/// state. The first failure is then rethrown.
void ParallelChunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace fadesched::util
