// Fixed-size worker pool with a simple task queue.
//
// The Monte-Carlo simulator and the experiment runner submit coarse-grained
// tasks (thousands of fading trials each), so a mutex-protected deque is
// plenty; we do not need work stealing at this granularity.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fadesched::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). Pass 0 to use the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned NumThreads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task; the returned future observes its completion and
  /// propagates exceptions.
  template <typename F>
  std::future<void> Submit(F&& task) {
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(task));
    std::future<void> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Splits [0, count) into roughly equal chunks and runs
/// `body(chunk_index, begin, end)` on the pool, blocking until all chunks
/// finish. Exceptions from any chunk are rethrown (first one wins).
void ParallelChunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace fadesched::util
