#include "util/csv.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace fadesched::util {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FS_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

std::size_t CsvTable::ColumnIndex(const std::string& name) const {
  auto it = std::find(header_.begin(), header_.end(), name);
  FS_CHECK_MSG(it != header_.end(), "no such CSV column: " + name);
  return static_cast<std::size_t>(it - header_.begin());
}

bool CsvTable::HasColumn(const std::string& name) const {
  return std::find(header_.begin(), header_.end(), name) != header_.end();
}

void CsvTable::AppendRow(std::vector<std::string> row) {
  FS_CHECK_MSG(row.size() == header_.size(), "CSV row width mismatch");
  rows_.push_back(std::move(row));
}

const std::string& CsvTable::Cell(std::size_t row, std::size_t col) const {
  FS_CHECK(row < rows_.size() && col < header_.size());
  return rows_[row][col];
}

const std::string& CsvTable::Cell(std::size_t row, const std::string& col) const {
  return Cell(row, ColumnIndex(col));
}

double CsvTable::CellAsDouble(std::size_t row, const std::string& col) const {
  auto parsed = ParseDouble(Cell(row, col));
  FS_CHECK_MSG(parsed.has_value(), "malformed double in CSV column " + col);
  return *parsed;
}

long long CsvTable::CellAsInt(std::size_t row, const std::string& col) const {
  auto parsed = ParseInt(Cell(row, col));
  FS_CHECK_MSG(parsed.has_value(), "malformed int in CSV column " + col);
  return *parsed;
}

void CsvTable::Write(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << ',';
    os << QuoteCell(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << QuoteCell(row[c]);
    }
    os << '\n';
  }
}

std::string CsvTable::ToString() const {
  std::ostringstream os;
  Write(os);
  return os.str();
}

void CsvTable::Save(const std::string& path) const {
  AtomicWriteFile(path, ToString());
}

CsvTable CsvTable::Parse(std::istream& is) {
  // We only need the unquoted subset for scenarios; quoted cells produced
  // by Write() are accepted too.
  auto parse_line = [](const std::string& line) {
    std::vector<std::string> cells;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (quoted) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cur += '"';
            ++i;
          } else {
            quoted = false;
          }
        } else {
          cur += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        cells.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    cells.push_back(std::move(cur));
    return cells;
  };

  std::string line;
  FS_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
               "empty CSV input: no header line");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  CsvTable table(parse_line(line));
  std::size_t row_number = 0;  // 1-based data rows, header excluded
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    ++row_number;
    std::vector<std::string> cells = parse_line(line);
    FS_CHECK_MSG(cells.size() == table.NumCols(),
                 "CSV row " + std::to_string(row_number) + ": expected " +
                     std::to_string(table.NumCols()) + " columns, got " +
                     std::to_string(cells.size()));
    table.AppendRow(std::move(cells));
  }
  return table;
}

CsvTable CsvTable::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

std::string CsvTable::ToPrettyString() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

CsvRowBuilder& CsvRowBuilder::Add(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

CsvRowBuilder& CsvRowBuilder::Add(double value) {
  cells_.push_back(FormatDouble(value));
  return *this;
}

CsvRowBuilder& CsvRowBuilder::Add(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvRowBuilder& CsvRowBuilder::Add(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvRowBuilder& CsvRowBuilder::Add(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void CsvRowBuilder::Commit() { table_.AppendRow(std::move(cells_)); }

}  // namespace fadesched::util
