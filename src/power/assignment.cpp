#include "power/assignment.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fadesched::power {

const char* PolicyName(PowerPolicy policy) {
  switch (policy) {
    case PowerPolicy::kUniform: return "uniform";
    case PowerPolicy::kLinear: return "linear";
    case PowerPolicy::kSquareRoot: return "sqrt";
  }
  return "?";
}

net::LinkSet AssignPower(const net::LinkSet& links,
                         const channel::ChannelParams& params,
                         PowerPolicy policy, double max_power) {
  params.Validate();
  FS_CHECK_MSG(max_power > 0.0, "max_power must be positive");
  net::LinkSet out;
  if (links.Empty()) return out;

  const double exponent = policy == PowerPolicy::kLinear ? params.alpha
                          : policy == PowerPolicy::kSquareRoot
                              ? params.alpha / 2.0
                              : 0.0;
  // Normalize so the longest link gets exactly max_power.
  const double longest = links.MaxLength();
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    net::Link link = links.At(i);
    if (policy == PowerPolicy::kUniform) {
      link.tx_power = 0.0;  // channel default
    } else {
      link.tx_power =
          max_power * std::pow(links.Length(i) / longest, exponent);
    }
    out.Add(link);
  }
  return out;
}

}  // namespace fadesched::power
