// Transmit power assignment policies — the power-control extension.
//
// The paper (like [14], [15]) assumes a common transmit power P. The
// SINR-scheduling literature the paper builds on also studies oblivious
// power assignments that depend only on the link's own length:
//
//   uniform      P_i = P                         (the paper's model)
//   linear       P_i ∝ d_ii^α                    (exact path-loss compensation)
//   square-root  P_i ∝ d_ii^{α/2}                (the "mean" assignment;
//                known to dominate both extremes for SINR scheduling,
//                cf. Fanghänel–Kesselheim–Vöcking)
//
// Assignments are normalized so the maximum per-link power equals
// `max_power`, modelling a hardware power cap.
#pragma once

#include "channel/params.hpp"
#include "net/link_set.hpp"

namespace fadesched::power {

enum class PowerPolicy {
  kUniform,
  kLinear,
  kSquareRoot,
};

/// Human-readable policy name ("uniform", "linear", "sqrt").
const char* PolicyName(PowerPolicy policy);

/// Returns a copy of `links` with per-link tx_power set according to
/// `policy`, scaled so the largest assigned power equals `max_power`.
/// kUniform clears all overrides (every link uses the channel default).
net::LinkSet AssignPower(const net::LinkSet& links,
                         const channel::ChannelParams& params,
                         PowerPolicy policy, double max_power);

}  // namespace fadesched::power
