#include "service/scenario_cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace fadesched::service {

namespace {

// Fixed per-node bookkeeping (list/map nodes, small strings) — a floor so
// a cache of thousands of tiny responses still respects the budget.
constexpr std::size_t kNodeOverheadBytes = 512;

std::string ResponseGuard(const Fingerprint& fp) {
  // Scheduler first, then its newline terminator (names cannot contain
  // one), then the canonical blob: the split is unambiguous even though
  // the blob is binary, and a response guard can never equal a scenario
  // guard (which is the bare blob starting with the version magic).
  std::string guard = fp.scheduler;
  guard += '\n';
  guard += fp.canonical_scenario;
  return guard;
}

std::size_t EstimateResponseBytes(const Fingerprint& fp,
                                  const SchedulingResponse& response) {
  return kNodeOverheadBytes + fp.canonical_scenario.size() +
         response.schedule.size() * sizeof(net::LinkId) +
         response.message.size();
}

}  // namespace

ScenarioCache::ScenarioCache(CacheOptions options, ServiceMetrics* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  FS_CHECK_MSG(options_.engine.shared == nullptr,
               "CacheOptions::engine.shared must be empty — the cache fills "
               "it in per request");
}

void ScenarioCache::Bump(
    std::atomic<std::uint64_t> ServiceMetrics::* counter) const {
  if (metrics_ != nullptr) {
    (metrics_->*counter).fetch_add(1, std::memory_order_relaxed);
  }
}

ScenarioCache::LruList::iterator ScenarioCache::FindLocked(
    std::uint64_t hash, const std::string& guard) {
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second->guard == guard) return it->second;
    Bump(&ServiceMetrics::cache_collisions);
  }
  return lru_.end();
}

void ScenarioCache::TouchLocked(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ScenarioCache::EvictLocked() {
  while (current_bytes_ > options_.capacity_bytes && lru_.size() > 1) {
    const auto victim = std::prev(lru_.end());
    auto [begin, end] = index_.equal_range(victim->hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    current_bytes_ -= victim->cost_bytes;
    lru_.erase(victim);
    Bump(&ServiceMetrics::cache_evictions);
  }
}

std::size_t ScenarioCache::EstimateScenarioBytes(
    const Scenario& scenario, const channel::EngineOptions& engine) {
  const std::size_t n = scenario.links.Size();
  // LinkSet SoA (7 doubles/link) + the engine's per-link tables (another
  // 7 doubles/link) + the canonical bytes held for the collision guard.
  std::size_t bytes = kNodeOverheadBytes + scenario.canonical_scenario.size() +
                      14 * sizeof(double) * n;
  if (engine.backend == channel::FactorBackend::kMatrix) {
    bytes += n * n * sizeof(double);  // the materialized factor matrix
  }
  return bytes;
}

bool ScenarioCache::IsWarm(const Fingerprint& fp) const {
  const std::string response_guard = ResponseGuard(fp);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto resident = [this](std::uint64_t hash, const std::string& guard) {
    auto [begin, end] = index_.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second->guard == guard) return true;
    }
    return false;
  };
  return resident(fp.request_hash, response_guard) ||
         resident(fp.scenario_hash, fp.canonical_scenario);
}

ScenarioCache::ScenarioPtr ScenarioCache::ObtainScenario(
    const Fingerprint& fp, const SchedulingRequest& request, bool* hit,
    bool degrade_build) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = FindLocked(fp.scenario_hash, fp.canonical_scenario);
    if (it != lru_.end()) {
      TouchLocked(it);
      Bump(&ServiceMetrics::scenario_hits);
      if (hit != nullptr) *hit = true;
      return it->scenario;
    }
  }

  // Miss: build outside the lock. The entry sits behind a shared_ptr, so
  // `built->links` has its final address before the engine captures it.
  Bump(&ServiceMetrics::scenario_misses);
  if (hit != nullptr) *hit = false;
  auto built = std::make_shared<Scenario>();
  built->links = request.scenario.links;
  built->params = request.scenario.params;
  built->canonical_scenario = fp.canonical_scenario;
  channel::EngineOptions engine_options = options_.engine;
  engine_options.shared.reset();
  if (degrade_build) {
    // Brownout: a matrix backend keeps matrix-speed queries but takes the
    // ~10× cheaper SIMD ladder build; everything else degrades to the
    // tables-only build as before.
    if (engine_options.backend == channel::FactorBackend::kMatrix) {
      engine_options.ladder.enabled = true;
    } else {
      engine_options.backend = channel::FactorBackend::kTables;
    }
  }
  built->engine.emplace(built->links, built->params, engine_options);
  built->cost_bytes = EstimateScenarioBytes(*built, engine_options);

  std::lock_guard<std::mutex> lock(mutex_);
  // Two threads may have raced the build; first insert wins and the loser
  // adopts it (both engines are bit-identical, so either is correct).
  const auto raced = FindLocked(fp.scenario_hash, fp.canonical_scenario);
  if (raced != lru_.end()) {
    TouchLocked(raced);
    return raced->scenario;
  }
  Node node;
  node.hash = fp.scenario_hash;
  node.guard = fp.canonical_scenario;
  node.scenario = built;
  node.cost_bytes = built->cost_bytes;
  lru_.push_front(std::move(node));
  index_.emplace(fp.scenario_hash, lru_.begin());
  current_bytes_ += built->cost_bytes;
  EvictLocked();
  return built;
}

bool ScenarioCache::LookupResponse(const Fingerprint& fp,
                                   SchedulingResponse* out,
                                   bool count_miss) {
  const std::string guard = ResponseGuard(fp);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = FindLocked(fp.request_hash, guard);
  if (it == lru_.end()) {
    if (count_miss) Bump(&ServiceMetrics::response_misses);
    return false;
  }
  TouchLocked(it);
  Bump(&ServiceMetrics::response_hits);
  if (out != nullptr) *out = *it->response;
  return true;
}

void ScenarioCache::StoreResponse(const Fingerprint& fp,
                                  const SchedulingResponse& response) {
  if (!response.Ok()) return;  // admission failures must not be replayed
  SchedulingResponse stored = response;
  stored.id.clear();          // correlation tag is per-request
  stored.cache_hit = false;   // stamped by the caller on each serve
  const std::string guard = ResponseGuard(fp);
  const std::size_t cost = EstimateResponseBytes(fp, stored);

  std::lock_guard<std::mutex> lock(mutex_);
  if (FindLocked(fp.request_hash, guard) != lru_.end()) return;
  Node node;
  node.hash = fp.request_hash;
  node.guard = guard;
  node.response = std::move(stored);
  node.cost_bytes = cost;
  lru_.push_front(std::move(node));
  index_.emplace(fp.request_hash, lru_.begin());
  current_bytes_ += cost;
  EvictLocked();
}

std::size_t ScenarioCache::CurrentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_bytes_;
}

std::size_t ScenarioCache::NumEntries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ScenarioCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  current_bytes_ = 0;
}

}  // namespace fadesched::service
