// Overload controller for the request batcher: CoDel-style adaptive
// admission, two-tier load shedding, and a brownout ladder.
//
// The hard queue-capacity bound (batcher.hpp) protects memory; this
// controller protects *latency*. It watches the queue delay each request
// actually experienced (recorded by the worker at dequeue) and, like
// CoDel, declares the service overloaded only when that delay has stayed
// above `queue_delay_target_ms` continuously for `interval_ms` — a burst
// that drains inside one interval never sheds. While overloaded:
//
//   * two-tier shedding: requests classified kCold (their fingerprint is
//     not in the scenario/response cache, so serving them costs a full
//     engine build — ~20× a warm hit per BENCH_service.json) are shed
//     first; kWarm requests are only shed under ShedPolicy::kAll. Every
//     shed carries a `retry_after_ms` hint derived from the current
//     queue-delay EWMA so clients back off proportionally to the actual
//     congestion instead of a blind ladder;
//   * brownout: when the delay EWMA climbs past
//     `brownout_enter_factor × target`, the service degrades cold builds
//     to the fast kTables backend (bit-identical responses — the backends
//     are exact, so brownout trades build speed for memory locality,
//     never correctness). Hysteresis: brownout exits only when the EWMA
//     falls back below `brownout_exit_factor × target`.
//
// An empty queue resets everything: overload state is a statement about
// the queue, and a drained queue has none. All decisions are pure
// functions of the observation stream and the injected timestamps, which
// is what makes the unit tests deterministic.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

#include "service/metrics.hpp"

namespace fadesched::service {

/// Admission class of a request: kWarm = its fingerprint is already
/// cached (cheap to serve), kCold = it will need a full engine build.
enum class RequestClass { kWarm, kCold };

/// Who gets shed while overloaded. kNone disables adaptive shedding
/// (the hard queue cap still applies), kCold sheds cold-fingerprint
/// requests only, kAll sheds everything.
enum class ShedPolicy { kNone, kCold, kAll };

/// Stable names ("none" | "cold" | "all"); parse throws on unknown.
const char* ShedPolicyName(ShedPolicy policy);
ShedPolicy ParseShedPolicy(const std::string& name);

struct OverloadOptions {
  /// CoDel target: the queue delay the controller defends. 0 disables
  /// the controller entirely (no shedding, no brownout).
  double queue_delay_target_ms = 5.0;
  /// Delay must exceed the target continuously this long before the
  /// service counts as overloaded.
  double interval_ms = 100.0;
  /// EWMA smoothing for the delay estimate (per observation).
  double ewma_alpha = 0.2;
  /// Brownout hysteresis, as multiples of the target (enter > exit).
  double brownout_enter_factor = 4.0;
  double brownout_exit_factor = 1.0;
  /// Shed hints: retry_after = clamp(2 × EWMA, min, max).
  double retry_after_min_ms = 10.0;
  double retry_after_max_ms = 250.0;

  ShedPolicy shed_policy = ShedPolicy::kCold;
  /// false pins the full-fidelity backend even under pressure.
  bool brownout_enabled = true;

  /// Throws util::FatalError on non-positive intervals, alpha outside
  /// (0, 1], or exit factor above enter factor.
  void Validate() const;
};

struct AdmitDecision {
  bool admit = true;
  /// Backoff hint attached to the shed response (ms); 0 when admitted.
  double retry_after_ms = 0.0;
};

class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  /// `metrics` may be null; when given, the controller keeps the
  /// queue_delay_ewma_us and brownout_active gauges and the
  /// brownout_entries counter current (shed counters belong to the
  /// batcher, which knows the request class).
  explicit OverloadController(OverloadOptions options,
                              ServiceMetrics* metrics = nullptr);

  /// One dequeue observation: how long the request sat in the queue.
  /// Called by batcher workers; drives the overload and brownout state.
  void ObserveQueueDelay(double seconds, Clock::time_point now);

  /// Admission check at Submit time. `queue_depth` is the depth the
  /// request would join; depth 0 resets the overload state (an empty
  /// queue is never overloaded).
  AdmitDecision Admit(RequestClass cls, std::size_t queue_depth,
                      Clock::time_point now);

  /// Hint for sheds decided elsewhere (the hard queue-full path).
  [[nodiscard]] double RetryAfterMs() const;

  [[nodiscard]] bool Overloaded() const;
  [[nodiscard]] bool Brownout() const;
  [[nodiscard]] double QueueDelayEwmaSeconds() const;
  [[nodiscard]] const OverloadOptions& Options() const { return options_; }

 private:
  [[nodiscard]] double RetryAfterMsLocked() const;
  void SetBrownoutLocked(bool on);
  void ResetLocked();

  OverloadOptions options_;
  ServiceMetrics* metrics_;

  mutable std::mutex mutex_;
  double ewma_seconds_ = 0.0;
  bool have_ewma_ = false;
  bool overloaded_ = false;
  bool brownout_ = false;
  bool above_target_ = false;
  Clock::time_point first_above_{};
};

}  // namespace fadesched::service
