#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw util::TransientError(what + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::ConnectUnix(const std::string& path) {
  Close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw util::FatalError("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    ThrowErrno("connect(" + path + ")");
  }
}

void Client::ConnectTcp(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw util::FatalError("invalid address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    ThrowErrno("connect(" + host + ":" + std::to_string(port) + ")");
  }
}

void Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) throw util::FatalError("SendRaw on a disconnected client");
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string Client::ReadLine() {
  if (fd_ < 0) throw util::FatalError("ReadLine on a disconnected client");
  char chunk[4096];
  for (;;) {
    const std::size_t line_end = buffer_.find('\n');
    if (line_end != std::string::npos) {
      std::string line = buffer_.substr(0, line_end);
      buffer_.erase(0, line_end + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("recv");
    }
    if (n == 0) {
      throw util::TransientError("connection closed before a response line");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

SchedulingResponse Client::Call(const SchedulingRequest& request) {
  SendRaw(FormatRequestFrame(request));
  return ParseResponseLine(ReadLine());
}

}  // namespace fadesched::service
