#include "service/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/protocol.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw util::TransientError(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

/// Polls until `events` is ready or the deadline expires. Throws
/// util::TimeoutError naming the operation on expiry.
void PollOrTimeout(int fd, short events, const util::Deadline& deadline,
                   const char* what) {
  for (;;) {
    int wait_ms = -1;
    if (deadline.Enabled()) {
      if (deadline.Expired()) {
        throw util::TimeoutError(std::string(what) +
                                 " timed out (peer stalled)");
      }
      const double remaining = deadline.RemainingSeconds();
      wait_ms = static_cast<int>(remaining * 1e3) + 1;
      if (wait_ms > 200) wait_ms = 200;  // re-check the deadline each tick
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ThrowErrno(std::string("poll(") + what + ")");
    }
    if (ready > 0) return;
  }
}

}  // namespace

Client::~Client() { Close(); }

void Client::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

/// Completes a non-blocking connect: waits for writability within the
/// connect deadline, then checks SO_ERROR.
void Client::FinishConnect(const std::string& what) {
  const util::Deadline deadline =
      util::Deadline::After(options_.connect_timeout_seconds);
  try {
    PollOrTimeout(fd_, POLLOUT, deadline, what.c_str());
  } catch (...) {
    Close();
    throw;
  }
  int error = 0;
  socklen_t len = sizeof(error);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len) < 0 ||
      error != 0) {
    if (error != 0) errno = error;
    Close();
    ThrowErrno(what);
  }
}

void Client::ConnectUnix(const std::string& path) {
  Close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket(AF_UNIX)");
  SetNonBlocking(fd_);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    Close();
    throw util::FatalError("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      FinishConnect("connect(" + path + ")");
      return;
    }
    Close();
    ThrowErrno("connect(" + path + ")");
  }
}

void Client::ConnectTcp(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket(AF_INET)");
  SetNonBlocking(fd_);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw util::FatalError("invalid address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno == EINPROGRESS) {
      FinishConnect("connect(" + host + ":" + std::to_string(port) + ")");
      return;
    }
    Close();
    ThrowErrno("connect(" + host + ":" + std::to_string(port) + ")");
  }
}

void Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) throw util::FatalError("SendRaw on a disconnected client");
  const util::Deadline deadline =
      util::Deadline::After(options_.io_timeout_seconds);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        PollOrTimeout(fd_, POLLOUT, deadline, "send");
        continue;
      }
      ThrowErrno("send");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string Client::ReadLine() {
  if (fd_ < 0) throw util::FatalError("ReadLine on a disconnected client");
  const util::Deadline deadline =
      util::Deadline::After(options_.io_timeout_seconds);
  char chunk[4096];
  for (;;) {
    const std::size_t line_end = buffer_.find('\n');
    if (line_end != std::string::npos) {
      std::string line = buffer_.substr(0, line_end);
      buffer_.erase(0, line_end + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    PollOrTimeout(fd_, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      ThrowErrno("recv");
    }
    if (n == 0) {
      throw util::TransientError("connection closed before a response line");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

SchedulingResponse Client::Call(const SchedulingRequest& request) {
  SendRaw(FormatRequestFrame(request));
  return ParseResponseLine(ReadLine());
}

StatsSnapshot Client::Stats() {
  SendRaw(std::string(kStatsVerb) + "\n");
  return ParseStatsLine(ReadLine());
}

}  // namespace fadesched::service
