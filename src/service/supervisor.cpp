#include "service/supervisor.hpp"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <exception>
#include <sstream>
#include <thread>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service {

namespace {

constexpr int kTickMs = 20;
constexpr int kStartupCrashExit = 77;

// SIGHUP = rolling restart. async-signal-safe flag, polled by the loop
// (same pattern as util::signal_guard's SIGTERM flag, which the CLI
// installs and the workers inherit across fork).
volatile std::sig_atomic_t g_hup_requested = 0;

void HupHandler(int) { g_hup_requested = 1; }

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Uniform double in [0, 1) from a SplitMix64 draw.
double UnitDraw(rng::SplitMix64& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

}  // namespace

void ProcessChaosOptions::Validate() const {
  if (window_seconds <= 0.0) {
    throw util::FatalError("process chaos: window_seconds must be positive");
  }
  if (stall_seconds < 0.0) {
    throw util::FatalError("process chaos: stall_seconds must be >= 0");
  }
}

std::vector<ProcessFaultEvent> BuildProcessFaultPlan(
    const ProcessChaosOptions& chaos, std::size_t num_workers) {
  chaos.Validate();
  FS_CHECK_MSG(num_workers >= 1, "fault plan needs >= 1 worker");
  std::vector<ProcessFaultEvent> plan;
  plan.reserve(chaos.kills + chaos.stalls + chaos.startup_crashes);
  // One derived stream per event kind so adding stalls never perturbs
  // where the kills land (the same isolation idea as the per-connection
  // socket fault streams).
  rng::SplitMix64 kill_rng(chaos.seed * 0x9e3779b97f4a7c15ULL + 1);
  rng::SplitMix64 stall_rng(chaos.seed * 0x9e3779b97f4a7c15ULL + 2);
  for (std::size_t k = 0; k < chaos.kills; ++k) {
    ProcessFaultEvent event;
    event.kind = ProcessFaultEvent::Kind::kKill;
    event.at_seconds = UnitDraw(kill_rng) * chaos.window_seconds;
    event.slot = static_cast<std::size_t>(kill_rng.Next() % num_workers);
    plan.push_back(event);
  }
  for (std::size_t s = 0; s < chaos.stalls; ++s) {
    ProcessFaultEvent event;
    event.kind = ProcessFaultEvent::Kind::kStall;
    event.at_seconds = UnitDraw(stall_rng) * chaos.window_seconds;
    event.slot = static_cast<std::size_t>(stall_rng.Next() % num_workers);
    event.stall_seconds = chaos.stall_seconds;
    plan.push_back(event);
  }
  // Startup crashes are not timed events — they poison the first N
  // spawns — but they ride in the plan so one trace shows the whole
  // injected history. at_seconds 0, slot = spawn ordinal.
  for (std::size_t c = 0; c < chaos.startup_crashes; ++c) {
    ProcessFaultEvent event;
    event.kind = ProcessFaultEvent::Kind::kStartupCrash;
    event.at_seconds = 0.0;
    event.slot = c;
    plan.push_back(event);
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const ProcessFaultEvent& a, const ProcessFaultEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return plan;
}

std::string FormatProcessFaultPlan(
    const std::vector<ProcessFaultEvent>& plan) {
  std::ostringstream out;
  for (const ProcessFaultEvent& event : plan) {
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "%.3f", event.at_seconds);
    switch (event.kind) {
      case ProcessFaultEvent::Kind::kKill:
        out << "t=" << time_buf << " slot=" << event.slot << " kill\n";
        break;
      case ProcessFaultEvent::Kind::kStall: {
        char stall_buf[32];
        std::snprintf(stall_buf, sizeof(stall_buf), "%.3f",
                      event.stall_seconds);
        out << "t=" << time_buf << " slot=" << event.slot
            << " stall=" << stall_buf << "\n";
        break;
      }
      case ProcessFaultEvent::Kind::kStartupCrash:
        out << "spawn=" << event.slot << " startup-crash\n";
        break;
    }
  }
  return out.str();
}

void SupervisorOptions::Validate() const {
  if (num_workers == 0) {
    throw util::FatalError("supervisor: num_workers must be >= 1");
  }
  if (backoff_initial_seconds < 0.0 || backoff_max_seconds < 0.0 ||
      backoff_multiplier < 1.0) {
    throw util::FatalError(
        "supervisor: backoff needs initial/max >= 0 and multiplier >= 1");
  }
  if (max_restarts_in_window == 0 || restart_window_seconds <= 0.0) {
    throw util::FatalError(
        "supervisor: breaker needs max_restarts_in_window >= 1 and a "
        "positive window");
  }
  if (drain_grace_seconds < 0.0) {
    throw util::FatalError("supervisor: drain_grace_seconds must be >= 0");
  }
  chaos.Validate();
}

std::string SupervisorReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"spawned\": " << spawned << ",\n";
  out << "  \"restarts\": " << restarts << ",\n";
  out << "  \"rolled\": " << rolled << ",\n";
  out << "  \"crashes\": " << crashes << ",\n";
  out << "  \"startup_crashes\": " << startup_crashes << ",\n";
  out << "  \"injected_kills\": " << injected_kills << ",\n";
  out << "  \"injected_stalls\": " << injected_stalls << ",\n";
  out << "  \"breaker_open\": " << (breaker_open ? "true" : "false") << ",\n";
  char wall_buf[32];
  std::snprintf(wall_buf, sizeof(wall_buf), "%.3f", wall_seconds);
  out << "  \"wall_seconds\": " << wall_buf << ",\n";
  out << "  \"slots\": [";
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const SlotStatus& s = slots[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"slot\": " << s.slot << ", \"pid\": " << s.pid
        << ", \"spawns\": " << s.spawns << ", \"last_respawn_reason\": \""
        << s.last_respawn_reason << "\"";
    if (!s.annotation.empty()) out << ", " << s.annotation;
    out << "}";
  }
  out << (slots.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Supervisor::Supervisor(WorkerMain worker_main, SupervisorOptions options)
    : worker_main_(std::move(worker_main)), options_(options) {
  FS_CHECK_MSG(worker_main_ != nullptr, "Supervisor needs a worker_main");
  options_.Validate();
}

double Supervisor::BackoffSeconds(std::size_t consecutive_crashes) const {
  if (consecutive_crashes == 0) return 0.0;
  double backoff = options_.backoff_initial_seconds;
  for (std::size_t i = 1;
       i < consecutive_crashes && backoff < options_.backoff_max_seconds;
       ++i) {
    backoff *= options_.backoff_multiplier;
  }
  return std::min(backoff, options_.backoff_max_seconds);
}

std::size_t Supervisor::LiveWorkers() const {
  std::size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.pid > 0) ++live;
  }
  return live;
}

void Supervisor::SpawnWorker(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  const std::size_t spawn_ordinal = report_.spawned;
  const bool crash_on_start = slot.startup_crash_next;
  slot.startup_crash_next = false;

  if (options_.hooks.prepare_spawn) options_.hooks.prepare_spawn(slot_index);

  const pid_t pid = ::fork();
  if (pid < 0) {
    // Treat a failed fork like a crashed spawn: back off and retry, so a
    // transient EAGAIN (pid pressure) cannot take the tier down.
    slot.pid = -1;
    slot.consecutive_crashes += 1;
    slot.respawn_pending = true;
    slot.next_spawn_reason = "fork-failed";
    slot.respawn_at = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              BackoffSeconds(slot.consecutive_crashes)));
    return;
  }
  if (pid == 0) {
    // Child. Crash-only hygiene: drop inherited shutdown state (the
    // parent's guard flag is ours too after fork), then run the worker
    // and _exit without unwinding through supervisor state — a worker
    // that "returns" must not run the parent's destructors or atexit
    // handlers.
    util::ClearShutdownRequest();
    g_hup_requested = 0;
    if (crash_on_start) {
      ::_exit(kStartupCrashExit);  // injected boot failure
    }
    int rc = 1;
    try {
      rc = worker_main_(slot_index, spawn_ordinal);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[worker %zu] fatal: %s\n", slot_index, e.what());
      rc = 1;
    } catch (...) {
      rc = 1;
    }
    ::_exit(rc);
  }
  // Parent.
  slot.pid = pid;
  slot.spawned_at = std::chrono::steady_clock::now();
  slot.respawn_pending = false;
  slot.shutting_down = false;
  slot.last_respawn_reason = slot.next_spawn_reason;
  slot.spawns += 1;
  report_.spawned += 1;
  if (options_.hooks.worker_spawned) {
    options_.hooks.worker_spawned(slot_index, pid);
  }
}

void Supervisor::RecordRestartForBreaker() {
  const auto now = std::chrono::steady_clock::now();
  restart_times_.push_back(now);
  const auto cutoff =
      now - std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.restart_window_seconds));
  restart_times_.erase(
      std::remove_if(restart_times_.begin(), restart_times_.end(),
                     [cutoff](auto t) { return t < cutoff; }),
      restart_times_.end());
  if (restart_times_.size() > options_.max_restarts_in_window) {
    report_.breaker_open = true;
  }
}

void Supervisor::ReapWorkers() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.pid != pid) continue;
      slot.pid = -1;
      if (slot.shutting_down) {
        // Expected exit (BeginSlotShutdown): not a crash, no backoff, no
        // breaker pressure — the supervisor asked for this. Respawn at
        // once so the slot's arc goes back live as fast as the fork.
        slot.shutting_down = false;
        slot.consecutive_crashes = 0;
        slot.respawn_pending = true;
        slot.respawn_at = now;
        slot.next_spawn_reason = slot.pending_reason;
        if (slot.pending_reason == "rolled") report_.rolled += 1;
        if (options_.hooks.worker_down) {
          options_.hooks.worker_down(i, slot.pending_reason);
        }
        break;
      }
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      // A clean self-exit outside a rolling restart is still a failure
      // of the supervision contract (workers serve until told), but the
      // restart itself is what matters; count it as a crash too.
      report_.crashes += (clean ? 0 : 1);
      const bool startup_crash =
          WIFEXITED(status) && WEXITSTATUS(status) == kStartupCrashExit;
      if (startup_crash) {
        report_.startup_crashes += 1;
      }
      slot.next_spawn_reason =
          startup_crash ? "startup-crash" : (clean ? "clean-exit" : "crash");
      const bool was_stable =
          Seconds(now - slot.spawned_at) >= options_.stable_seconds;
      slot.consecutive_crashes =
          was_stable ? 1 : slot.consecutive_crashes + 1;
      slot.respawn_pending = true;
      slot.respawn_at =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        BackoffSeconds(slot.consecutive_crashes)));
      report_.restarts += 1;
      RecordRestartForBreaker();
      if (options_.hooks.worker_down) {
        options_.hooks.worker_down(i, slot.next_spawn_reason);
      }
      break;
    }
  }
}

void Supervisor::FireDueFaults() {
  const double elapsed = Seconds(std::chrono::steady_clock::now() - start_);
  while (next_fault_ < fault_plan_.size() &&
         fault_plan_[next_fault_].at_seconds <= elapsed) {
    const ProcessFaultEvent& event = fault_plan_[next_fault_];
    if (event.kind == ProcessFaultEvent::Kind::kStartupCrash) {
      ++next_fault_;  // consumed at spawn time, not here
      continue;
    }
    // Land on the planned slot if alive, else the first live worker; if
    // nobody is alive yet (everyone mid-backoff), hold the event.
    std::size_t victim = slots_.size();
    if (slots_[event.slot].pid > 0) {
      victim = event.slot;
    } else {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].pid > 0) {
          victim = i;
          break;
        }
      }
    }
    if (victim == slots_.size()) break;  // nobody alive: retry next tick
    if (event.kind == ProcessFaultEvent::Kind::kKill) {
      ::kill(slots_[victim].pid, SIGKILL);
      report_.injected_kills += 1;
      ++next_fault_;
      // At most one kill per tick: the victim must be reaped before the
      // next event fires, or a same-tick second kill would land on the
      // already-dying pid and silently merge two planned faults into one
      // observed crash — breaking the drill's `restarts == kills` ledger.
      break;
    }
    ::kill(slots_[victim].pid, SIGSTOP);
    report_.injected_stalls += 1;
    pending_conts_.push_back(
        {std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(event.stall_seconds)),
         victim, slots_[victim].pid});
    ++next_fault_;
  }

  const auto now = std::chrono::steady_clock::now();
  for (auto it = pending_conts_.begin(); it != pending_conts_.end();) {
    if (it->due > now) {
      ++it;
      continue;
    }
    // Only wake the exact process we stopped: if the slot's pid moved
    // on, the stalled worker is already dead — signalling the number
    // again could hit a recycled pid.
    if (slots_[it->slot].pid == it->pid) {
      ::kill(it->pid, SIGCONT);
    }
    it = pending_conts_.erase(it);
  }
}

void Supervisor::HandleRollingRestart() {
  // One slot at a time, oldest first: SIGTERM → graceful drain (the
  // worker finishes in-flight frames; new connections go to siblings) →
  // respawn → next. The grace/SIGKILL escalation bounds a worker that
  // ignores SIGTERM.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pid <= 0) continue;
    ::kill(slot.pid, SIGTERM);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.drain_grace_seconds));
    bool reaped = false;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid) {
        reaped = true;
        break;
      }
      if (r < 0 && errno == ECHILD) {
        reaped = true;  // already reaped elsewhere
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(kTickMs));
    }
    if (!reaped) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, nullptr, 0);
    }
    slot.pid = -1;
    slot.consecutive_crashes = 0;  // a rolled worker did nothing wrong
    slot.next_spawn_reason = "rolled";
    if (options_.hooks.worker_down) options_.hooks.worker_down(i, "rolled");
    SpawnWorker(i);
    report_.rolled += 1;
  }
}

void Supervisor::DrainAll() {
  for (Slot& slot : slots_) {
    if (slot.pid > 0) ::kill(slot.pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.drain_grace_seconds));
  for (;;) {
    bool any_alive = false;
    for (Slot& slot : slots_) {
      if (slot.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid || (r < 0 && errno == ECHILD)) {
        slot.pid = -1;
      } else {
        any_alive = true;
      }
    }
    if (!any_alive) return;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(kTickMs));
  }
  for (Slot& slot : slots_) {
    if (slot.pid <= 0) continue;
    // SIGKILL lands even on a SIGSTOPped worker (KILL and CONT are the
    // two signals that cannot be held off), so an injected stall cannot
    // wedge shutdown.
    ::kill(slot.pid, SIGKILL);
    ::waitpid(slot.pid, nullptr, 0);
    slot.pid = -1;
  }
}

namespace {
// Saved SIGHUP disposition across Begin()/End(). File-static rather than
// a member so the header stays free of <csignal>; supervisors are "not
// reentrant" by contract and never nested.
struct sigaction g_old_hup;
}  // namespace

void Supervisor::Begin() {
  FS_CHECK_MSG(!began_, "Supervisor::Begin() called twice");
  began_ = true;
  report_ = SupervisorReport{};
  slots_.assign(options_.num_workers, Slot{});
  fault_plan_ = BuildProcessFaultPlan(options_.chaos, options_.num_workers);
  next_fault_ = 0;
  startup_crashes_left_ = options_.chaos.startup_crashes;
  pending_conts_.clear();
  restart_times_.clear();
  start_ = std::chrono::steady_clock::now();

  // SIGHUP → rolling restart, for this supervision span only.
  struct sigaction hup_action {};
  hup_action.sa_handler = HupHandler;
  sigemptyset(&hup_action.sa_mask);
  ::sigaction(SIGHUP, &hup_action, &g_old_hup);
  g_hup_requested = 0;

  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (startup_crashes_left_ > 0) {
      slots_[i].startup_crash_next = true;
      --startup_crashes_left_;
    }
    SpawnWorker(i);
  }
}

void Supervisor::Step() {
  ReapWorkers();
  FireDueFaults();
  const auto now = std::chrono::steady_clock::now();
  // Escalate slot shutdowns that outlived their grace: SIGKILL cannot be
  // ignored, and the subsequent reap still classifies the exit as the
  // expected `pending_reason`.
  for (Slot& slot : slots_) {
    if (slot.shutting_down && slot.pid > 0 && now >= slot.shutdown_deadline) {
      ::kill(slot.pid, SIGKILL);
      slot.shutdown_deadline =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(1.0));
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pid > 0 || !slot.respawn_pending || slot.respawn_at > now) {
      continue;
    }
    if (startup_crashes_left_ > 0) {
      slot.startup_crash_next = true;
      --startup_crashes_left_;
    }
    SpawnWorker(i);
  }
}

void Supervisor::FillSlotStatus() {
  report_.slots.clear();
  report_.slots.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    SlotStatus status;
    status.slot = i;
    status.pid = slots_[i].pid;
    status.spawns = slots_[i].spawns;
    status.last_respawn_reason = slots_[i].last_respawn_reason;
    if (options_.hooks.slot_annotation) {
      status.annotation = options_.hooks.slot_annotation(i);
    }
    report_.slots.push_back(std::move(status));
  }
}

SupervisorReport Supervisor::End() {
  FS_CHECK_MSG(began_, "Supervisor::End() without Begin()");
  // Snapshot slot status before the drain wipes the pids — the report
  // should show who was serving, not a row of -1s.
  FillSlotStatus();
  DrainAll();
  ::sigaction(SIGHUP, &g_old_hup, nullptr);
  report_.wall_seconds = Seconds(std::chrono::steady_clock::now() - start_);
  began_ = false;
  return report_;
}

bool Supervisor::ConsumeHupRequest() {
  if (g_hup_requested == 0) return false;
  g_hup_requested = 0;
  return true;
}

bool Supervisor::StopRequested() const {
  return stop_.load(std::memory_order_relaxed) || util::ShutdownRequested();
}

pid_t Supervisor::SlotPid(std::size_t slot) const {
  FS_CHECK_MSG(slot < slots_.size(), "SlotPid: slot out of range");
  return slots_[slot].pid;
}

void Supervisor::BeginSlotShutdown(std::size_t slot_index,
                                   const std::string& reason) {
  FS_CHECK_MSG(slot_index < slots_.size(),
               "BeginSlotShutdown: slot out of range");
  Slot& slot = slots_[slot_index];
  if (slot.pid <= 0 || slot.shutting_down) return;
  slot.shutting_down = true;
  slot.pending_reason = reason;
  slot.shutdown_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.drain_grace_seconds));
  ::kill(slot.pid, SIGTERM);
}

SupervisorReport Supervisor::Run() {
  Begin();
  while (!StopRequested() && !report_.breaker_open) {
    Step();
    if (ConsumeHupRequest()) {
      HandleRollingRestart();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kTickMs));
  }
  return End();
}

void Supervisor::Stop() { stop_.store(true, std::memory_order_relaxed); }

}  // namespace fadesched::service
