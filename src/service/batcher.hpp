// Bounded MPMC request queue + worker pool with deadline-aware admission
// control.
//
// Producers (the server's connection threads, the bench, tests) Submit()
// requests; N workers pop and run the handler. Three admission outcomes,
// mapped onto the util::error taxonomy so CLI callers inherit the
// repo-wide exit-code contract:
//
//   * queue full  → kShed    (ErrorKind::kTransient, exit 1 — retry later)
//   * draining    → kShed    (ErrorKind::kInterrupted, exit 3)
//   * deadline passed while queued → kTimeout (ErrorKind::kTimeout, exit 3)
//
// Backpressure is shedding, not blocking: a full queue answers
// immediately instead of stalling the producer, so one slow scenario
// cannot wedge every connection. Every Submit() is answered exactly once
// — shed/timeout responses are fulfilled without running the handler, and
// handler exceptions are classified (util::ClassifyException) into kError
// responses rather than propagating into a worker thread.
//
// Drain() stops admission, lets queued + in-flight requests complete, and
// joins the workers; it is idempotent and also runs from the destructor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "service/request.hpp"
#include "util/deadline.hpp"

namespace fadesched::service {

struct BatcherOptions {
  /// Worker threads executing the handler.
  std::size_t num_workers = 4;
  /// Queue slots; a Submit() beyond this sheds. Must be ≥ 1.
  std::size_t queue_capacity = 256;
  /// Applied to requests with deadline_seconds == 0; 0 = no deadline.
  double default_deadline_seconds = 0.0;
};

class RequestBatcher {
 public:
  /// Executes one admitted request. Runs on worker threads; may throw
  /// (classified into a kError response). Must not block indefinitely.
  using Handler = std::function<SchedulingResponse(const SchedulingRequest&)>;

  /// `metrics` may be null. Workers start immediately.
  RequestBatcher(Handler handler, BatcherOptions options = {},
                 ServiceMetrics* metrics = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues and returns the eventual response. Shed/timeout outcomes
  /// resolve the future with the corresponding status — the future never
  /// carries an exception and is always fulfilled.
  std::future<SchedulingResponse> Submit(SchedulingRequest request);

  /// Submit + wait (convenience for synchronous callers).
  SchedulingResponse Execute(SchedulingRequest request);

  /// Stops admission, completes queued + in-flight work, joins workers.
  /// Idempotent; safe to call concurrently with Submit().
  void Drain();

  [[nodiscard]] bool Draining() const;
  [[nodiscard]] std::size_t QueueDepth() const;

 private:
  struct Item {
    SchedulingRequest request;
    std::promise<SchedulingResponse> promise;
    util::Deadline deadline;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  void Reply(Item& item, SchedulingResponse response,
             std::chrono::steady_clock::time_point enqueued) const;

  Handler handler_;
  BatcherOptions options_;
  ServiceMetrics* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fadesched::service
