// Bounded MPMC request queue + worker pool with deadline-aware admission
// control.
//
// Producers (the server's connection threads, the bench, tests) Submit()
// requests; N workers pop and run the handler. Three admission outcomes,
// mapped onto the util::error taxonomy so CLI callers inherit the
// repo-wide exit-code contract:
//
//   * queue full  → kShed    (ErrorKind::kTransient, exit 1 — retry later)
//   * overloaded  → kShed    (ErrorKind::kTransient; adaptive, see below)
//   * draining    → kShed    (ErrorKind::kInterrupted, exit 3)
//   * deadline passed while queued → kTimeout (ErrorKind::kTimeout, exit 3)
//
// Backpressure is shedding, not blocking: a full queue answers
// immediately instead of stalling the producer, so one slow scenario
// cannot wedge every connection. Every Submit() is answered exactly once
// — shed/timeout responses are fulfilled without running the handler, and
// handler exceptions are classified (util::ClassifyException) into kError
// responses rather than propagating into a worker thread.
//
// On top of the hard capacity bound sits an OverloadController
// (overload.hpp): workers feed it the queue delay each request actually
// waited, and when that delay has exceeded the CoDel target for a full
// interval, Submit() sheds adaptively — cold-fingerprint requests first —
// long before the queue fills. Every shed response (adaptive or hard)
// carries a retry_after_ms hint derived from the live delay EWMA.
//
// The queue itself is two-lane with strict warm priority: admitted warm
// (cache-hit) requests are dequeued before any cold request, FIFO within
// each lane. Admission control alone cannot protect warm latency — the
// controller only reacts after a full interval of elevated delay, so a
// FIFO queue makes every warm request ride the cold backlog that built up
// during that window. Priority dequeue bounds a warm request's wait by
// warm work plus at most one in-flight cold build per worker. Cold
// requests can in principle starve while warm arrivals alone saturate the
// workers, but that is exactly the regime where the shedder is refusing
// cold anyway, and queued colds still time out at dequeue if they carry a
// deadline.
//
// Drain() stops admission, lets queued + in-flight requests complete, and
// joins the workers; it is idempotent and also runs from the destructor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "service/overload.hpp"
#include "service/request.hpp"
#include "util/deadline.hpp"

namespace fadesched::service {

struct BatcherOptions {
  /// Worker threads executing the handler.
  std::size_t num_workers = 4;
  /// Queue slots; a Submit() beyond this sheds. Must be ≥ 1.
  std::size_t queue_capacity = 256;
  /// Applied to requests with deadline_seconds == 0; 0 = no deadline.
  double default_deadline_seconds = 0.0;
  /// With ≥ 2 workers, dedicate one worker to the warm lane. Priority
  /// dequeue alone still lets every worker pick up a cold build when the
  /// warm lane is momentarily empty, so a warm request arriving a moment
  /// later waits a full build anyway; a reserved worker bounds warm wait
  /// by warm work, period. Ignored with 1 worker (it must serve both).
  bool reserve_warm_worker = true;
  /// Adaptive admission control (overload.hpp). Set queue_delay_target_ms
  /// to 0 to disable and keep only the hard capacity bound.
  OverloadOptions overload;
};

class RequestBatcher {
 public:
  /// Executes one admitted request. Runs on worker threads; may throw
  /// (classified into a kError response). Must not block indefinitely.
  using Handler = std::function<SchedulingResponse(const SchedulingRequest&)>;

  /// `metrics` may be null. Workers start immediately.
  RequestBatcher(Handler handler, BatcherOptions options = {},
                 ServiceMetrics* metrics = nullptr);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues and returns the eventual response. Shed/timeout outcomes
  /// resolve the future with the corresponding status — the future never
  /// carries an exception and is always fulfilled. `cls` feeds the
  /// two-tier shedder; callers that cannot classify pass the default
  /// kWarm, which is only shed under ShedPolicy::kAll.
  std::future<SchedulingResponse> Submit(SchedulingRequest request,
                                         RequestClass cls = RequestClass::kWarm);

  /// Submit + wait (convenience for synchronous callers).
  SchedulingResponse Execute(SchedulingRequest request,
                             RequestClass cls = RequestClass::kWarm);

  /// The adaptive admission controller (live state: Overloaded(),
  /// Brownout(), QueueDelayEwmaSeconds()).
  [[nodiscard]] OverloadController& Overload() { return overload_; }

  /// Stops admission, completes queued + in-flight work, joins workers.
  /// Idempotent; safe to call concurrently with Submit().
  void Drain();

  [[nodiscard]] bool Draining() const;
  [[nodiscard]] std::size_t QueueDepth() const;

 private:
  struct Item {
    SchedulingRequest request;
    std::promise<SchedulingResponse> promise;
    util::Deadline deadline;
    std::chrono::steady_clock::time_point enqueued;
    RequestClass cls = RequestClass::kWarm;
  };

  void WorkerLoop(bool warm_only);
  void Reply(Item& item, SchedulingResponse response,
             std::chrono::steady_clock::time_point enqueued) const;

  void SetDepthGauge(std::size_t depth) const;

  Handler handler_;
  BatcherOptions options_;
  ServiceMetrics* metrics_;
  OverloadController overload_;

  [[nodiscard]] std::size_t DepthLocked() const {
    return warm_queue_.size() + cold_queue_.size();
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Two-lane queue, strict warm priority (see file comment). The shared
  // capacity bound applies to the sum.
  std::deque<Item> warm_queue_;
  std::deque<Item> cold_queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fadesched::service
