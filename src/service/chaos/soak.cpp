#include "service/chaos/soak.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "service/chaos/faulty_transport.hpp"
#include "service/protocol.hpp"
#include "testing/fuzzer.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {

namespace {

std::vector<fadesched::testing::ScenarioCase> BuildPool(
    const ChaosSoakOptions& options) {
  fadesched::testing::FuzzerOptions fuzz;
  fuzz.min_links = options.links;
  fuzz.max_links = options.links;
  fuzz.extreme_params = false;
  fuzz.weighted_rates = false;
  fuzz.with_noise = false;
  fadesched::testing::ScenarioFuzzer fuzzer(options.seed, fuzz);
  std::vector<fadesched::testing::ScenarioCase> pool;
  pool.reserve(options.pool_size);
  for (std::size_t i = 0; i < options.pool_size; ++i) {
    pool.push_back(fuzzer.Case(i));
  }
  return pool;
}

/// Per-request terminal outcome codes written into the ledger.
constexpr char kNone = 0;
constexpr char kOk = 'o';
constexpr char kCorrupted = 'c';
constexpr char kFatal = 'f';
constexpr char kGaveUp = 'g';
constexpr char kUnserved = 'u';

}  // namespace

void ChaosSoakOptions::Validate() const {
  if (num_requests == 0) {
    throw util::FatalError("chaos soak: num_requests must be positive");
  }
  if (num_clients == 0) {
    throw util::FatalError("chaos soak: num_clients must be positive");
  }
  if (pool_size == 0) {
    throw util::FatalError("chaos soak: pool_size must be positive");
  }
  plan.Validate();
  retry.Validate();
  const bool in_process = endpoint.unix_socket_path.empty() &&
                          endpoint.port <= 0;
  if (drain_mid_run && !in_process && !on_drain) {
    throw util::FatalError(
        "chaos soak: drain_mid_run needs an in-process server (empty "
        "endpoint) or an on_drain hook");
  }
}

std::string ChaosSoakReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"sent\": " << sent << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"failed_fatal\": " << failed_fatal << ",\n";
  out << "  \"gave_up\": " << gave_up << ",\n";
  out << "  \"unserved_after_drain\": " << unserved_after_drain << ",\n";
  out << "  \"lost\": " << lost << ",\n";
  out << "  \"duplicated\": " << duplicated << ",\n";
  out << "  \"corrupted\": " << corrupted << ",\n";
  out << "  \"retries\": " << retries << ",\n";
  out << "  \"reconnects\": " << reconnects << ",\n";
  out << "  \"stale_discarded\": " << stale_discarded << ",\n";
  out << "  \"corruption_detected\": " << corruption_detected << ",\n";
  out << "  \"faults_injected\": " << faults_injected << ",\n";
  out << "  \"injected_by_family\": {";
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    if (f > 0) out << ", ";
    out << '"' << FaultFamilyName(static_cast<FaultFamily>(f))
        << "\": " << injected_by_family[f];
  }
  out << "},\n";
  out << "  \"drained\": " << (drained ? "true" : "false") << ",\n";
  out << "  \"first_failure\": \"" << first_failure << "\",\n";
  out.precision(6);
  out << std::fixed;
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"zero_loss\": " << (Ok() ? "true" : "false") << "\n";
  out << "}\n";
  return out.str();
}

ChaosSoakReport RunChaosSoak(const ChaosSoakOptions& options) {
  options.Validate();
  const bool in_process = options.endpoint.unix_socket_path.empty() &&
                          options.endpoint.port <= 0;

  Endpoint endpoint = options.endpoint;
  std::unique_ptr<Server> server;
  std::thread serving;
  std::exception_ptr serve_error;
  if (in_process) {
    ServerOptions server_options = options.server;
    server_options.unix_socket_path =
        "/tmp/fs_chaos_" + std::to_string(::getpid()) + "_" +
        std::to_string(options.seed) + ".sock";
    server_options.port = 0;
    server = std::make_unique<Server>(server_options);
    server->Start();
    endpoint.unix_socket_path = server_options.unix_socket_path;
    serving = std::thread([&server, &serve_error] {
      try {
        server->Serve();
      } catch (...) {
        serve_error = std::current_exception();
      }
    });
  }

  const std::vector<fadesched::testing::ScenarioCase> pool =
      BuildPool(options);

  // The ledger: exactly-one-terminal-outcome per request, by slot. Slots
  // are partitioned statically (request i → worker i mod num_clients), so
  // the per-slot writes are single-writer and the partition keeps each
  // worker's fault stream independent of the others' pace.
  std::vector<unsigned char> outcome_count(options.num_requests, 0);
  std::vector<char> outcome(options.num_requests, kNone);

  // First OK line per pool entry; every later OK must match
  // byte-for-byte.
  std::vector<std::string> expected(pool.size());
  std::mutex expected_mutex;

  std::mutex failure_mutex;
  std::string first_failure;
  const auto record_failure = [&](const std::string& message) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    if (first_failure.empty()) first_failure = message;
  };

  FaultTrace trace;
  ServiceMetrics local_metrics;
  ServiceMetrics* metrics =
      in_process ? &server->Service().Metrics() : &local_metrics;

  std::atomic<std::size_t> done{0};
  std::atomic<bool> drained{false};
  const std::size_t drain_at =
      options.num_requests >= 2 ? options.num_requests / 2 : 1;

  struct WorkerSums {
    std::size_t retries = 0;
    std::size_t reconnects = 0;
    std::size_t stale = 0;
    std::size_t corruption = 0;
  };
  std::vector<WorkerSums> sums(options.num_clients);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options.num_clients);
  for (std::size_t w = 0; w < options.num_clients; ++w) {
    workers.emplace_back([&, w] {
      RetryOptions retry = options.retry;
      retry.jitter_seed = options.seed ^ (0x5bd1e9955bd1e995ULL * (w + 1));
      RetryingClient client(
          std::make_unique<FaultyTransport>(
              std::make_unique<SocketTransport>(endpoint, options.client),
              options.plan, w, &trace, metrics),
          retry, metrics);
      // Per-worker circuit breaker: once a post-drain request has
      // exhausted its retries against the vanished endpoint, later
      // requests are declared unserved immediately — one request per
      // worker still exercises the full typed-error retry ladder, the
      // rest need not re-prove the endpoint is gone.
      bool endpoint_gone = false;
      for (std::size_t i = w; i < options.num_requests;
           i += options.num_clients) {
        const std::size_t pool_index = i % pool.size();
        if (endpoint_gone && drained.load(std::memory_order_relaxed)) {
          ++outcome_count[i];
          outcome[i] = kUnserved;
          done.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        SchedulingRequest request;
        request.scenario = pool[pool_index];
        request.scheduler = options.scheduler;
        // One id per pool entry (not per request): identical content ⇒
        // identical wire bytes ⇒ the response must be byte-identical
        // too, cache hit or not.
        request.id = "p" + std::to_string(pool_index);
        char result = kGaveUp;
        try {
          const SchedulingResponse response = client.Call(request);
          if (response.Ok()) {
            result = kOk;
            const std::string line = FormatResponseLine(response);
            const std::lock_guard<std::mutex> lock(expected_mutex);
            std::string& first = expected[pool_index];
            if (first.empty()) {
              first = line;
            } else if (first != line) {
              result = kCorrupted;
              record_failure("pool entry " + std::to_string(pool_index) +
                             " served a divergent OK line: '" + line +
                             "' vs '" + first + "'");
            }
          } else {
            result = kFatal;
            record_failure("request " + std::to_string(i) +
                           " got a fatal response: " + response.message);
          }
        } catch (const util::HarnessError& e) {
          if (e.kind() == util::ErrorKind::kFatal) {
            result = kFatal;
          } else if (drained.load(std::memory_order_relaxed) ||
                     options.allow_unserved) {
            result = kUnserved;
            if (drained.load(std::memory_order_relaxed)) {
              endpoint_gone = true;
            }
          } else {
            result = kGaveUp;
          }
          if (result != kUnserved) {
            record_failure("request " + std::to_string(i) + ": " + e.what());
          }
        } catch (const std::exception& e) {
          result = kGaveUp;
          record_failure("request " + std::to_string(i) +
                         " (unclassified): " + e.what());
        }
        const CallStats& stats = client.LastCallStats();
        sums[w].retries += stats.attempts > 0 ? stats.attempts - 1 : 0;
        sums[w].reconnects += stats.reconnects;
        sums[w].stale += stats.stale_discarded;
        sums[w].corruption += stats.corruption_detected;
        ++outcome_count[i];
        outcome[i] = result;
        const std::size_t completed =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.drain_mid_run && completed == drain_at &&
            !drained.exchange(true)) {
          if (options.on_drain) {
            options.on_drain();
          } else if (server) {
            server->Stop();
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (in_process) {
    server->Stop();
    serving.join();
    if (serve_error) std::rethrow_exception(serve_error);
  }

  ChaosSoakReport report;
  report.sent = options.num_requests;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    if (outcome_count[i] == 0) {
      ++report.lost;
      continue;
    }
    if (outcome_count[i] > 1) ++report.duplicated;
    switch (outcome[i]) {
      case kOk: ++report.ok; break;
      case kCorrupted: ++report.corrupted; break;
      case kFatal: ++report.failed_fatal; break;
      case kUnserved: ++report.unserved_after_drain; break;
      default: ++report.gave_up; break;
    }
  }
  for (const WorkerSums& sum : sums) {
    report.retries += sum.retries;
    report.reconnects += sum.reconnects;
    report.stale_discarded += sum.stale;
    report.corruption_detected += sum.corruption;
  }
  report.faults_injected = trace.Count();
  report.injected_by_family = trace.CountsByFamily();
  report.drained = drained.load();
  report.first_failure = first_failure;
  report.trace = trace.Format();
  return report;
}

std::string ShrinkChaosFailure(const ChaosSoakOptions& options) {
  ChaosSoakOptions probe = options;
  // Each probe owns a fresh in-process server; the drain is not a fault
  // family, so it is pinned off during shrinking.
  probe.endpoint = Endpoint{};
  probe.drain_mid_run = false;
  probe.on_drain = nullptr;
  ChaosPlan minimal = options.plan;
  // Greedy one-pass delta debugging over fault families: drop a family
  // whenever the failure still reproduces without it.
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    const FaultFamily family = static_cast<FaultFamily>(f);
    if (minimal.Probability(family) <= 0.0) continue;
    ChaosPlan candidate = minimal;
    candidate.SetProbability(family, 0.0);
    probe.plan = candidate;
    if (!RunChaosSoak(probe).Ok()) minimal = candidate;
  }
  return "chaos repro: seed=" + std::to_string(minimal.seed) +
         " requests=" + std::to_string(options.num_requests) +
         " clients=" + std::to_string(options.num_clients) +
         " pool=" + std::to_string(options.pool_size) +
         " links=" + std::to_string(options.links) +
         " families: " + minimal.Describe();
}

}  // namespace fadesched::service::chaos
