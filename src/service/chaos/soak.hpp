// Zero-loss chaos soak: drives a scheduling server through a seeded
// storm of injected socket faults and proves, with an explicit
// per-request ledger, that the service tier loses nothing:
//
//   * every request reaches exactly one terminal outcome (the ledger
//     counts outcomes per slot — 0 means lost, 2 means duplicated);
//   * every OK response is byte-identical to every other OK for the
//     same pool entry (the service determinism contract, checked
//     through corruption — a flipped bit must be caught by the
//     checksums, never served);
//   * retries are bounded (the retrying client's max_attempts), and
//   * a SIGTERM-style drain mid-storm is clean: requests admitted
//     before the drain are answered, requests after it fail fast with
//     typed errors and are counted unserved, not lost.
//
// Determinism: for a fixed seed (and drain_mid_run off), the soak's
// fault trace is byte-identical across runs — workers own a static
// partition of the request sequence (request i belongs to worker
// i mod num_clients), each (worker, connection) fault stream is a pure
// function of the seed, and the trace is sorted by coordinates. CI runs
// the same seed twice and `cmp`s the traces.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "service/chaos/chaos_plan.hpp"
#include "service/chaos/retry_client.hpp"
#include "service/chaos/transport.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace fadesched::service::chaos {

struct ChaosSoakOptions {
  /// Where to soak. An empty endpoint (no unix path, port 0) spins up an
  /// in-process server on a temporary Unix socket — the default, and
  /// required for drain_mid_run.
  Endpoint endpoint;

  std::size_t num_requests = 1000;
  std::size_t num_clients = 4;
  /// Distinct scenario instances cycled through (smaller pool → more
  /// cache hits and more same-content byte-identity checks).
  std::size_t pool_size = 16;
  std::size_t links = 30;
  std::uint64_t seed = 1;
  std::string scheduler = "rle";

  ChaosPlan plan;
  RetryOptions retry;
  ClientOptions client{/*connect*/ 5.0, /*io*/ 5.0};

  /// Halfway through the request sequence, trigger a graceful drain (the
  /// in-process server's Stop(), or `on_drain` when set — the CLI raises
  /// SIGTERM through it to exercise the signal path). Implies
  /// allow_unserved.
  bool drain_mid_run = false;
  /// Count requests that exhausted retries *after* the drain began as
  /// unserved instead of failing the soak — they were refused loudly,
  /// not lost.
  bool allow_unserved = false;
  std::function<void()> on_drain;

  /// In-process server configuration (listener fields are overridden).
  ServerOptions server;

  void Validate() const;
};

struct ChaosSoakReport {
  std::size_t sent = 0;
  std::size_t ok = 0;
  /// Genuine fatal error responses (should be 0 — the pool is valid).
  std::size_t failed_fatal = 0;
  /// Retries exhausted with no drain in progress — a loud loss.
  std::size_t gave_up = 0;
  /// Retries exhausted after the drain began (allow_unserved only).
  std::size_t unserved_after_drain = 0;
  /// Ledger violations: slots with no terminal outcome / more than one.
  std::size_t lost = 0;
  std::size_t duplicated = 0;
  /// OK responses whose line diverged from the first OK for the same
  /// pool entry — corruption that got past every checksum.
  std::size_t corrupted = 0;

  std::size_t retries = 0;  ///< attempts beyond the first, summed
  std::size_t reconnects = 0;
  std::size_t stale_discarded = 0;
  std::size_t corruption_detected = 0;

  std::size_t faults_injected = 0;
  std::array<std::size_t, kNumFaultFamilies> injected_by_family{};
  bool drained = false;  ///< the mid-run drain actually triggered
  double wall_seconds = 0.0;
  /// First non-unserved failure message (empty on a clean soak) — the
  /// one-line diagnosis CI prints before the full report.
  std::string first_failure;

  /// Deterministic formatted fault trace (chaos_plan.hpp).
  std::string trace;

  /// The zero-loss verdict: nothing lost, duplicated, corrupted, failed
  /// fatal, or given up. Unserved-after-drain is allowed — that is what
  /// a clean drain looks like from the outside.
  [[nodiscard]] bool Ok() const {
    return lost == 0 && duplicated == 0 && corrupted == 0 &&
           failed_fatal == 0 && gave_up == 0;
  }

  [[nodiscard]] std::string ToJson() const;
};

ChaosSoakReport RunChaosSoak(const ChaosSoakOptions& options);

/// After a failing soak: re-runs with each enabled fault family disabled
/// in turn, keeping the failure reproducing with as few families as
/// possible. Returns a one-line reproducer ("chaos repro: seed=S
/// requests=N families: recv-kill=0.05") — the artifact CI uploads.
/// Requires an in-process endpoint (each probe needs a fresh server).
std::string ShrinkChaosFailure(const ChaosSoakOptions& options);

}  // namespace fadesched::service::chaos
