// Hardened client: wraps a Transport with bounded retries so that every
// fault the chaos layer (or a real network) can inject is either
// absorbed — the caller still gets exactly one correct response — or
// surfaced as a typed error after a bounded number of attempts. Never
// hangs, never returns a wrong or stale response, never retries
// unboundedly.
//
// Retry policy, by error class:
//   - transport failures and timeouts (connect refused, reset, stalled
//     peer) → reconnect + retry with exponential backoff + jitter;
//   - retryable response statuses (shed, timeout, drain-interrupted, and
//     transient execution errors) → same; a shed/err response carrying a
//     retry_after_ms hint overrides the ladder for the next backoff (the
//     server derives the hint from its live queue-delay EWMA, so it knows
//     better than our blind exponential), jittered identically;
//   - wire corruption, detected either client-side (response line fails
//     its sum= check or does not parse — the server formats every line
//     it writes, so garbage can only mean damage) or server-side (an
//     error response naming *our* frame as malformed, which a client
//     that formats via FormatRequestFrame never legitimately sends) →
//     same, counted separately;
//   - genuine fatal responses (unknown scheduler, infeasible instance)
//     → returned to the caller as-is, first attempt or not;
//   - local usage errors (kFatal from our own stack) → rethrown.
//
// Idempotency: a request's wire bytes are a pure function of its content
// (FormatRequestFrame is deterministic), and the service is
// deterministic + cached, so re-sending the same frame is safe — the
// worst case is a duplicate execution that produces the byte-identical
// response. Stale responses from an earlier attempt (e.g. a duplicate
// delivery or an abandoned read) are discarded by id mismatch;
// connection-level errors carry id "-" and are treated as applying to
// the in-flight request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "service/chaos/transport.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"

namespace fadesched::service::chaos {

struct RetryOptions {
  /// Attempts per Call (>= 1); exhaustion throws kTransient naming the
  /// last underlying error.
  std::size_t max_attempts = 10;
  /// Backoff before attempt n+1: initial * multiplier^(n-1), capped at
  /// max, scaled by a uniform jitter factor in [1-j, 1+j].
  double initial_backoff_seconds = 0.005;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
  double jitter_fraction = 0.2;
  /// Stale/duplicate response lines discarded within one attempt before
  /// giving up on the connection (prevents a duplicate storm from
  /// pinning an attempt forever).
  std::size_t max_stale_reads = 8;
  /// Seed for the jitter stream (deterministic backoff schedules in
  /// tests).
  std::uint64_t jitter_seed = 1;

  void Validate() const;
};

/// Per-Call diagnostics, reset at the start of each Call.
struct CallStats {
  std::size_t attempts = 0;
  std::size_t reconnects = 0;
  std::size_t stale_discarded = 0;
  std::size_t corruption_detected = 0;
  std::size_t retry_after_honored = 0;  ///< backoffs driven by a server hint
  /// Every backoff actually slept (seconds, post-jitter), in order —
  /// what the deterministic-jitter tests pin.
  std::vector<double> backoffs;
};

class RetryingClient {
 public:
  /// `metrics` may be null; when given, chaos_recovered counts Calls
  /// that succeeded after at least one failed attempt.
  explicit RetryingClient(std::unique_ptr<Transport> transport,
                          RetryOptions options = {},
                          ServiceMetrics* metrics = nullptr);

  /// Sends the request and returns its terminal response (OK or a
  /// genuine fatal error response). Throws util::HarnessError: kFatal on
  /// local usage errors, kTransient/kTimeout/kInterrupted when retries
  /// are exhausted (the message names the last underlying failure).
  SchedulingResponse Call(const SchedulingRequest& request);

  [[nodiscard]] const CallStats& LastCallStats() const { return stats_; }
  [[nodiscard]] Transport& TransportForTest() { return *transport_; }

 private:
  [[nodiscard]] double NextBackoffSeconds(std::size_t attempt);

  std::unique_ptr<Transport> transport_;
  RetryOptions options_;
  ServiceMetrics* metrics_ = nullptr;
  rng::Xoshiro256 jitter_;
  CallStats stats_;
  /// Server retry_after_ms hint from the last retryable response, in
  /// seconds; consumed by the next NextBackoffSeconds. 0 = no hint.
  double hinted_backoff_seconds_ = 0.0;
};

}  // namespace fadesched::service::chaos
