// Seeded fault model for the service tier. A ChaosPlan is a set of
// per-operation fault probabilities, one per fault family; the chaos
// transport derives an independent SplitMix64→xoshiro stream per
// (worker, connection-attempt) pair from `seed`, so a given seed yields
// the exact same fault sequence no matter how the OS schedules threads —
// the whole point is that a failing soak is replayable from its seed
// alone.
//
// Every injected fault is recorded in a FaultTrace as a (worker,
// connection, op, family, detail) event. The formatted trace is sorted by
// those coordinates, which makes it byte-identical across runs of the
// same seed even though threads interleave differently — CI diffs two
// runs' traces with `cmp`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace fadesched::service::chaos {

/// The injectable fault families, one per failure mode of a real
/// network: refused/reset connects, corrupted or truncated or duplicated
/// writes, and stalled, corrupted, killed, or duplicated reads.
enum class FaultFamily {
  kConnectReset = 0,  ///< connect attempt fails with a reset
  kSendCorrupt,       ///< one byte of the outgoing frame is flipped
  kSendTruncate,      ///< connection dies after a prefix of the frame
  kSendDuplicate,     ///< the frame is delivered twice
  kRecvStall,         ///< the response never arrives (slow-loris peer)
  kRecvCorrupt,       ///< one byte of the response line is flipped
  kRecvKill,          ///< connection reset before the response line
  kRecvDuplicate,     ///< the response line is delivered twice
};

inline constexpr std::size_t kNumFaultFamilies = 8;

/// Stable kebab-case name ("connect-reset", "send-corrupt", ...).
const char* FaultFamilyName(FaultFamily family);

/// Per-operation fault probabilities, all in [0, 1]. The zero plan is
/// inert: Enabled() is false and the transport consumes no random draws,
/// so wrapping a transport with an all-zero plan is behaviorally
/// invisible (same idiom as distsim's FaultPlan).
struct ChaosPlan {
  double connect_reset = 0.0;
  double send_corrupt = 0.0;
  double send_truncate = 0.0;
  double send_duplicate = 0.0;
  double recv_stall = 0.0;
  double recv_corrupt = 0.0;
  double recv_kill = 0.0;
  double recv_duplicate = 0.0;

  /// How long an injected recv stall sleeps before surfacing as a
  /// timeout; kept short — it models wasted wall-clock, not a real 30 s
  /// hang.
  double stall_seconds = 0.02;

  /// Master seed; every (worker, connection) fault stream derives from
  /// it.
  std::uint64_t seed = 1;

  [[nodiscard]] bool Enabled() const;
  [[nodiscard]] double Probability(FaultFamily family) const;
  void SetProbability(FaultFamily family, double probability);

  /// All eight families at the same probability (the soak's default
  /// shape).
  [[nodiscard]] static ChaosPlan AllFamilies(double probability,
                                             std::uint64_t seed);

  /// One-line summary of the enabled families ("send-corrupt=0.02
  /// recv-kill=0.05"), used by reproducer files; "inert" when disabled.
  [[nodiscard]] std::string Describe() const;

  /// Throws util::FatalError on probabilities outside [0, 1] or a
  /// negative stall.
  void Validate() const;
};

/// Derives the fault stream for one connection attempt: seeded from
/// (plan.seed, worker, connection ordinal) via two SplitMix64 rounds, so
/// streams are independent and reproducible per coordinate.
rng::Xoshiro256 MakeFaultStream(const ChaosPlan& plan, std::uint64_t worker,
                                std::uint64_t connection);

/// One injected fault. `op` is the 1-based operation ordinal within the
/// connection (Send and ReadLine each count); `detail` is
/// family-specific (corrupted byte offset, truncation length, ...).
struct ChaosEvent {
  std::uint64_t worker = 0;
  std::uint64_t connection = 0;
  std::uint64_t op = 0;
  FaultFamily family = FaultFamily::kConnectReset;
  std::size_t detail = 0;
};

/// Thread-safe fault log. Format() sorts events by (worker, connection,
/// op, family) so the text is deterministic for a given seed regardless
/// of thread interleaving.
class FaultTrace {
 public:
  void Record(const ChaosEvent& event);

  [[nodiscard]] std::size_t Count() const;
  [[nodiscard]] std::size_t CountFamily(FaultFamily family) const;
  [[nodiscard]] std::array<std::size_t, kNumFaultFamilies> CountsByFamily()
      const;

  /// One line per event: "w<worker> c<connection> op<op> <family>
  /// detail=<n>".
  [[nodiscard]] std::string Format() const;

 private:
  mutable std::mutex mutex_;
  std::vector<ChaosEvent> events_;
};

}  // namespace fadesched::service::chaos
