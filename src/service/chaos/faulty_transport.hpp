// Fault-injecting Transport decorator. Wraps any inner Transport and,
// driven by a seeded per-(worker, connection) stream from the ChaosPlan,
// injects the eight fault families at their configured per-operation
// probabilities:
//
//   Connect   → connect-reset (throws before the inner connect runs)
//   Send      → send-corrupt (one byte XOR-flipped), send-truncate (a
//               prefix is delivered, then the connection dies),
//               send-duplicate (the frame is delivered twice)
//   ReadLine  → recv-stall (sleeps stall_seconds, then surfaces as
//               kTimeout without consuming the response — it stays
//               buffered in the dead connection), recv-kill (connection
//               closed before the line), recv-corrupt (one byte of the
//               delivered line flipped), recv-duplicate (the line is
//               queued for redelivery on the next ReadLine)
//
// Determinism contract: for a fixed plan seed, the fault decisions on
// connection attempt c of worker w are a pure function of (seed, w, c) —
// wall-clock, thread scheduling, and other workers never perturb the
// stream. Injected faults are recorded in the shared FaultTrace and
// counted in ServiceMetrics::chaos_injected when a metrics sink is
// given.
//
// Draw discipline (same as distsim::FaultInjector): a family whose
// probability is zero consumes no draws, so an inert plan leaves the
// stream untouched and disabling one family does not shift another
// family's decisions arbitrarily — only draws for enabled families
// advance the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "rng/xoshiro256.hpp"
#include "service/chaos/chaos_plan.hpp"
#include "service/chaos/transport.hpp"
#include "service/metrics.hpp"

namespace fadesched::service::chaos {

class FaultyTransport final : public Transport {
 public:
  /// `worker` namespaces this transport's fault streams; `trace` and
  /// `metrics` may be null (events are then only thrown, not recorded).
  FaultyTransport(std::unique_ptr<Transport> inner, ChaosPlan plan,
                  std::uint64_t worker, FaultTrace* trace = nullptr,
                  ServiceMetrics* metrics = nullptr);

  void Connect() override;
  void Close() override;
  [[nodiscard]] bool Connected() const override;
  void Send(const std::string& bytes) override;
  std::string ReadLine() override;

  /// Connection attempts so far (== the next attempt's ordinal).
  [[nodiscard]] std::uint64_t ConnectionAttempts() const {
    return connection_attempts_;
  }

 private:
  /// One Bernoulli draw at probability `p`; zero-probability families
  /// consume no draw.
  bool Roll(double probability);
  /// Uniform draw in [0, n); consumes one draw (n must be > 0).
  std::size_t RollIndex(std::size_t n);
  void Inject(FaultFamily family, std::size_t detail);

  std::unique_ptr<Transport> inner_;
  ChaosPlan plan_;
  std::uint64_t worker_ = 0;

  std::uint64_t connection_attempts_ = 0;  ///< ordinal of the next Connect
  std::uint64_t connection_ = 0;           ///< ordinal of the current one
  std::uint64_t op_ = 0;                   ///< op ordinal within it
  rng::Xoshiro256 stream_;

  /// Lines queued for redelivery by recv-duplicate. Cleared on
  /// Connect/Close — a duplicate does not survive its connection.
  std::deque<std::string> pending_lines_;

  FaultTrace* trace_ = nullptr;
  ServiceMetrics* metrics_ = nullptr;
};

}  // namespace fadesched::service::chaos
