// Byte-stream transport abstraction for the service client stack. The
// retrying client talks to a Transport, not a socket: in production the
// Transport is a SocketTransport over service::Client; under test it is
// a FaultyTransport wrapping one (or an in-memory fake), which is how
// the chaos layer injects faults deterministically *without* a proxy
// process — fault decisions live client-side where their stream seed is
// known, so a fault trace replays exactly from a seed.
#pragma once

#include <string>

#include "service/client.hpp"

namespace fadesched::service::chaos {

/// Where a SocketTransport connects: a Unix-domain path when non-empty,
/// else host:port TCP.
struct Endpoint {
  std::string unix_socket_path;
  std::string host = "127.0.0.1";
  int port = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Establishes a fresh connection (closing any current one). Throws
  /// util::HarnessError: kTransient on refusal/reset, kTimeout on a
  /// connect deadline.
  virtual void Connect() = 0;
  virtual void Close() = 0;
  [[nodiscard]] virtual bool Connected() const = 0;

  /// Writes all of `bytes`; throws kTransient/kTimeout on failure.
  virtual void Send(const std::string& bytes) = 0;

  /// Blocks (bounded by the underlying io deadline) for one line,
  /// returned without its newline.
  virtual std::string ReadLine() = 0;
};

/// The real thing: a service::Client bound to one endpoint, with the
/// client's poll-based connect/io deadlines.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(Endpoint endpoint, ClientOptions options = {});

  void Connect() override;
  void Close() override { client_.Close(); }
  [[nodiscard]] bool Connected() const override { return client_.Connected(); }
  void Send(const std::string& bytes) override { client_.SendRaw(bytes); }
  std::string ReadLine() override { return client_.ReadLine(); }

 private:
  Endpoint endpoint_;
  Client client_;
};

}  // namespace fadesched::service::chaos
