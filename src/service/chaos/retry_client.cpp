#include "service/chaos/retry_client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {

namespace {

/// An error response that can only mean our frame was damaged in flight:
/// checksum mismatches arrive as kTransient (handled by kind), and fatal
/// protocol errors that name the frame ("request frame line 1: ...",
/// "truncated request frame after N line(s)") are impossible for a
/// client whose frames come from FormatRequestFrame — so they are
/// retried as corruption rather than surfaced as caller bugs.
bool LooksLikeWireCorruption(const SchedulingResponse& response) {
  return response.error_kind == util::ErrorKind::kFatal &&
         response.message.find("request frame") != std::string::npos;
}

}  // namespace

void RetryOptions::Validate() const {
  if (max_attempts == 0) {
    throw util::FatalError("retry options: max_attempts must be >= 1");
  }
  if (!(initial_backoff_seconds >= 0.0) || !(max_backoff_seconds >= 0.0)) {
    throw util::FatalError("retry options: backoff must be non-negative");
  }
  if (!(backoff_multiplier >= 1.0)) {
    throw util::FatalError("retry options: backoff_multiplier must be >= 1");
  }
  if (!(jitter_fraction >= 0.0 && jitter_fraction < 1.0)) {
    throw util::FatalError("retry options: jitter_fraction must be in [0, 1)");
  }
}

RetryingClient::RetryingClient(std::unique_ptr<Transport> transport,
                               RetryOptions options, ServiceMetrics* metrics)
    : transport_(std::move(transport)),
      options_(options),
      metrics_(metrics),
      jitter_(options.jitter_seed) {
  options_.Validate();
}

double RetryingClient::NextBackoffSeconds(std::size_t attempt) {
  double backoff;
  if (hinted_backoff_seconds_ > 0.0) {
    // A server hint replaces the blind ladder for this one backoff: the
    // service derived it from its live queue-delay EWMA, so it tracks
    // actual congestion. Consumed once — a hint-less failure on the next
    // attempt falls back to the ladder.
    backoff = hinted_backoff_seconds_;
    hinted_backoff_seconds_ = 0.0;
    ++stats_.retry_after_honored;
  } else {
    backoff = options_.initial_backoff_seconds;
    for (std::size_t i = 1;
         i < attempt && backoff < options_.max_backoff_seconds; ++i) {
      backoff *= options_.backoff_multiplier;
    }
    if (backoff > options_.max_backoff_seconds) {
      backoff = options_.max_backoff_seconds;
    }
  }
  const double u = static_cast<double>(jitter_.Next() >> 11) * 0x1.0p-53;
  return backoff * (1.0 + options_.jitter_fraction * (2.0 * u - 1.0));
}

SchedulingResponse RetryingClient::Call(const SchedulingRequest& request) {
  // Formatted once: every attempt re-sends byte-identical wire content,
  // which is what makes the retry idempotent (same content → same
  // fingerprint → same cached, byte-identical response).
  const std::string frame = FormatRequestFrame(request);
  stats_ = CallStats{};
  hinted_backoff_seconds_ = 0.0;
  std::string last_error = "no attempt made";

  for (std::size_t attempt = 1; attempt <= options_.max_attempts;
       ++attempt) {
    stats_.attempts = attempt;
    try {
      if (!transport_->Connected()) {
        transport_->Connect();
        if (attempt > 1) ++stats_.reconnects;
      }
      transport_->Send(frame);
      for (std::size_t reads = 0; reads <= options_.max_stale_reads;
           ++reads) {
        const std::string line = transport_->ReadLine();
        SchedulingResponse response;
        try {
          response = ParseResponseLine(line);
        } catch (const util::HarnessError& e) {
          // Unparseable or checksum-failing line: the server formats
          // every line it writes, so this is wire damage, not a server
          // bug.
          ++stats_.corruption_detected;
          throw util::TransientError(std::string("response corrupted: ") +
                                     e.what());
        }
        if (response.id != request.id && response.id != "-") {
          // A stale or duplicated line from an earlier attempt; the
          // response for *this* request is still behind it.
          ++stats_.stale_discarded;
          continue;
        }
        if (!response.Ok()) {
          if (LooksLikeWireCorruption(response)) {
            ++stats_.corruption_detected;
            throw util::TransientError("request corrupted in flight: " +
                                       response.message);
          }
          if (response.error_kind != util::ErrorKind::kFatal) {
            // Shed, deadline timeout, drain, transient execution
            // failure: retryable, preserving the kind for the final
            // exhaustion error.
            if (response.retry_after_ms > 0.0) {
              hinted_backoff_seconds_ = response.retry_after_ms * 1e-3;
            }
            throw util::HarnessError(
                response.error_kind,
                ResponseStatusName(response.status) +
                    std::string(" response: ") + response.message);
          }
        }
        // Terminal: OK, or a genuine fatal error response the caller
        // must see (unknown scheduler, infeasible instance, ...).
        if (attempt > 1 && metrics_ != nullptr) {
          metrics_->chaos_recovered.fetch_add(1, std::memory_order_relaxed);
        }
        return response;
      }
      throw util::TransientError(
          "discarded " + std::to_string(options_.max_stale_reads + 1) +
          " stale response line(s) without seeing id=" + request.id);
    } catch (const util::HarnessError& e) {
      if (e.kind() == util::ErrorKind::kFatal) throw;  // local usage bug
      last_error = std::string(util::ErrorKindName(e.kind())) + ": " +
                   e.what();
      // Reconnect-on-retry: a failed attempt may have left a partial
      // frame or an unread response in the connection; dropping it is
      // what keeps stale bytes from leaking into the next attempt.
      transport_->Close();
      if (attempt < options_.max_attempts) {
        const double backoff = NextBackoffSeconds(attempt);
        stats_.backoffs.push_back(backoff);
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
  }
  throw util::TransientError(
      "retries exhausted after " + std::to_string(options_.max_attempts) +
      " attempt(s); last error — " + last_error);
}

}  // namespace fadesched::service::chaos
