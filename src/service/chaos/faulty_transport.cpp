#include "service/chaos/faulty_transport.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace fadesched::service::chaos {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 ChaosPlan plan, std::uint64_t worker,
                                 FaultTrace* trace, ServiceMetrics* metrics)
    : inner_(std::move(inner)),
      plan_(plan),
      worker_(worker),
      stream_(plan.seed),
      trace_(trace),
      metrics_(metrics) {
  plan_.Validate();
}

bool FaultyTransport::Roll(double probability) {
  if (probability <= 0.0) return false;  // inert families consume no draws
  const double u =
      static_cast<double>(stream_.Next() >> 11) * 0x1.0p-53;
  return u < probability;
}

std::size_t FaultyTransport::RollIndex(std::size_t n) {
  return static_cast<std::size_t>(stream_.Next() % n);
}

void FaultyTransport::Inject(FaultFamily family, std::size_t detail) {
  if (trace_ != nullptr) {
    trace_->Record(ChaosEvent{worker_, connection_, op_, family, detail});
  }
  if (metrics_ != nullptr) {
    metrics_->chaos_injected.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultyTransport::Connect() {
  pending_lines_.clear();
  connection_ = connection_attempts_++;
  op_ = 0;
  stream_ = MakeFaultStream(plan_, worker_, connection_);
  if (Roll(plan_.connect_reset)) {
    Inject(FaultFamily::kConnectReset, 0);
    inner_->Close();
    throw util::TransientError("injected connect-reset: connection refused");
  }
  inner_->Connect();
}

void FaultyTransport::Close() {
  pending_lines_.clear();
  inner_->Close();
}

bool FaultyTransport::Connected() const { return inner_->Connected(); }

void FaultyTransport::Send(const std::string& bytes) {
  ++op_;
  std::string out = bytes;
  if (!out.empty() && Roll(plan_.send_corrupt)) {
    const std::size_t index = RollIndex(out.size());
    const unsigned char mask =
        static_cast<unsigned char>(1 + RollIndex(255));
    out[index] =
        static_cast<char>(static_cast<unsigned char>(out[index]) ^ mask);
    Inject(FaultFamily::kSendCorrupt, index);
  }
  if (!out.empty() && Roll(plan_.send_truncate)) {
    const std::size_t keep = RollIndex(out.size());
    Inject(FaultFamily::kSendTruncate, keep);
    if (keep > 0) {
      try {
        inner_->Send(out.substr(0, keep));
      } catch (const util::HarnessError&) {
        // The connection is dying anyway; the prefix is best-effort.
      }
    }
    inner_->Close();
    throw util::TransientError(
        "injected send-truncate: connection reset after " +
        std::to_string(keep) + " of " + std::to_string(out.size()) +
        " bytes");
  }
  if (Roll(plan_.send_duplicate)) {
    Inject(FaultFamily::kSendDuplicate, out.size());
    inner_->Send(out);
  }
  inner_->Send(out);
}

std::string FaultyTransport::ReadLine() {
  ++op_;
  if (!pending_lines_.empty()) {
    // A previously duplicated line is redelivered verbatim; no further
    // faults apply to it.
    std::string line = std::move(pending_lines_.front());
    pending_lines_.pop_front();
    return line;
  }
  if (Roll(plan_.recv_stall)) {
    Inject(FaultFamily::kRecvStall,
           static_cast<std::size_t>(plan_.stall_seconds * 1e3));
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.stall_seconds));
    // Models the client's poll deadline firing on a stalled peer: the
    // response is abandoned with the connection, never consumed.
    inner_->Close();
    throw util::TimeoutError(
        "injected recv-stall: no response byte within the deadline");
  }
  if (Roll(plan_.recv_kill)) {
    Inject(FaultFamily::kRecvKill, 0);
    inner_->Close();
    throw util::TransientError(
        "injected recv-kill: connection reset before the response line");
  }
  std::string line = inner_->ReadLine();
  if (!line.empty() && Roll(plan_.recv_corrupt)) {
    const std::size_t index = RollIndex(line.size());
    const unsigned char mask =
        static_cast<unsigned char>(1 + RollIndex(255));
    line[index] =
        static_cast<char>(static_cast<unsigned char>(line[index]) ^ mask);
    Inject(FaultFamily::kRecvCorrupt, index);
  }
  if (Roll(plan_.recv_duplicate)) {
    Inject(FaultFamily::kRecvDuplicate, line.size());
    pending_lines_.push_back(line);
  }
  return line;
}

}  // namespace fadesched::service::chaos
