#include "service/chaos/transport.hpp"

#include <utility>

#include "util/error.hpp"

namespace fadesched::service::chaos {

SocketTransport::SocketTransport(Endpoint endpoint, ClientOptions options)
    : endpoint_(std::move(endpoint)), client_(options) {}

void SocketTransport::Connect() {
  client_.Close();
  if (!endpoint_.unix_socket_path.empty()) {
    client_.ConnectUnix(endpoint_.unix_socket_path);
    return;
  }
  if (endpoint_.port <= 0) {
    throw util::FatalError(
        "SocketTransport endpoint has neither a unix socket path nor a "
        "port");
  }
  client_.ConnectTcp(endpoint_.host, endpoint_.port);
}

}  // namespace fadesched::service::chaos
