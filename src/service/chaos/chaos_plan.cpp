#include "service/chaos/chaos_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "rng/splitmix64.hpp"
#include "util/error.hpp"

namespace fadesched::service::chaos {

namespace {

constexpr const char* kFamilyNames[kNumFaultFamilies] = {
    "connect-reset", "send-corrupt",  "send-truncate", "send-duplicate",
    "recv-stall",    "recv-corrupt",  "recv-kill",     "recv-duplicate",
};

}  // namespace

const char* FaultFamilyName(FaultFamily family) {
  return kFamilyNames[static_cast<std::size_t>(family)];
}

bool ChaosPlan::Enabled() const {
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    if (Probability(static_cast<FaultFamily>(f)) > 0.0) return true;
  }
  return false;
}

double ChaosPlan::Probability(FaultFamily family) const {
  switch (family) {
    case FaultFamily::kConnectReset: return connect_reset;
    case FaultFamily::kSendCorrupt: return send_corrupt;
    case FaultFamily::kSendTruncate: return send_truncate;
    case FaultFamily::kSendDuplicate: return send_duplicate;
    case FaultFamily::kRecvStall: return recv_stall;
    case FaultFamily::kRecvCorrupt: return recv_corrupt;
    case FaultFamily::kRecvKill: return recv_kill;
    case FaultFamily::kRecvDuplicate: return recv_duplicate;
  }
  return 0.0;
}

void ChaosPlan::SetProbability(FaultFamily family, double probability) {
  switch (family) {
    case FaultFamily::kConnectReset: connect_reset = probability; return;
    case FaultFamily::kSendCorrupt: send_corrupt = probability; return;
    case FaultFamily::kSendTruncate: send_truncate = probability; return;
    case FaultFamily::kSendDuplicate: send_duplicate = probability; return;
    case FaultFamily::kRecvStall: recv_stall = probability; return;
    case FaultFamily::kRecvCorrupt: recv_corrupt = probability; return;
    case FaultFamily::kRecvKill: recv_kill = probability; return;
    case FaultFamily::kRecvDuplicate: recv_duplicate = probability; return;
  }
}

ChaosPlan ChaosPlan::AllFamilies(double probability, std::uint64_t seed) {
  ChaosPlan plan;
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    plan.SetProbability(static_cast<FaultFamily>(f), probability);
  }
  plan.seed = seed;
  return plan;
}

std::string ChaosPlan::Describe() const {
  std::string out;
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    const double p = Probability(static_cast<FaultFamily>(f));
    if (p <= 0.0) continue;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s%s=%g", out.empty() ? "" : " ",
                  kFamilyNames[f], p);
    out += buffer;
  }
  return out.empty() ? "inert" : out;
}

void ChaosPlan::Validate() const {
  for (std::size_t f = 0; f < kNumFaultFamilies; ++f) {
    const double p = Probability(static_cast<FaultFamily>(f));
    if (!(p >= 0.0 && p <= 1.0)) {
      throw util::FatalError(std::string("chaos plan: ") + kFamilyNames[f] +
                             " probability must be in [0, 1], got " +
                             std::to_string(p));
    }
  }
  if (!(stall_seconds >= 0.0)) {
    throw util::FatalError("chaos plan: stall_seconds must be non-negative");
  }
}

rng::Xoshiro256 MakeFaultStream(const ChaosPlan& plan, std::uint64_t worker,
                                std::uint64_t connection) {
  // Two SplitMix64 rounds fold the coordinates in one at a time; the +1
  // offsets keep worker 0 / connection 0 from degenerating into the
  // master seed itself.
  rng::SplitMix64 mix_worker(plan.seed ^
                             (worker + 1) * 0x9e3779b97f4a7c15ULL);
  rng::SplitMix64 mix_connection(mix_worker.Next() ^
                                 (connection + 1) * 0xbf58476d1ce4e5b9ULL);
  return rng::Xoshiro256(mix_connection.Next());
}

void FaultTrace::Record(const ChaosEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::size_t FaultTrace::Count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t FaultTrace::CountFamily(FaultFamily family) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const ChaosEvent& event : events_) {
    if (event.family == family) ++count;
  }
  return count;
}

std::array<std::size_t, kNumFaultFamilies> FaultTrace::CountsByFamily() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::array<std::size_t, kNumFaultFamilies> counts{};
  for (const ChaosEvent& event : events_) {
    ++counts[static_cast<std::size_t>(event.family)];
  }
  return counts;
}

std::string FaultTrace::Format() const {
  std::vector<ChaosEvent> sorted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sorted = events_;
  }
  // Sorting by coordinates (not arrival order) is what makes the trace
  // byte-identical across runs: per-stream sequences are deterministic,
  // only their interleaving is not.
  std::sort(sorted.begin(), sorted.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              if (a.worker != b.worker) return a.worker < b.worker;
              if (a.connection != b.connection) {
                return a.connection < b.connection;
              }
              if (a.op != b.op) return a.op < b.op;
              return static_cast<int>(a.family) < static_cast<int>(b.family);
            });
  std::string out;
  for (const ChaosEvent& event : sorted) {
    out += 'w' + std::to_string(event.worker) + " c" +
           std::to_string(event.connection) + " op" +
           std::to_string(event.op) + ' ' + FaultFamilyName(event.family) +
           " detail=" + std::to_string(event.detail) + '\n';
  }
  return out;
}

}  // namespace fadesched::service::chaos
