#include "service/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "testing/corpus.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

double ParseDouble(const std::string& text, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    throw util::FatalError(std::string("malformed ") + what + " '" + text +
                           "'");
  }
  return value;
}

bool IsToken(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') return false;
  }
  return true;
}

std::string Flatten(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Splits "key=value"; throws naming the frame line on missing '='.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token,
                                                  std::size_t frame_line) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw util::FatalError("request frame line " + std::to_string(frame_line) +
                           ": expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

ResponseStatus ParseStatusName(const std::string& name) {
  if (name == "shed") return ResponseStatus::kShed;
  if (name == "timeout") return ResponseStatus::kTimeout;
  if (name == "error") return ResponseStatus::kError;
  throw util::FatalError("malformed response status '" + name + "'");
}

util::ErrorKind ParseKindName(const std::string& name) {
  if (name == "transient") return util::ErrorKind::kTransient;
  if (name == "timeout") return util::ErrorKind::kTimeout;
  if (name == "interrupted") return util::ErrorKind::kInterrupted;
  if (name == "fatal") return util::ErrorKind::kFatal;
  throw util::FatalError("malformed error kind '" + name + "'");
}

}  // namespace

std::string FormatRequestFrame(const SchedulingRequest& request) {
  if (!IsToken(request.id)) {
    throw util::FatalError("request id must be a non-empty token without "
                           "whitespace, got '" + request.id + "'");
  }
  if (!IsToken(request.scheduler)) {
    throw util::FatalError("scheduler name must be a non-empty token without "
                           "whitespace, got '" + request.scheduler + "'");
  }
  std::string frame = "REQUEST id=" + request.id +
                      " scheduler=" + request.scheduler;
  if (request.deadline_seconds > 0.0) {
    frame += " deadline=" + FormatDouble(request.deadline_seconds);
  }
  frame += '\n';
  std::string scenario = fadesched::testing::FormatScenario(request.scenario);
  if (!scenario.empty() && scenario.back() != '\n') scenario += '\n';
  frame += scenario;
  frame += kFrameEnd;
  frame += '\n';
  return frame;
}

SchedulingRequest ParseRequestFrame(const std::string& frame) {
  const std::size_t header_end = frame.find('\n');
  if (header_end == std::string::npos) {
    throw util::FatalError(
        "request frame line 1: header is not newline-terminated");
  }
  const std::string header = frame.substr(0, header_end);
  const std::vector<std::string> tokens = SplitTokens(header);
  if (tokens.empty() || tokens[0] != "REQUEST") {
    throw util::FatalError(
        "request frame line 1: expected 'REQUEST id=... scheduler=...', got '" +
        header + "'");
  }

  SchedulingRequest request;
  request.scheduler.clear();
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto [key, value] = SplitKeyValue(tokens[t], 1);
    if (key == "id") {
      request.id = value;
    } else if (key == "scheduler") {
      request.scheduler = value;
    } else if (key == "deadline") {
      request.deadline_seconds = ParseDouble(value, "deadline");
      if (request.deadline_seconds < 0.0) {
        throw util::FatalError(
            "request frame line 1: deadline must be non-negative");
      }
    } else {
      throw util::FatalError("request frame line 1: unknown header key '" +
                             key + "'");
    }
  }
  if (request.id.empty()) {
    throw util::FatalError("request frame line 1: missing id=");
  }
  if (request.scheduler.empty()) {
    throw util::FatalError("request frame line 1: missing scheduler=");
  }

  const std::string payload = frame.substr(header_end + 1);
  try {
    request.scenario = fadesched::testing::ParseScenario(payload);
  } catch (const std::exception& e) {
    // ParseScenario's message already names its own 1-based line/row; the
    // payload starts at frame line 2.
    throw util::FatalError(
        std::string("request frame scenario payload (frame line 2 onward): ") +
        e.what());
  }
  return request;
}

std::string FormatResponseLine(const SchedulingResponse& response) {
  if (response.Ok()) {
    std::string line = "OK id=" + response.id +
                       " rate=" + FormatDouble(response.claimed_rate) +
                       " schedule=";
    if (response.schedule.empty()) {
      line += '-';
    } else {
      for (std::size_t i = 0; i < response.schedule.size(); ++i) {
        if (i > 0) line += ',';
        line += std::to_string(response.schedule[i]);
      }
    }
    return line;
  }
  return "ERR id=" + response.id +
         " status=" + ResponseStatusName(response.status) +
         " kind=" + util::ErrorKindName(response.error_kind) +
         " msg=" + Flatten(response.message);
}

SchedulingResponse ParseResponseLine(const std::string& line) {
  SchedulingResponse response;
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) throw util::FatalError("empty response line");

  if (tokens[0] == "OK") {
    response.status = ResponseStatus::kOk;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto [key, value] = SplitKeyValue(tokens[t], 1);
      if (key == "id") {
        response.id = value;
      } else if (key == "rate") {
        response.claimed_rate = ParseDouble(value, "rate");
      } else if (key == "schedule") {
        if (value != "-") {
          std::istringstream ids(value);
          std::string piece;
          while (std::getline(ids, piece, ',')) {
            response.schedule.push_back(
                static_cast<net::LinkId>(std::stoull(piece)));
          }
        }
      } else {
        throw util::FatalError("unknown response key '" + key + "'");
      }
    }
    return response;
  }

  if (tokens[0] == "ERR") {
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto [key, value] = SplitKeyValue(tokens[t], 1);
      if (key == "id") {
        response.id = value;
      } else if (key == "status") {
        response.status = ParseStatusName(value);
      } else if (key == "kind") {
        response.error_kind = ParseKindName(value);
      } else if (key == "msg") {
        // msg= runs to end of line (it may contain spaces).
        const std::size_t pos = line.find(" msg=");
        response.message =
            pos == std::string::npos ? value : line.substr(pos + 5);
        break;
      } else {
        throw util::FatalError("unknown response key '" + key + "'");
      }
    }
    if (response.status == ResponseStatus::kOk) {
      throw util::FatalError("ERR response line missing status=: '" + line +
                             "'");
    }
    return response;
  }

  throw util::FatalError("response line must start with OK or ERR, got '" +
                         line + "'");
}

bool FrameAssembler::Feed(const std::string& line) {
  if (done_) Reset();
  ++lines_;
  if (line == kFrameEnd) {
    done_ = true;
    return true;
  }
  frame_ += line;
  frame_ += '\n';
  return false;
}

SchedulingRequest FrameAssembler::Parse() const {
  if (!done_) throw util::FatalError(Truncated());
  return ParseRequestFrame(frame_);
}

std::string FrameAssembler::Truncated() const {
  return "truncated request frame after " + std::to_string(lines_) +
         " line(s) — missing END terminator";
}

void FrameAssembler::Reset() {
  frame_.clear();
  lines_ = 0;
  done_ = false;
}

}  // namespace fadesched::service
