#include "service/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <sstream>
#include <vector>

#include "testing/corpus.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatHash(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::uint64_t ParseHash(const std::string& text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 16);
  if (text.empty() || end == nullptr || *end != '\0' || errno != 0) {
    throw util::FatalError(std::string("malformed ") + what + " '" + text +
                           "' (expected hex)");
  }
  return static_cast<std::uint64_t>(value);
}

double ParseDouble(const std::string& text, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    throw util::FatalError(std::string("malformed ") + what + " '" + text +
                           "'");
  }
  return value;
}

bool IsToken(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') return false;
  }
  return true;
}

std::string Flatten(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Splits "key=value"; throws naming the frame line on missing '='.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token,
                                                  std::size_t frame_line) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw util::FatalError("request frame line " + std::to_string(frame_line) +
                           ": expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

ResponseStatus ParseStatusName(const std::string& name) {
  if (name == "shed") return ResponseStatus::kShed;
  if (name == "timeout") return ResponseStatus::kTimeout;
  if (name == "error") return ResponseStatus::kError;
  throw util::FatalError("malformed response status '" + name + "'");
}

util::ErrorKind ParseKindName(const std::string& name) {
  if (name == "transient") return util::ErrorKind::kTransient;
  if (name == "timeout") return util::ErrorKind::kTimeout;
  if (name == "interrupted") return util::ErrorKind::kInterrupted;
  if (name == "fatal") return util::ErrorKind::kFatal;
  throw util::FatalError("malformed error kind '" + name + "'");
}

}  // namespace

std::string FormatRequestFrame(const SchedulingRequest& request) {
  if (!IsToken(request.id)) {
    throw util::FatalError("request id must be a non-empty token without "
                           "whitespace, got '" + request.id + "'");
  }
  if (!IsToken(request.scheduler)) {
    throw util::FatalError("scheduler name must be a non-empty token without "
                           "whitespace, got '" + request.scheduler + "'");
  }
  std::string header = "REQUEST id=" + request.id +
                       " scheduler=" + request.scheduler;
  if (request.deadline_seconds > 0.0) {
    header += " deadline=" + FormatDouble(request.deadline_seconds);
  }
  std::string scenario = fadesched::testing::FormatScenario(request.scenario);
  if (!scenario.empty() && scenario.back() != '\n') scenario += '\n';
  // check= covers the whole frame body (header without the check token
  // itself, newline, payload) so a flipped bit anywhere — id, scheduler,
  // deadline, or scenario — is detected as wire corruption.
  const std::uint64_t check = Fnv1a64(header + '\n' + scenario);
  std::string frame = header + " check=" + FormatHash(check);
  frame += '\n';
  frame += scenario;
  frame += kFrameEnd;
  frame += '\n';
  return frame;
}

SchedulingRequest ParseRequestFrame(const std::string& frame) {
  const std::size_t header_end = frame.find('\n');
  if (header_end == std::string::npos) {
    throw util::FatalError(
        "request frame line 1: header is not newline-terminated");
  }
  const std::string header = frame.substr(0, header_end);
  const std::vector<std::string> tokens = SplitTokens(header);
  if (tokens.empty() || tokens[0] != "REQUEST") {
    throw util::FatalError(
        "request frame line 1: expected 'REQUEST id=... scheduler=...', got '" +
        header + "'");
  }

  SchedulingRequest request;
  request.scheduler.clear();
  std::optional<std::uint64_t> check;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto [key, value] = SplitKeyValue(tokens[t], 1);
    if (key == "id") {
      request.id = value;
    } else if (key == "scheduler") {
      request.scheduler = value;
    } else if (key == "deadline") {
      try {
        request.deadline_seconds = ParseDouble(value, "deadline");
      } catch (const util::HarnessError& e) {
        // Prefixed so the retry client's corruption heuristic (fatal
        // errors naming the frame on a frame *we* formatted correctly)
        // covers a garbled deadline token too.
        throw util::FatalError(std::string("request frame line 1: ") +
                               e.what());
      }
      if (request.deadline_seconds < 0.0) {
        throw util::FatalError(
            "request frame line 1: deadline must be non-negative");
      }
    } else if (key == "check") {
      try {
        check = ParseHash(value, "check");
      } catch (const util::HarnessError& e) {
        throw util::FatalError(std::string("request frame line 1: ") +
                               e.what());
      }
    } else {
      throw util::FatalError("request frame line 1: unknown header key '" +
                             key + "'");
    }
  }
  if (request.id.empty()) {
    throw util::FatalError("request frame line 1: missing id=");
  }
  if (request.scheduler.empty()) {
    throw util::FatalError("request frame line 1: missing scheduler=");
  }
  if (!check.has_value()) {
    // Mandatory, and deliberately transient: every in-repo client sends
    // check=, so its absence on an otherwise well-formed frame is the
    // signature of a corrupted separator — a flipped space merges the
    // check token into its neighbour, which would otherwise disable
    // verification exactly when it is needed (found by the chaos soak).
    throw util::TransientError(
        "request frame line 1: missing check= integrity token (wire "
        "corruption, or a pre-checksum peer — retry with check=)");
  }

  const std::string payload = frame.substr(header_end + 1);
  try {
    request.scenario = fadesched::testing::ParseScenario(payload);
  } catch (const std::exception& e) {
    // ParseScenario's message already names its own 1-based line/row; the
    // payload starts at frame line 2.
    throw util::FatalError(
        std::string("request frame scenario payload (frame line 2 onward): ") +
        e.what());
  }
  // Verified after the parse on purpose: a corrupted payload that fails
  // to parse keeps its precise row diagnostic; one that still parses —
  // or a flipped header token that still splits as key=value — is caught
  // here instead of silently scheduling the wrong instance. The body is
  // the frame with the check token (and the one separator before it)
  // spliced out, mirroring the format side. The token is located by any
  // whitespace boundary, not just ' ': a space corrupted into a tab
  // still tokenizes, and must not silently disable verification.
  std::size_t pos = 0;
  for (;;) {
    pos = header.find("check=", pos);
    if (pos == std::string::npos || pos == 0) {
      // Unreachable when `check` parsed from a token, kept as a guard.
      throw util::TransientError(
          "request frame line 1: check= token lost during reparse (wire "
          "corruption — retry)");
    }
    const char before = header[pos - 1];
    if (before == ' ' || before == '\t') {
      --pos;  // splice the separator out together with the token
      break;
    }
    ++pos;
  }
  std::size_t token_end = header.find_first_of(" \t", pos + 1);
  if (token_end == std::string::npos) token_end = header.size();
  const std::string body =
      header.substr(0, pos) + header.substr(token_end) + '\n' + payload;
  if (*check != Fnv1a64(body)) {
    throw util::TransientError(
        "request frame checksum mismatch: " + std::to_string(body.size()) +
        " frame byte(s) hash to " + FormatHash(Fnv1a64(body)) +
        ", header claims check=" + FormatHash(*check) +
        " (wire corruption — retry)");
  }
  return request;
}

namespace {

// `sum=` is spliced in right after the status word so it never collides
// with msg=, which runs to end of line. The checksum covers the line
// with the sum token removed, so verification is splice-inverse.
std::string SpliceChecksum(const std::string& body) {
  const std::size_t space = body.find(' ');
  return body.substr(0, space) + " sum=" + FormatHash(Fnv1a64(body)) +
         body.substr(space);
}

// Returns the line with a leading sum token stripped, after verifying it.
// Lines without one (hand-written tests, pre-checksum peers) pass through.
std::string VerifyAndStripChecksum(const std::string& line) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || line.compare(space, 5, " sum=") != 0) {
    return line;
  }
  std::size_t value_end = line.find(' ', space + 5);
  if (value_end == std::string::npos) value_end = line.size();
  const std::uint64_t claimed =
      ParseHash(line.substr(space + 5, value_end - (space + 5)), "sum");
  const std::string body = line.substr(0, space) + line.substr(value_end);
  if (Fnv1a64(body) != claimed) {
    throw util::TransientError(
        "response checksum mismatch: line hashes to " +
        FormatHash(Fnv1a64(body)) + ", carries sum=" + FormatHash(claimed) +
        " (wire corruption — retry)");
  }
  return body;
}

}  // namespace

std::string FormatResponseLine(const SchedulingResponse& response) {
  if (response.Ok()) {
    std::string line = "OK id=" + response.id +
                       " rate=" + FormatDouble(response.claimed_rate) +
                       " schedule=";
    if (response.schedule.empty()) {
      line += '-';
    } else {
      for (std::size_t i = 0; i < response.schedule.size(); ++i) {
        if (i > 0) line += ',';
        line += std::to_string(response.schedule[i]);
      }
    }
    return SpliceChecksum(line);
  }
  std::string line = "ERR id=" + response.id +
                     " status=" + ResponseStatusName(response.status) +
                     " kind=" + util::ErrorKindName(response.error_kind);
  // Before msg= on purpose: msg= runs to end of line, so any token after
  // it would be swallowed into the message.
  if (response.retry_after_ms > 0.0) {
    line += " retry_after_ms=" + FormatDouble(response.retry_after_ms);
  }
  return SpliceChecksum(line + " msg=" + Flatten(response.message));
}

SchedulingResponse ParseResponseLine(const std::string& raw_line) {
  const std::string line = VerifyAndStripChecksum(raw_line);
  SchedulingResponse response;
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) throw util::FatalError("empty response line");

  if (tokens[0] == "OK") {
    response.status = ResponseStatus::kOk;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto [key, value] = SplitKeyValue(tokens[t], 1);
      if (key == "id") {
        response.id = value;
      } else if (key == "rate") {
        response.claimed_rate = ParseDouble(value, "rate");
      } else if (key == "schedule") {
        if (value != "-") {
          std::istringstream ids(value);
          std::string piece;
          while (std::getline(ids, piece, ',')) {
            response.schedule.push_back(
                static_cast<net::LinkId>(std::stoull(piece)));
          }
        }
      } else {
        throw util::FatalError("unknown response key '" + key + "'");
      }
    }
    return response;
  }

  if (tokens[0] == "ERR") {
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const auto [key, value] = SplitKeyValue(tokens[t], 1);
      if (key == "id") {
        response.id = value;
      } else if (key == "status") {
        response.status = ParseStatusName(value);
      } else if (key == "kind") {
        response.error_kind = ParseKindName(value);
      } else if (key == "retry_after_ms") {
        response.retry_after_ms = ParseDouble(value, "retry_after_ms");
        if (response.retry_after_ms < 0.0) {
          throw util::FatalError("retry_after_ms must be non-negative, got '" +
                                 value + "'");
        }
      } else if (key == "msg") {
        // msg= runs to end of line (it may contain spaces).
        const std::size_t pos = line.find(" msg=");
        response.message =
            pos == std::string::npos ? value : line.substr(pos + 5);
        break;
      } else {
        throw util::FatalError("unknown response key '" + key + "'");
      }
    }
    if (response.status == ResponseStatus::kOk) {
      throw util::FatalError("ERR response line missing status=: '" + line +
                             "'");
    }
    return response;
  }

  throw util::FatalError("response line must start with OK or ERR, got '" +
                         line + "'");
}

StatsSnapshot CaptureStats(const ServiceMetrics& metrics) {
  const auto get = [](const std::atomic<std::uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  StatsSnapshot s;
  s.submitted = get(metrics.submitted);
  s.admitted = get(metrics.admitted);
  s.completed = get(metrics.completed);
  s.failed = get(metrics.failed);
  s.timed_out = get(metrics.timed_out);
  s.shed = get(metrics.shed);
  s.shed_overload = get(metrics.shed_overload);
  s.shed_cold = get(metrics.shed_cold);
  s.rejected_draining = get(metrics.rejected_draining);
  s.brownout_entries = get(metrics.brownout_entries);
  s.brownout_builds = get(metrics.brownout_builds);
  s.worker_restarts = get(metrics.worker_restarts);
  s.response_hits = get(metrics.response_hits);
  s.response_misses = get(metrics.response_misses);
  s.scenario_hits = get(metrics.scenario_hits);
  s.scenario_misses = get(metrics.scenario_misses);
  s.queue_depth = get(metrics.queue_depth);
  s.queue_delay_ewma_us = get(metrics.queue_delay_ewma_us);
  s.brownout_active = get(metrics.brownout_active);
  return s;
}

void AccumulateStats(StatsSnapshot& into, const StatsSnapshot& from) {
  into.submitted += from.submitted;
  into.admitted += from.admitted;
  into.completed += from.completed;
  into.failed += from.failed;
  into.timed_out += from.timed_out;
  into.shed += from.shed;
  into.shed_overload += from.shed_overload;
  into.shed_cold += from.shed_cold;
  into.rejected_draining += from.rejected_draining;
  into.brownout_entries += from.brownout_entries;
  into.brownout_builds += from.brownout_builds;
  into.worker_restarts += from.worker_restarts;
  into.response_hits += from.response_hits;
  into.response_misses += from.response_misses;
  into.scenario_hits += from.scenario_hits;
  into.scenario_misses += from.scenario_misses;
  into.queue_depth += from.queue_depth;
  into.queue_delay_ewma_us += from.queue_delay_ewma_us;
  into.brownout_active += from.brownout_active;
}

namespace {

// Field table driving both the format and the parse, so the two cannot
// drift. Order is the wire order.
struct StatsField {
  const char* key;
  std::uint64_t StatsSnapshot::* member;
};

constexpr StatsField kStatsFields[] = {
    {"submitted", &StatsSnapshot::submitted},
    {"admitted", &StatsSnapshot::admitted},
    {"completed", &StatsSnapshot::completed},
    {"failed", &StatsSnapshot::failed},
    {"timed_out", &StatsSnapshot::timed_out},
    {"shed", &StatsSnapshot::shed},
    {"shed_overload", &StatsSnapshot::shed_overload},
    {"shed_cold", &StatsSnapshot::shed_cold},
    {"rejected_draining", &StatsSnapshot::rejected_draining},
    {"brownout_entries", &StatsSnapshot::brownout_entries},
    {"brownout_builds", &StatsSnapshot::brownout_builds},
    {"worker_restarts", &StatsSnapshot::worker_restarts},
    {"response_hits", &StatsSnapshot::response_hits},
    {"response_misses", &StatsSnapshot::response_misses},
    {"scenario_hits", &StatsSnapshot::scenario_hits},
    {"scenario_misses", &StatsSnapshot::scenario_misses},
    {"queue_depth", &StatsSnapshot::queue_depth},
    {"queue_delay_ewma_us", &StatsSnapshot::queue_delay_ewma_us},
    {"brownout_active", &StatsSnapshot::brownout_active},
};

std::uint64_t ParseCounter(const std::string& text, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno != 0) {
    throw util::FatalError(std::string("malformed STATS counter ") + what +
                           "='" + text + "'");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

std::string FormatStatsLine(const StatsSnapshot& snapshot) {
  std::string line = kStatsVerb;
  for (const StatsField& field : kStatsFields) {
    line += ' ';
    line += field.key;
    line += '=';
    line += std::to_string(snapshot.*(field.member));
  }
  return SpliceChecksum(line);
}

StatsSnapshot ParseStatsLine(const std::string& raw_line) {
  const std::string line = VerifyAndStripChecksum(raw_line);
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty() || tokens[0] != kStatsVerb) {
    throw util::FatalError("expected a STATS response line, got '" + line +
                           "'");
  }
  StatsSnapshot snapshot;
  bool seen[std::size(kStatsFields)] = {};
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const auto [key, value] = SplitKeyValue(tokens[t], 1);
    bool known = false;
    for (std::size_t f = 0; f < std::size(kStatsFields); ++f) {
      if (key == kStatsFields[f].key) {
        snapshot.*(kStatsFields[f].member) = ParseCounter(value, key.c_str());
        seen[f] = true;
        known = true;
        break;
      }
    }
    // Unknown keys are tolerated so older clients can read stats lines
    // from newer workers.
    (void)known;
  }
  for (std::size_t f = 0; f < std::size(kStatsFields); ++f) {
    if (!seen[f]) {
      throw util::FatalError(std::string("STATS line missing ") +
                             kStatsFields[f].key + "=");
    }
  }
  return snapshot;
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{\n";
  for (const StatsField& field : kStatsFields) {
    out += "  \"";
    out += field.key;
    out += "\": ";
    out += std::to_string(this->*(field.member));
    out += ",\n";
  }
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.6f", WarmHitRate());
  out += std::string("  \"warm_hit_rate\": ") + rate + "\n}\n";
  return out;
}

bool FrameAssembler::Feed(const std::string& line) {
  if (done_) Reset();
  ++lines_;
  if (line == kFrameEnd) {
    done_ = true;
    return true;
  }
  frame_ += line;
  frame_ += '\n';
  return false;
}

SchedulingRequest FrameAssembler::Parse() const {
  if (!done_) throw util::FatalError(Truncated());
  return ParseRequestFrame(frame_);
}

std::string FrameAssembler::Truncated() const {
  return "truncated request frame after " + std::to_string(lines_) +
         " line(s) — missing END terminator";
}

void FrameAssembler::Reset() {
  frame_.clear();
  lines_ = 0;
  done_ = false;
}

}  // namespace fadesched::service
