// A shard worker: one forked process owning one SchedulingService (its
// own scenario/response LRU, batcher, and overload controller), speaking
// the binary pipe envelope to the router over a UNIX socketpair.
//
// Layout inside the process:
//
//   * one reader loop (the main thread) polls the pipe, decodes
//     messages, and dispatches: kRequest frames go through
//     SchedulingService::Submit (the inline response-cache fast path
//     answers warm repeats without touching the batcher queue);
//     kStatsQuery is answered immediately with a FormatStatsLine reply;
//   * `completion_threads` drainers turn Submit futures into kResponse
//     messages, in completion order — the ticket id carries ordering
//     duty, so out-of-order completion here is fine;
//   * all pipe writes funnel through one mutex: envelopes must land
//     contiguously on the stream.
//
// Exit protocol (crash-only): pipe EOF (the router died or dropped us) or
// SIGTERM (drain request) both end the read loop; the worker drains its
// service — every accepted future still gets computed and written, which
// is what makes a ring-aware roll lossless — then returns 0. Any escape
// of a non-taxonomy exception exits non-zero and the supervisor treats
// it as a crash.
#pragma once

#include <cstddef>

#include "service/service.hpp"

namespace fadesched::service::shard {

struct ShardWorkerOptions {
  int pipe_fd = -1;                   ///< worker end of the socketpair
  std::size_t completion_threads = 2;
  std::size_t shard_id = 0;
  /// Global fork ordinal, surfaced via ServiceMetrics::worker_restarts on
  /// the STATS line (same convention as the supervised Server workers).
  std::size_t spawn_ordinal = 0;
  ServiceOptions service;
};

/// Runs the worker loop until EOF/SIGTERM. Returns the process exit code
/// (0 on a clean drain). Called inside the forked child; never returns
/// through supervisor state.
int RunShardWorker(const ShardWorkerOptions& options);

}  // namespace fadesched::service::shard
