#include "service/shard/frame_scanner.hpp"

#include "service/request.hpp"

namespace fadesched::service::shard {

void FrameScanner::Feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::vector<ScanEvent> FrameScanner::Drain() {
  std::vector<ScanEvent> events;
  std::size_t line_end;
  while ((line_end = buffer_.find('\n')) != std::string::npos) {
    std::string line = buffer_.substr(0, line_end);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    buffer_.erase(0, line_end + 1);
    if (assembler_.Empty() && line == kStatsVerb) {
      ScanEvent event;
      event.kind = ScanEvent::Kind::kStats;
      events.push_back(std::move(event));
      continue;
    }
    if (!assembler_.Feed(line)) continue;
    ScanEvent event;
    event.kind = ScanEvent::Kind::kFrame;
    event.frame = assembler_.Body();
    events.push_back(std::move(event));
    assembler_.Reset();
  }
  return events;
}

std::uint64_t RoutingKey(const std::string& frame) {
  // Header is the first line; payload is everything after it (including
  // the END terminator — constant across frames, so harmless to hash).
  const std::size_t header_end = frame.find('\n');
  if (header_end == std::string::npos) return Fnv1a64(frame);
  const std::string_view header(frame.data(), header_end);
  const std::string_view payload(frame.data() + header_end + 1,
                                 frame.size() - header_end - 1);
  // Extract the scheduler= token value from the header by scanning
  // space-separated tokens; no full parse — a malformed header must
  // still route somewhere deterministic.
  std::string_view scheduler;
  std::size_t pos = 0;
  while (pos < header.size()) {
    std::size_t end = header.find(' ', pos);
    if (end == std::string_view::npos) end = header.size();
    const std::string_view token = header.substr(pos, end - pos);
    constexpr std::string_view kKey = "scheduler=";
    if (token.size() > kKey.size() && token.substr(0, kKey.size()) == kKey) {
      scheduler = token.substr(kKey.size());
      break;
    }
    pos = end + 1;
  }
  if (scheduler.empty()) return Fnv1a64(frame);
  return Fnv1a64(payload, Fnv1a64(scheduler));
}

}  // namespace fadesched::service::shard
