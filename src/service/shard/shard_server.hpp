// The sharded serving tier's front-end: one epoll event loop that is
// simultaneously the client-facing router and the worker supervisor.
//
//   clients ──► epoll router ──► consistent-hash ring ──► N shard workers
//               (this class)       (RoutingKey affinity)   (forked procs)
//
// One loop, three duties, no threads:
//
//   * network: edge-triggered accept/read/write on the listener, every
//     client connection, and every worker socketpair. Per-connection
//     FrameScanners carve frames out of byte chunks; completed frames
//     become tickets routed by fingerprint over the HashRing; worker
//     responses re-sequence through a per-connection FIFO so each client
//     sees its replies in request order even when shards complete out of
//     order.
//   * supervision: Supervisor::Step() runs on the epoll tick. Worker
//     death fails that shard's in-flight tickets with a retryable error,
//     marks its arc dead (minimal remap — no other shard's keys move),
//     and the respawned worker re-arms the same arc. A SIGHUP rolls one
//     shard at a time with ring-aware draining: the arc goes dead first,
//     in-flight tickets complete on the old worker, then SIGTERM — at
//     every instant N-1 shards serve warm.
//   * aggregation: a client STATS verb fans kStatsQuery out to every
//     live shard and answers with one AccumulateStats'd line. A shard
//     dying mid-fan-out just drops out of the aggregate.
//
// Backpressure: bytes queued toward one worker are capped
// (`shard_pipe_cap_bytes`); past the cap new frames for that shard are
// answered with a retryable error instead of buffering unboundedly —
// one slow shard degrades its own arc, not the router's memory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/shard/frame_scanner.hpp"
#include "service/shard/hash_ring.hpp"
#include "service/shard/pipe.hpp"
#include "service/supervisor.hpp"
#include "util/error.hpp"

namespace fadesched::service::shard {

enum class RoutingMode {
  kAffinity,    ///< consistent-hash on the request fingerprint
  kRoundRobin,  ///< rotate across live shards (the bench's control arm)
};

struct ShardServerOptions {
  /// Listener + connection guards; `service` inside is the per-worker
  /// service config (each forked shard builds its own cache/batcher from
  /// it). inherited_listen_fd and chaos_abort_before_reply are ignored.
  ServerOptions server;

  std::size_t num_shards = 2;
  std::size_t vnodes_per_shard = 128;
  std::uint64_t ring_seed = 0x5eedU;
  RoutingMode routing = RoutingMode::kAffinity;
  std::size_t completion_threads_per_shard = 2;

  /// Cap on bytes buffered toward one worker before its arc starts
  /// shedding (see header comment).
  std::size_t shard_pipe_cap_bytes = 4u << 20;

  /// Supervision knobs (num_workers is overwritten with num_shards).
  SupervisorOptions supervisor;
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds + listens; throws util::HarnessError on socket failure.
  void Start();

  /// Resolved TCP port (after Start; 0 for Unix-domain sockets).
  [[nodiscard]] int Port() const { return port_; }

  /// Runs the event loop until Stop() or a guarded SIGTERM/SIGINT (a
  /// ScopedSignalGuard is installed for the duration, so forked workers
  /// inherit the handler), then drains: stop accepting, finish in-flight
  /// tickets within the supervisor's drain grace, shut workers down.
  void Serve();

  /// Requests shutdown from any thread (idempotent).
  void Stop();

  /// Supervision report of the last Serve() (for `--status-out`); slot
  /// entries carry shard id, ring arc, and liveness annotations.
  [[nodiscard]] const SupervisorReport& Report() const { return report_; }

  /// Live worker pid for a shard slot (-1 while down) — lets tests and
  /// kill drills aim a signal at one specific shard. Safe to call from
  /// any thread while Serve() runs (atomic mirror of the slot state).
  [[nodiscard]] pid_t WorkerPid(std::size_t slot) const {
    return slot < live_pids_.size()
               ? live_pids_[slot].load(std::memory_order_relaxed)
               : -1;
  }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameScanner scanner;
    std::string out;                  ///< bytes pending toward the client
    std::deque<std::uint64_t> fifo;   ///< tickets in request order
    std::chrono::steady_clock::time_point last_byte{};
    bool peer_closed = false;         ///< read side saw EOF
    bool evict = false;               ///< close once fifo + out drain
  };

  struct Ticket {
    std::uint64_t conn_id = 0;
    bool done = false;
    bool is_stats = false;
    std::size_t stats_waiting = 0;    ///< outstanding kStatsReply count
    StatsSnapshot stats_agg;
    std::string response;             ///< response line, no newline
  };

  struct ShardSlot {
    int router_fd = -1;   ///< our end of the socketpair (-1 while down)
    int worker_fd = -1;   ///< child's end, alive only across the fork
    std::string out;      ///< bytes pending toward the worker
    PipeDecoder decoder;
    /// Tickets awaiting replies. A set, not a vector: worker completion
    /// threads reply out of order, and at the pipe cap this can hold
    /// tens of thousands of entries — per-reply removal must be O(1).
    std::unordered_set<std::uint64_t> in_flight;
  };

  // Event-loop stages.
  void AcceptNewConnections();
  void HandleConnReadable(std::uint64_t conn_id);
  void HandleConnWritable(std::uint64_t conn_id);
  void HandleShardReadable(std::size_t slot);
  void HandleShardWritable(std::size_t slot);
  void HandleTick();

  // Routing and ticket plumbing.
  void RouteFrame(Conn& conn, std::string frame);
  void RouteStats(Conn& conn);
  void FailTicket(std::uint64_t ticket_id, const std::string& message);
  void SyntheticError(Conn& conn, util::ErrorKind kind,
                      const std::string& message);
  void CompleteTicket(std::uint64_t ticket_id, std::string response_line);
  void DrainPendingFlushes();
  void FlushConn(Conn& conn);
  void CloseConn(std::uint64_t conn_id);
  void FlushShard(std::size_t slot);
  [[nodiscard]] std::size_t PickShard(const std::string& frame);

  // Supervision hooks (run on this loop via Supervisor::Step()).
  void OnPrepareSpawn(std::size_t slot);
  void OnWorkerSpawned(std::size_t slot, pid_t pid);
  void OnWorkerDown(std::size_t slot, const std::string& reason);
  [[nodiscard]] std::string SlotAnnotation(std::size_t slot) const;
  void AdvanceRoll();
  void CloseInheritedFdsInChild(std::size_t slot) const;

  void UpdateEpollInterest(int fd, std::uint64_t tag, bool want_write);
  [[nodiscard]] bool StopRequested() const;

  ShardServerOptions options_;
  HashRing ring_;
  Supervisor supervisor_;
  SupervisorReport report_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::vector<ShardSlot> slots_;
  /// Cross-thread-readable mirror of each slot's worker pid (WorkerPid).
  std::vector<std::atomic<pid_t>> live_pids_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::unordered_map<std::uint64_t, Ticket> tickets_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_ticket_id_ = 1;
  std::size_t round_robin_next_ = 0;

  /// Connections with a newly completed ticket, awaiting FlushConn.
  /// CompleteTicket only enqueues here: flushing can close the conn and
  /// erase it from conns_, which must never happen synchronously under a
  /// caller still holding a Conn& (e.g. HandleConnReadable's drain loop).
  /// Drained at the end of each event-loop stage (DrainPendingFlushes).
  std::unordered_set<std::uint64_t> flush_pending_;

  /// Listener hit a transient accept error (EMFILE/ENFILE/...). The
  /// edge-triggered listener won't re-fire for connections already
  /// queued, so HandleTick retries the accept sweep instead of stalling.
  bool accept_retry_ = false;

  /// SIGHUP roll state: slots still to roll; the head is in one of two
  /// phases — arc dead + draining its in-flight, or waiting for the
  /// respawn. Empty = no roll in progress.
  std::deque<std::size_t> roll_queue_;
  bool roll_waiting_respawn_ = false;
};

}  // namespace fadesched::service::shard
