// Length-prefixed message framing for the router ↔ shard-worker
// socketpair. The client-facing wire stays the line protocol; inside the
// tier, frames ride a binary envelope so the router never has to re-scan
// worker output for line boundaries and a ticket id travels with every
// message (responses can complete out of order across shards while each
// client connection still receives its replies in request order — the
// router re-sequences by ticket).
//
// Envelope: 20-byte little-endian header {magic u32, kind u32, ticket
// u64, length u32} followed by `length` payload bytes.
//
//   kRequest     router → worker   payload = raw request frame (verbatim
//                                  client bytes, checksum intact)
//   kResponse    worker → router   payload = response line (no newline)
//   kStatsQuery  router → worker   payload empty
//   kStatsReply  worker → router   payload = FormatStatsLine() output
//
// A bad magic or an oversized length is a kFatal protocol error: the
// socketpair is a trusted in-machine transport, so corruption here means
// a worker bug (or a worker that died mid-write and left a torn header);
// the router treats it as a worker failure, not a retryable wire fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace fadesched::service::shard {

enum class PipeMsgKind : std::uint32_t {
  kRequest = 1,
  kResponse = 2,
  kStatsQuery = 3,
  kStatsReply = 4,
};

struct PipeMsg {
  PipeMsgKind kind = PipeMsgKind::kRequest;
  std::uint64_t ticket = 0;
  std::string payload;
};

inline constexpr std::uint32_t kPipeMagic = 0x46534850;  // "FSHP"
inline constexpr std::size_t kPipeHeaderBytes = 20;

/// Upper bound on a single pipe payload. Larger than the server's
/// max_frame_bytes default (1 MiB) so any admissible client frame fits;
/// far below anything a healthy worker emits, so a torn/garbage header
/// trips it immediately.
inline constexpr std::uint32_t kMaxPipePayloadBytes = 16u << 20;

/// Serializes `msg` onto the end of `out` (header + payload).
void AppendPipeMsg(std::string& out, const PipeMsg& msg);

/// Incremental decoder: feed raw bytes as they arrive from the
/// socketpair, pop complete messages. Throws util::FatalError on a bad
/// magic or an oversized length (trusted-transport contract above).
class PipeDecoder {
 public:
  void Feed(const char* data, std::size_t size);

  /// Next complete message, or nullopt if more bytes are needed.
  std::optional<PipeMsg> Pop();

  /// True when a partial header/payload is pending — EOF here means the
  /// peer died mid-write.
  [[nodiscard]] bool MidMessage() const { return !buffer_.empty(); }

  [[nodiscard]] std::size_t BufferedBytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace fadesched::service::shard
