// Consistent-hash ring for fingerprint-affinity request routing.
//
// Each of the `num_shards` shards owns `vnodes_per_shard` virtual nodes
// whose positions on the 64-bit ring are a pure function of
// (seed, shard, vnode) — membership changes never move them. A key is
// served by the first *live* vnode clockwise from it, so:
//
//   * determinism: two rings built from the same options agree on every
//     assignment, byte for byte — the router can be restarted (or a
//     sibling front-end brought up) without a remap storm;
//   * minimal remap: marking shard s dead remaps exactly the keys whose
//     successor vnode belonged to s (they slide forward to the next live
//     owner); marking it live again restores the original assignment
//     exactly. No other shard's keys move in either direction — which is
//     why a worker crash costs one shard's cache warmth, not the tier's.
//
// The ring is a routing table, not a registry: it always knows all
// `num_shards` shards and only tracks which are live. Shard workers are
// respawned into the same slot (same arc) by the supervisor, so a
// crash + respawn is arc-preserving by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fadesched::service::shard {

struct HashRingOptions {
  std::size_t num_shards = 1;
  /// Virtual nodes per shard. More vnodes → tighter load balance
  /// (max/mean load concentrates as ~1 + O(1/sqrt(vnodes))) at the cost
  /// of a larger table; 128 keeps max/mean under ~1.35 for ≤16 shards.
  std::size_t vnodes_per_shard = 128;
  /// Salts every vnode position; two tiers with different seeds shard
  /// the same keyspace differently.
  std::uint64_t seed = 0x5eedU;

  void Validate() const;
};

class HashRing {
 public:
  explicit HashRing(HashRingOptions options);

  [[nodiscard]] std::size_t NumShards() const { return options_.num_shards; }
  [[nodiscard]] std::size_t LiveCount() const { return live_count_; }
  [[nodiscard]] bool Live(std::size_t shard) const { return live_[shard]; }

  /// Marks a shard live/dead (idempotent). All shards start live.
  void SetLive(std::size_t shard, bool live);

  /// Owner of `key` among the live shards: the shard of the first live
  /// vnode at or clockwise from `key`'s ring position. Returns
  /// NumShards() when no shard is live.
  [[nodiscard]] std::size_t ShardFor(std::uint64_t key) const;

  /// Fraction of the 64-bit keyspace currently owned by `shard` (sums to
  /// 1 over live shards; 0 for dead ones). Reported per slot in the
  /// supervisor status JSON so the CI drill can assert arcs survive a
  /// respawn unchanged.
  [[nodiscard]] double ArcShare(std::size_t shard) const;

  /// FNV-1a over the ShardFor assignment of `keys` — a one-value digest
  /// of the whole routing table for determinism and minimal-remap tests.
  [[nodiscard]] std::uint64_t AssignmentDigest(
      const std::vector<std::uint64_t>& keys) const;

 private:
  struct VNode {
    std::uint64_t position;
    std::uint32_t shard;
  };

  HashRingOptions options_;
  std::vector<VNode> vnodes_;  ///< sorted by (position, shard)
  std::vector<bool> live_;
  std::size_t live_count_ = 0;
};

}  // namespace fadesched::service::shard
