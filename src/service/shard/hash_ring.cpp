#include "service/shard/hash_ring.hpp"

#include <algorithm>

#include "service/request.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service::shard {
namespace {

// Vnode positions must be a pure function of (seed, shard, vnode) so that
// every ring built from the same options — across processes, restarts,
// and shard-count comparisons in tests — places them identically.
std::uint64_t VNodePosition(std::uint64_t seed, std::uint32_t shard,
                            std::uint32_t vnode) {
  char key[20];
  std::uint64_t s = seed;
  for (int i = 0; i < 8; ++i) key[i] = static_cast<char>(s >> (8 * i));
  for (int i = 0; i < 4; ++i)
    key[8 + i] = static_cast<char>(shard >> (8 * i));
  for (int i = 0; i < 4; ++i)
    key[12 + i] = static_cast<char>(vnode >> (8 * i));
  // Double-hash: a single FNV-1a pass over near-identical short keys
  // leaves the low bits correlated across consecutive vnode indices,
  // which clumps arcs and ruins the balance bound.
  std::uint64_t h = Fnv1a64(std::string_view(key, 16));
  for (int i = 0; i < 4; ++i) key[16 + i] = static_cast<char>(h >> (8 * i));
  return Fnv1a64(std::string_view(key, 20), h);
}

}  // namespace

void HashRingOptions::Validate() const {
  if (num_shards < 1 || num_shards > 1024) {
    throw util::FatalError("hash ring: num_shards must be in [1, 1024]");
  }
  if (vnodes_per_shard < 1) {
    throw util::FatalError("hash ring: vnodes_per_shard must be >= 1");
  }
}

HashRing::HashRing(HashRingOptions options) : options_(options) {
  options_.Validate();
  vnodes_.reserve(options_.num_shards * options_.vnodes_per_shard);
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    for (std::uint32_t v = 0; v < options_.vnodes_per_shard; ++v) {
      vnodes_.push_back(VNode{VNodePosition(options_.seed, s, v), s});
    }
  }
  // Tie-break by shard so equal positions (astronomically rare but
  // possible) still order deterministically.
  std::sort(vnodes_.begin(), vnodes_.end(),
            [](const VNode& a, const VNode& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.shard < b.shard;
            });
  live_.assign(options_.num_shards, true);
  live_count_ = options_.num_shards;
}

void HashRing::SetLive(std::size_t shard, bool live) {
  FS_CHECK_MSG(shard < options_.num_shards, "shard index out of range");
  if (live_[shard] == live) return;
  live_[shard] = live;
  live_count_ += live ? 1 : -1;
}

std::size_t HashRing::ShardFor(std::uint64_t key) const {
  if (live_count_ == 0) return options_.num_shards;
  // First vnode at or clockwise from `key`; wrap to the start past the
  // highest position. Dead shards are skipped in ring order, which is
  // exactly the "only the lost arc remaps" property: a key whose
  // successor is live resolves identically whether or not other shards
  // are dead.
  auto it = std::lower_bound(
      vnodes_.begin(), vnodes_.end(), key,
      [](const VNode& v, std::uint64_t k) { return v.position < k; });
  for (std::size_t probes = 0; probes < vnodes_.size(); ++probes, ++it) {
    if (it == vnodes_.end()) it = vnodes_.begin();
    if (live_[it->shard]) return it->shard;
  }
  return options_.num_shards;  // unreachable: live_count_ > 0
}

double HashRing::ArcShare(std::size_t shard) const {
  FS_CHECK_MSG(shard < options_.num_shards, "shard index out of range");
  if (!live_[shard] || live_count_ == 0) return 0.0;
  // Walk the ring once, attributing to each live vnode the arc that ends
  // at it (i.e. keys in (prev_live_position, position] resolve to it).
  long double owned = 0.0L;
  constexpr long double kRing = 18446744073709551616.0L;  // 2^64
  // Find the last live vnode to anchor the first arc (wraparound).
  std::size_t prev = vnodes_.size();
  for (std::size_t i = vnodes_.size(); i-- > 0;) {
    if (live_[vnodes_[i].shard]) {
      prev = i;
      break;
    }
  }
  if (prev == vnodes_.size()) return 0.0;
  std::uint64_t prev_pos = vnodes_[prev].position;
  for (const VNode& v : vnodes_) {
    if (!live_[v.shard]) continue;
    // Arc length from the previous live vnode, wrapping modulo 2^64.
    std::uint64_t arc = v.position - prev_pos;
    if (v.shard == shard) owned += static_cast<long double>(arc);
    prev_pos = v.position;
  }
  // With a single live vnode total the loop above attributes arc 0 to it;
  // it owns the whole ring.
  if (owned == 0.0L) {
    std::size_t live_vnodes = 0;
    std::size_t live_mine = 0;
    for (const VNode& v : vnodes_) {
      if (!live_[v.shard]) continue;
      ++live_vnodes;
      if (v.shard == shard) ++live_mine;
    }
    if (live_vnodes == live_mine && live_vnodes > 0) return 1.0;
  }
  return static_cast<double>(owned / kRing);
}

std::uint64_t HashRing::AssignmentDigest(
    const std::vector<std::uint64_t>& keys) const {
  std::uint64_t digest = 14695981039346656037ULL;
  for (std::uint64_t key : keys) {
    std::size_t shard = ShardFor(key);
    char buf[8];
    for (int i = 0; i < 8; ++i)
      buf[i] = static_cast<char>(static_cast<std::uint64_t>(shard) >> (8 * i));
    digest = Fnv1a64(std::string_view(buf, 8), digest);
  }
  return digest;
}

}  // namespace fadesched::service::shard
