// Per-connection incremental frame reassembly for the epoll router.
//
// The thread-per-connection Server can block in recv and split lines as
// it goes; the event-loop front-end instead gets arbitrary byte chunks
// whenever the socket is readable and must carve frames out of them
// without blocking. FrameScanner is that state machine: feed bytes,
// drain events. Semantics deliberately mirror Server::HandleConnection
// line for line — the chaos suite asserts byte-identical behaviour
// between the two front-ends:
//
//   * lines end at '\n'; a trailing '\r' is stripped (telnet-friendly);
//   * a bare STATS line between frames is a metrics query, the same
//     bytes inside a frame are scenario payload;
//   * a frame runs from its header line through the END terminator;
//   * the max-frame guard counts assembled bytes plus unscanned buffer.
//
// The scanner does NOT parse or validate frames — routing must not
// depend on validity (a corrupt frame still routes to one worker, whose
// ParseRequestFrame answers with the typed error; the router stays dumb
// and all protocol policy lives in exactly one place).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace fadesched::service::shard {

struct ScanEvent {
  enum class Kind {
    kFrame,  ///< a complete request frame; `frame` holds the raw bytes
    kStats,  ///< a bare STATS line between frames
  };
  Kind kind = Kind::kFrame;
  std::string frame;
};

class FrameScanner {
 public:
  /// Appends raw bytes from the socket; call Drain() afterwards.
  void Feed(const char* data, std::size_t size);

  /// Carves complete events out of the buffered bytes. Returns the
  /// events in arrival order; an incomplete trailing frame stays pending.
  std::vector<ScanEvent> Drain();

  /// True while a frame is partially assembled (or a partial line is
  /// buffered) — the idle-eviction and EOF-mid-frame guards key on this.
  [[nodiscard]] bool MidFrame() const {
    return !assembler_.Empty() || !buffer_.empty();
  }

  /// Lines fed into the pending frame (named in guard errors).
  [[nodiscard]] std::size_t Lines() const { return assembler_.Lines(); }

  /// Assembled + unscanned bytes, the quantity the max-frame guard caps.
  [[nodiscard]] std::size_t PendingBytes() const {
    return assembler_.ByteSize() + buffer_.size();
  }

  /// Truncation error message for EOF mid-frame (FrameAssembler's).
  [[nodiscard]] std::string Truncated() const { return assembler_.Truncated(); }

 private:
  std::string buffer_;       ///< bytes not yet split into lines
  FrameAssembler assembler_;
};

/// Consistent-hash routing key of a raw request frame: FNV-1a over the
/// scheduler= header token chained over the scenario payload. The id=,
/// deadline= and check= tokens are deliberately excluded so repeat
/// requests for the same (scenario, scheduler) pair land on the same
/// shard — affinity is what turns N per-process caches into one warm
/// tier. Malformed headers hash the whole frame: still deterministic, so
/// the worker that answers the typed parse error is stable too.
std::uint64_t RoutingKey(const std::string& frame);

}  // namespace fadesched::service::shard
