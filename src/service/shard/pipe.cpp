#include "service/shard/pipe.hpp"

#include <cstdio>
#include <cstring>

#include "util/error.hpp"

namespace fadesched::service::shard {
namespace {

void PutU32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 4);
}

void PutU64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 8);
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

void AppendPipeMsg(std::string& out, const PipeMsg& msg) {
  if (msg.payload.size() > kMaxPipePayloadBytes) {
    throw util::FatalError("pipe payload of " +
                           std::to_string(msg.payload.size()) +
                           " bytes exceeds the " +
                           std::to_string(kMaxPipePayloadBytes) + " cap");
  }
  out.reserve(out.size() + kPipeHeaderBytes + msg.payload.size());
  PutU32(out, kPipeMagic);
  PutU32(out, static_cast<std::uint32_t>(msg.kind));
  PutU64(out, msg.ticket);
  PutU32(out, static_cast<std::uint32_t>(msg.payload.size()));
  out += msg.payload;
}

void PipeDecoder::Feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<PipeMsg> PipeDecoder::Pop() {
  if (buffer_.size() < kPipeHeaderBytes) return std::nullopt;
  const char* p = buffer_.data();
  const std::uint32_t magic = GetU32(p);
  if (magic != kPipeMagic) {
    throw util::FatalError("shard pipe framing lost: bad magic 0x" + [&] {
      char hex[9];
      std::snprintf(hex, sizeof hex, "%08x", magic);
      return std::string(hex);
    }());
  }
  const std::uint32_t kind = GetU32(p + 4);
  if (kind < 1 || kind > 4) {
    throw util::FatalError("shard pipe framing lost: unknown kind " +
                           std::to_string(kind));
  }
  const std::uint64_t ticket = GetU64(p + 8);
  const std::uint32_t length = GetU32(p + 16);
  if (length > kMaxPipePayloadBytes) {
    throw util::FatalError("shard pipe framing lost: payload length " +
                           std::to_string(length) + " exceeds the " +
                           std::to_string(kMaxPipePayloadBytes) + " cap");
  }
  if (buffer_.size() < kPipeHeaderBytes + length) return std::nullopt;
  PipeMsg msg;
  msg.kind = static_cast<PipeMsgKind>(kind);
  msg.ticket = ticket;
  msg.payload.assign(buffer_, kPipeHeaderBytes, length);
  buffer_.erase(0, kPipeHeaderBytes + length);
  return msg;
}

}  // namespace fadesched::service::shard
