#include "service/shard/shard_server.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <utility>

#include "service/shard/shard_worker.hpp"
#include "util/check.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service::shard {

namespace {

constexpr int kTickMs = 20;

// epoll_event.data.u64 tag: top byte is the fd's role, the rest the id.
constexpr std::uint64_t kTagListener = 1;
constexpr std::uint64_t kTagConn = 2;
constexpr std::uint64_t kTagShard = 3;

std::uint64_t MakeTag(std::uint64_t role, std::uint64_t id) {
  return (role << 56) | (id & ((1ULL << 56) - 1));
}

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw util::TransientError(what + ": " + std::strerror(errno));
}

void SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

/// Non-blocking write of as much of `data` as the socket takes; consumed
/// bytes are erased. Returns false when the peer is gone (EPIPE etc.).
bool WriteSome(int fd, std::string& data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    data.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

std::string ErrorLine(util::ErrorKind kind, const std::string& message) {
  SchedulingResponse response;
  response.status = ResponseStatus::kError;
  response.error_kind = kind;
  response.message = message;
  response.id = "-";
  return FormatResponseLine(response);
}

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)),
      ring_(HashRingOptions{options_.num_shards, options_.vnodes_per_shard,
                            options_.ring_seed}),
      supervisor_(
          // Worker main runs in the forked child: shed every inherited
          // router fd, then serve this slot's pipe until EOF/SIGTERM.
          [this](std::size_t slot, std::size_t spawn_ordinal) {
            CloseInheritedFdsInChild(slot);
            ShardWorkerOptions worker;
            worker.pipe_fd = slots_[slot].worker_fd;
            worker.completion_threads = options_.completion_threads_per_shard;
            worker.shard_id = slot;
            worker.spawn_ordinal = spawn_ordinal;
            worker.service = options_.server.service;
            return RunShardWorker(worker);
          },
          [this] {
            SupervisorOptions sup = options_.supervisor;
            sup.num_workers = options_.num_shards;
            sup.hooks.prepare_spawn = [this](std::size_t slot) {
              OnPrepareSpawn(slot);
            };
            sup.hooks.worker_spawned = [this](std::size_t slot, pid_t pid) {
              OnWorkerSpawned(slot, pid);
            };
            sup.hooks.worker_down = [this](std::size_t slot,
                                           const std::string& reason) {
              OnWorkerDown(slot, reason);
            };
            sup.hooks.slot_annotation = [this](std::size_t slot) {
              return SlotAnnotation(slot);
            };
            return sup;
          }()),
      live_pids_(options_.num_shards) {
  slots_.resize(options_.num_shards);
  for (auto& pid : live_pids_) pid.store(-1, std::memory_order_relaxed);
}

ShardServer::~ShardServer() {
  Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.server.unix_socket_path.empty()) {
      ::unlink(options_.server.unix_socket_path.c_str());
    }
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  for (ShardSlot& slot : slots_) {
    if (slot.router_fd >= 0) ::close(slot.router_fd);
    if (slot.worker_fd >= 0) ::close(slot.worker_fd);
  }
}

void ShardServer::Start() {
  ServerOptions listen = options_.server;
  listen.inherited_listen_fd = -1;  // the router always binds its own
  listen_fd_ = BindListenSocket(listen, &port_);
}

void ShardServer::Stop() { stop_.store(true, std::memory_order_relaxed); }

bool ShardServer::StopRequested() const {
  return stop_.load(std::memory_order_relaxed) || util::ShutdownRequested();
}

void ShardServer::UpdateEpollInterest(int fd, std::uint64_t tag,
                                      bool want_write) {
  epoll_event event{};
  event.events = EPOLLIN | EPOLLET | (want_write ? EPOLLOUT : 0u);
  event.data.u64 = tag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
}

void ShardServer::CloseInheritedFdsInChild(std::size_t slot) const {
  // Forked child: the worker keeps exactly one fd — its own pipe end.
  // Everything else (listener, epoll, client conns, every router pipe
  // end, siblings' worker ends) must go, or a dead router's sockets
  // would be held open by its orphans.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  for (const auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  for (std::size_t j = 0; j < slots_.size(); ++j) {
    if (slots_[j].router_fd >= 0) ::close(slots_[j].router_fd);
    if (j != slot && slots_[j].worker_fd >= 0) ::close(slots_[j].worker_fd);
  }
}

void ShardServer::OnPrepareSpawn(std::size_t slot_index) {
  ShardSlot& slot = slots_[slot_index];
  // A failed fork can leave a stale pair behind; replace it.
  if (slot.worker_fd >= 0) {
    ::close(slot.worker_fd);
    slot.worker_fd = -1;
  }
  if (slot.router_fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, slot.router_fd, nullptr);
    ::close(slot.router_fd);
    slot.router_fd = -1;
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
    // The fork that follows will fail too under fd pressure; leave the
    // slot pipeless — the supervisor's backoff retries the whole spawn.
    return;
  }
  slot.router_fd = sv[0];
  slot.worker_fd = sv[1];
  SetNonBlockingFd(slot.router_fd);
}

void ShardServer::OnWorkerSpawned(std::size_t slot_index, pid_t pid) {
  live_pids_[slot_index].store(pid, std::memory_order_relaxed);
  ShardSlot& slot = slots_[slot_index];
  if (slot.worker_fd >= 0) {
    ::close(slot.worker_fd);  // parent keeps only the router end
    slot.worker_fd = -1;
  }
  if (slot.router_fd < 0) return;  // socketpair() failed in prepare_spawn
  slot.out.clear();
  slot.decoder = PipeDecoder{};
  FS_CHECK_MSG(slot.in_flight.empty(),
               "respawned shard slot still holds in-flight tickets");
  epoll_event event{};
  event.events = EPOLLIN | EPOLLET;
  event.data.u64 = MakeTag(kTagShard, slot_index);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, slot.router_fd, &event);
  // The fresh worker re-arms the exact arc its predecessor owned —
  // minimal remap is "the lost arc comes back", not "reshuffle".
  ring_.SetLive(slot_index, true);
  if (roll_waiting_respawn_ && !roll_queue_.empty() &&
      roll_queue_.front() == slot_index) {
    roll_queue_.pop_front();
    roll_waiting_respawn_ = false;
  }
}

void ShardServer::OnWorkerDown(std::size_t slot_index,
                               const std::string& reason) {
  live_pids_[slot_index].store(-1, std::memory_order_relaxed);
  ShardSlot& slot = slots_[slot_index];
  ring_.SetLive(slot_index, false);
  if (slot.router_fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, slot.router_fd, nullptr);
    ::close(slot.router_fd);
    slot.router_fd = -1;
  }
  slot.out.clear();
  slot.decoder = PipeDecoder{};
  // Fail what the dead worker still owed. The error is kTransient: the
  // work was lost, not wrong — an idempotent re-send lands on a live
  // arc. A mid-fan-out STATS ticket just loses this shard's contribution.
  std::unordered_set<std::uint64_t> owed;
  owed.swap(slot.in_flight);
  for (const std::uint64_t ticket_id : owed) {
    auto it = tickets_.find(ticket_id);
    if (it == tickets_.end() || it->second.done) continue;
    if (it->second.is_stats) {
      if (it->second.stats_waiting > 0 && --it->second.stats_waiting == 0) {
        CompleteTicket(ticket_id, FormatStatsLine(it->second.stats_agg));
      }
      continue;
    }
    FailTicket(ticket_id,
               "shard " + std::to_string(slot_index) + " worker lost (" +
                   reason + ") before replying — retry");
  }
}

std::string ShardServer::SlotAnnotation(std::size_t slot) const {
  char arc_buf[32];
  std::snprintf(arc_buf, sizeof(arc_buf), "%.4f", ring_.ArcShare(slot));
  std::string out = "\"shard_id\": " + std::to_string(slot) +
                    ", \"ring_arc\": " + arc_buf + ", \"ring_live\": " +
                    (ring_.Live(slot) ? "true" : "false");
  return out;
}

std::size_t ShardServer::PickShard(const std::string& frame) {
  if (options_.routing == RoutingMode::kAffinity) {
    return ring_.ShardFor(RoutingKey(frame));
  }
  // Round-robin control arm: rotate over live slots, affinity-blind.
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    const std::size_t slot =
        (round_robin_next_ + probe) % slots_.size();
    if (ring_.Live(slot)) {
      round_robin_next_ = (slot + 1) % slots_.size();
      return slot;
    }
  }
  return slots_.size();
}

void ShardServer::FailTicket(std::uint64_t ticket_id,
                             const std::string& message) {
  CompleteTicket(ticket_id, ErrorLine(util::ErrorKind::kTransient, message));
}

void ShardServer::SyntheticError(Conn& conn, util::ErrorKind kind,
                                 const std::string& message) {
  const std::uint64_t ticket_id = next_ticket_id_++;
  Ticket ticket;
  ticket.conn_id = conn.id;
  ticket.done = true;
  ticket.response = ErrorLine(kind, message);
  tickets_.emplace(ticket_id, std::move(ticket));
  conn.fifo.push_back(ticket_id);
}

void ShardServer::CompleteTicket(std::uint64_t ticket_id,
                                 std::string response_line) {
  auto it = tickets_.find(ticket_id);
  if (it == tickets_.end()) return;
  it->second.done = true;
  it->second.response = std::move(response_line);
  auto conn_it = conns_.find(it->second.conn_id);
  if (conn_it == conns_.end()) {
    tickets_.erase(it);  // client vanished first; drop the orphan
    return;
  }
  // Defer the flush: FlushConn can CloseConn (a failed write to a gone
  // peer), which erases the Conn from conns_ — lethal to any caller up
  // the stack still holding a Conn& (RouteFrame/RouteStats can complete
  // synchronously from inside HandleConnReadable's drain loop). Every
  // event-loop stage drains this queue once references are dropped.
  flush_pending_.insert(it->second.conn_id);
}

void ShardServer::DrainPendingFlushes() {
  while (!flush_pending_.empty()) {
    std::unordered_set<std::uint64_t> batch;
    batch.swap(flush_pending_);
    for (const std::uint64_t conn_id : batch) {
      auto it = conns_.find(conn_id);
      if (it != conns_.end()) FlushConn(it->second);
    }
  }
}

void ShardServer::FlushConn(Conn& conn) {
  // Re-sequencing point: only the done head-run of the FIFO may leave —
  // a later ticket finishing first waits for its elders, which is what
  // keeps per-connection response order identical to request order no
  // matter which shards answered.
  while (!conn.fifo.empty()) {
    auto it = tickets_.find(conn.fifo.front());
    if (it == tickets_.end()) {
      conn.fifo.pop_front();  // dropped ticket (shouldn't happen live)
      continue;
    }
    if (!it->second.done) break;
    conn.out += it->second.response;
    conn.out += '\n';
    tickets_.erase(it);
    conn.fifo.pop_front();
  }
  bool alive = true;
  if (!conn.out.empty()) alive = WriteSome(conn.fd, conn.out);
  if (!alive) {
    CloseConn(conn.id);
    return;
  }
  if ((conn.evict || conn.peer_closed) && conn.fifo.empty() &&
      conn.out.empty()) {
    CloseConn(conn.id);
    return;
  }
  UpdateEpollInterest(conn.fd, MakeTag(kTagConn, conn.id), !conn.out.empty());
}

void ShardServer::CloseConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Orphan this connection's tickets: ones already answered die here;
  // ones still on a shard die when the reply (or the worker) comes back.
  for (const std::uint64_t ticket_id : it->second.fifo) {
    auto ticket_it = tickets_.find(ticket_id);
    if (ticket_it != tickets_.end() && ticket_it->second.done) {
      tickets_.erase(ticket_it);
    } else if (ticket_it != tickets_.end()) {
      ticket_it->second.conn_id = 0;  // reply path drops it on arrival
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
}

void ShardServer::FlushShard(std::size_t slot_index) {
  ShardSlot& slot = slots_[slot_index];
  if (slot.router_fd < 0) return;
  if (!slot.out.empty() && !WriteSome(slot.router_fd, slot.out)) {
    // Worker end gone mid-write: the reap path (next Step) classifies
    // the death and fails the in-flight tickets; nothing to do here.
    return;
  }
  UpdateEpollInterest(slot.router_fd, MakeTag(kTagShard, slot_index),
                      !slot.out.empty());
}

void ShardServer::RouteFrame(Conn& conn, std::string frame) {
  const std::uint64_t ticket_id = next_ticket_id_++;
  Ticket ticket;
  ticket.conn_id = conn.id;
  tickets_.emplace(ticket_id, std::move(ticket));
  conn.fifo.push_back(ticket_id);

  const std::size_t slot_index = PickShard(frame);
  if (slot_index >= slots_.size() || slots_[slot_index].router_fd < 0) {
    FailTicket(ticket_id, "no live shard for this request — retry");
    return;
  }
  ShardSlot& slot = slots_[slot_index];
  if (slot.out.size() > options_.shard_pipe_cap_bytes) {
    FailTicket(ticket_id,
               "shard " + std::to_string(slot_index) +
                   " backpressure: pipe buffer full — retry");
    return;
  }
  PipeMsg msg;
  msg.kind = PipeMsgKind::kRequest;
  msg.ticket = ticket_id;
  msg.payload = std::move(frame);
  AppendPipeMsg(slot.out, msg);
  slot.in_flight.insert(ticket_id);
  FlushShard(slot_index);
}

void ShardServer::RouteStats(Conn& conn) {
  const std::uint64_t ticket_id = next_ticket_id_++;
  Ticket ticket;
  ticket.conn_id = conn.id;
  ticket.is_stats = true;
  conn.fifo.push_back(ticket_id);

  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    // Same backpressure contract as RouteFrame: a stalled worker's pipe
    // must not grow past the cap. Its snapshot drops out of the
    // aggregate, exactly as if the shard died mid-fan-out.
    if (slots_[i].router_fd >= 0 && supervisor_.SlotPid(i) > 0 &&
        slots_[i].out.size() <= options_.shard_pipe_cap_bytes) {
      targets.push_back(i);
    }
  }
  ticket.stats_waiting = targets.size();
  auto [it, inserted] = tickets_.emplace(ticket_id, std::move(ticket));
  (void)inserted;
  if (targets.empty()) {
    // Nobody to ask: answer with a zero snapshot rather than hang.
    CompleteTicket(ticket_id, FormatStatsLine(StatsSnapshot{}));
    return;
  }
  for (const std::size_t slot_index : targets) {
    PipeMsg msg;
    msg.kind = PipeMsgKind::kStatsQuery;
    msg.ticket = ticket_id;
    AppendPipeMsg(slots_[slot_index].out, msg);
    slots_[slot_index].in_flight.insert(ticket_id);
    FlushShard(slot_index);
  }
}

void ShardServer::AcceptNewConnections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // EMFILE/ENFILE/ENOBUFS/...: the backlog is NOT drained, and the
        // edge-triggered listener only re-fires on a brand-new SYN — the
        // queued connections would stall forever. Retry on the next tick.
        accept_retry_ = true;
      }
      return;
    }
    SetNonBlockingFd(fd);
    const std::uint64_t conn_id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.id = conn_id;
    conn.last_byte = std::chrono::steady_clock::now();
    epoll_event event{};
    event.events = EPOLLIN | EPOLLET;
    event.data.u64 = MakeTag(kTagConn, conn_id);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    conns_.emplace(conn_id, std::move(conn));
  }
}

void ShardServer::HandleConnReadable(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.evict) return;  // input after eviction is ignored

  char chunk[16384];
  bool saw_eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      saw_eof = true;  // hard error: treat as gone
      break;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    conn.scanner.Feed(chunk, static_cast<std::size_t>(n));
    conn.last_byte = std::chrono::steady_clock::now();
  }

  for (ScanEvent& event : conn.scanner.Drain()) {
    if (event.kind == ScanEvent::Kind::kStats) {
      RouteStats(conn);
    } else {
      RouteFrame(conn, std::move(event.frame));
    }
  }

  // Max-frame guard, same contract (and nearly the same wording) as the
  // thread-per-connection server: reject instead of buffering unboundedly.
  if (!conn.evict &&
      conn.scanner.PendingBytes() > options_.server.max_frame_bytes) {
    SyntheticError(conn, util::ErrorKind::kFatal,
                   "request frame line " +
                       std::to_string(conn.scanner.Lines() + 1) +
                       ": frame exceeds max_frame_bytes=" +
                       std::to_string(options_.server.max_frame_bytes) + " (" +
                       std::to_string(conn.scanner.PendingBytes()) +
                       " bytes buffered) — rejected, connection closed");
    conn.evict = true;
  }

  if (saw_eof) {
    conn.peer_closed = true;
    if (conn.scanner.MidFrame()) {
      // EOF mid-frame: best-effort truncation error before the close
      // (the peer may keep its read side open after shutdown(SHUT_WR)).
      SyntheticError(conn, util::ErrorKind::kFatal, conn.scanner.Truncated());
    }
  }
  // `conn` was safe to hold through the drain loop above because ticket
  // completion only queues flushes; now that the reference is done with,
  // flush this conn (and any other whose ticket completed synchronously).
  flush_pending_.insert(conn_id);
  DrainPendingFlushes();  // may CloseConn; `conn` is dead after this line
}

void ShardServer::HandleConnWritable(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  FlushConn(it->second);
}

void ShardServer::HandleShardReadable(std::size_t slot_index) {
  ShardSlot& slot = slots_[slot_index];
  if (slot.router_fd < 0) return;
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(slot.router_fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN drained, or a dying pipe — the reap handles death
    }
    if (n == 0) break;  // EOF: worker exiting; reap classifies it
    slot.decoder.Feed(chunk, static_cast<std::size_t>(n));
  }
  try {
    while (auto msg = slot.decoder.Pop()) {
      slot.in_flight.erase(msg->ticket);
      if (msg->kind == PipeMsgKind::kResponse) {
        CompleteTicket(msg->ticket, std::move(msg->payload));
      } else if (msg->kind == PipeMsgKind::kStatsReply) {
        auto it = tickets_.find(msg->ticket);
        if (it == tickets_.end()) continue;
        try {
          AccumulateStats(it->second.stats_agg, ParseStatsLine(msg->payload));
        } catch (const std::exception&) {
          // A torn stats line loses one shard's contribution, nothing
          // else — same contract as a shard dying mid-fan-out.
        }
        if (it->second.stats_waiting > 0 &&
            --it->second.stats_waiting == 0) {
          CompleteTicket(msg->ticket, FormatStatsLine(it->second.stats_agg));
        }
      }
      // kRequest/kStatsQuery arriving at the router = worker bug; the
      // decoder's kind check already threw for out-of-range kinds.
    }
  } catch (const std::exception& e) {
    // Framing lost on this pipe: crash-only response — kill the worker,
    // let the reap + respawn path rebuild a clean slate.
    std::fprintf(stderr, "[router] shard %zu pipe corrupted: %s\n",
                 slot_index, e.what());
    const pid_t pid = supervisor_.SlotPid(slot_index);
    if (pid > 0) ::kill(pid, SIGKILL);
  }
  DrainPendingFlushes();
}

void ShardServer::HandleShardWritable(std::size_t slot_index) {
  FlushShard(slot_index);
}

void ShardServer::AdvanceRoll() {
  if (roll_queue_.empty() || roll_waiting_respawn_) return;
  const std::size_t slot_index = roll_queue_.front();
  if (supervisor_.SlotPid(slot_index) <= 0) {
    // Crashed (or mid-respawn) while queued: the crash path already
    // recycled it — skip, nothing to roll.
    roll_queue_.pop_front();
    return;
  }
  // Ring-aware drain: pull the arc first so new keys remap, let the old
  // worker finish what it owes, then — and only then — SIGTERM it.
  ring_.SetLive(slot_index, false);
  ShardSlot& slot = slots_[slot_index];
  if (!slot.in_flight.empty() || !slot.out.empty()) return;  // still owed
  supervisor_.BeginSlotShutdown(slot_index, "rolled");
  roll_waiting_respawn_ = true;
}

void ShardServer::HandleTick() {
  supervisor_.Step();
  if (supervisor_.ConsumeHupRequest() && roll_queue_.empty()) {
    for (std::size_t i = 0; i < slots_.size(); ++i) roll_queue_.push_back(i);
  }
  AdvanceRoll();
  DrainPendingFlushes();  // worker death above may have failed tickets

  if (accept_retry_ && listen_fd_ >= 0) {
    accept_retry_ = false;
    AcceptNewConnections();  // re-sets the flag if fds are still short
  }

  const auto now = std::chrono::steady_clock::now();
  const double deadline = options_.server.read_deadline_seconds;
  std::vector<std::uint64_t> to_close;
  for (auto& [conn_id, conn] : conns_) {
    // Slow-loris guard, same contract as the threaded server: a started
    // frame must keep bytes coming; idle *between* frames is legitimate.
    if (!conn.evict && conn.scanner.MidFrame() && deadline > 0.0 &&
        std::chrono::duration<double>(now - conn.last_byte).count() >
            deadline) {
      SyntheticError(conn, util::ErrorKind::kTimeout,
                     "read deadline: frame stalled after " +
                         std::to_string(conn.scanner.Lines()) +
                         " line(s) with no byte for " +
                         std::to_string(deadline) +
                         " s — connection evicted");
      conn.evict = true;
      FlushConn(conn);  // may erase conn — restart iteration via ids
      to_close.clear();
      break;
    }
    if (draining_ && conn.fifo.empty() && conn.out.empty() &&
        !conn.scanner.MidFrame()) {
      to_close.push_back(conn_id);  // idle at drain time: hang up
    }
  }
  for (const std::uint64_t conn_id : to_close) CloseConn(conn_id);

  if (!draining_ && StopRequested()) {
    // Drain begins: stop accepting (close + unlink so retrying clients
    // fail fast with a typed connect error, same as the threaded
    // server), finish in-flight tickets within the grace window.
    draining_ = true;
    drain_deadline_ =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      options_.supervisor.drain_grace_seconds));
    if (listen_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (!options_.server.unix_socket_path.empty()) {
        ::unlink(options_.server.unix_socket_path.c_str());
      }
    }
  }
}

void ShardServer::Serve() {
  FS_CHECK_MSG(listen_fd_ >= 0, "Serve() before Start()");
  // Workers fork from inside this call and inherit the guard's handlers,
  // so a SIGTERM to a worker lands in its poll loop too.
  util::ScopedSignalGuard signal_guard;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("epoll_create1");
  epoll_event listen_event{};
  listen_event.events = EPOLLIN | EPOLLET;
  listen_event.data.u64 = MakeTag(kTagListener, 0);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) < 0) {
    ThrowErrno("epoll_ctl(listener)");
  }

  supervisor_.Begin();

  epoll_event events[64];
  for (;;) {
    const int ready =
        ::epoll_wait(epoll_fd_, events, static_cast<int>(std::size(events)),
                     kTickMs);
    if (ready < 0 && errno != EINTR) ThrowErrno("epoll_wait");
    for (int i = 0; i < (ready > 0 ? ready : 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint64_t role = tag >> 56;
      const std::uint64_t id = tag & ((1ULL << 56) - 1);
      const std::uint32_t mask = events[i].events;
      if (role == kTagListener) {
        if (listen_fd_ >= 0) AcceptNewConnections();
      } else if (role == kTagConn) {
        if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          HandleConnReadable(id);
        }
        if ((mask & EPOLLOUT) != 0) HandleConnWritable(id);
      } else if (role == kTagShard) {
        if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          HandleShardReadable(static_cast<std::size_t>(id));
        }
        if ((mask & EPOLLOUT) != 0) {
          HandleShardWritable(static_cast<std::size_t>(id));
        }
      }
    }
    HandleTick();
    if (supervisor_.BreakerOpen()) break;
    if (draining_ &&
        (conns_.empty() ||
         std::chrono::steady_clock::now() >= drain_deadline_)) {
      break;
    }
  }

  // Teardown: sever remaining clients (past-grace stragglers), then shut
  // the worker tier down (End() snapshots slot status first, so the
  // report still shows who was serving and on which arc).
  std::vector<std::uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [conn_id, conn] : conns_) remaining.push_back(conn_id);
  for (const std::uint64_t conn_id : remaining) CloseConn(conn_id);
  tickets_.clear();
  flush_pending_.clear();
  report_ = supervisor_.End();
  for (ShardSlot& slot : slots_) {
    if (slot.router_fd >= 0) {
      ::close(slot.router_fd);
      slot.router_fd = -1;
    }
    if (slot.worker_fd >= 0) {
      ::close(slot.worker_fd);
      slot.worker_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.server.unix_socket_path.empty()) {
      ::unlink(options_.server.unix_socket_path.c_str());
    }
  }
  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

}  // namespace fadesched::service::shard
