#include "service/shard/shard_worker.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "service/protocol.hpp"
#include "service/shard/pipe.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service::shard {

namespace {

constexpr int kPollTickMs = 20;

/// One pipe write mutex per worker: envelopes must land contiguously on
/// the stream or the router's decoder sees torn headers.
class PipeWriter {
 public:
  explicit PipeWriter(int fd) : fd_(fd) {}

  /// False once the router end is gone — callers stop producing.
  bool Write(const PipeMsg& msg) {
    std::string wire;
    AppendPipeMsg(wire, msg);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (broken_) return false;
    std::size_t written = 0;
    while (written < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + written,
                               wire.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        broken_ = true;
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  int fd_;
  std::mutex mutex_;
  bool broken_ = false;
};

struct PendingReply {
  std::uint64_t ticket = 0;
  std::future<SchedulingResponse> future;
};

}  // namespace

int RunShardWorker(const ShardWorkerOptions& options) {
  if (options.pipe_fd < 0) {
    std::fprintf(stderr, "[shard %zu] no pipe fd\n", options.shard_id);
    return 1;
  }
  SchedulingService service(options.service);
  service.Metrics().worker_restarts.store(options.spawn_ordinal,
                                          std::memory_order_relaxed);
  PipeWriter writer(options.pipe_fd);

  // Completion stage: drain Submit futures into kResponse envelopes.
  // Completion order is arbitrary — the ticket carries the ordering.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<PendingReply> queue;
  bool closing = false;
  std::vector<std::thread> drainers;
  const std::size_t drainer_count =
      options.completion_threads == 0 ? 1 : options.completion_threads;
  drainers.reserve(drainer_count);
  for (std::size_t t = 0; t < drainer_count; ++t) {
    drainers.emplace_back([&] {
      for (;;) {
        PendingReply reply;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock, [&] { return closing || !queue.empty(); });
          if (queue.empty()) return;  // closing and dry
          reply = std::move(queue.front());
          queue.pop_front();
        }
        // The future is always fulfilled (batcher contract), so this
        // blocks only for genuinely in-flight work.
        const SchedulingResponse response = reply.future.get();
        PipeMsg msg;
        msg.kind = PipeMsgKind::kResponse;
        msg.ticket = reply.ticket;
        msg.payload = FormatResponseLine(response);
        writer.Write(msg);
      }
    });
  }

  const auto enqueue = [&](std::uint64_t ticket,
                           std::future<SchedulingResponse> future) {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      queue.push_back(PendingReply{ticket, std::move(future)});
    }
    queue_cv.notify_one();
  };

  // Reader loop (main thread): poll → decode → dispatch.
  ServiceMetrics& metrics = service.Metrics();
  PipeDecoder decoder;
  char chunk[16384];
  bool eof = false;
  int rc = 0;
  try {
    while (!eof && !util::ShutdownRequested()) {
      pollfd pfd{options.pipe_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, kPollTickMs);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) continue;  // tick: re-check the shutdown flag
      const ssize_t n = ::recv(options.pipe_fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) {
        eof = true;  // router gone or draining us — finish and exit
        break;
      }
      decoder.Feed(chunk, static_cast<std::size_t>(n));
      while (auto msg = decoder.Pop()) {
        switch (msg->kind) {
          case PipeMsgKind::kRequest: {
            SchedulingRequest request;
            bool parsed = false;
            SchedulingResponse error_response;
            try {
              request = ParseRequestFrame(msg->payload);
              parsed = true;
            } catch (const util::HarnessError& e) {
              // Same taxonomy split as the thread-per-connection server:
              // corruption (check= mismatch) is kTransient and
              // retryable; a malformed frame is a caller bug.
              if (e.kind() == util::ErrorKind::kTransient) {
                metrics.checksum_failures.fetch_add(1,
                                                    std::memory_order_relaxed);
              } else {
                metrics.protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
              }
              error_response.status = ResponseStatus::kError;
              error_response.error_kind = e.kind();
              error_response.message = e.what();
              error_response.id = "-";
            } catch (const std::exception& e) {
              metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
              error_response.status = ResponseStatus::kError;
              error_response.error_kind = util::ErrorKind::kFatal;
              error_response.message = e.what();
              error_response.id = "-";
            }
            if (!parsed) {
              PipeMsg out;
              out.kind = PipeMsgKind::kResponse;
              out.ticket = msg->ticket;
              out.payload = FormatResponseLine(error_response);
              if (!writer.Write(out)) eof = true;
              break;
            }
            // Submit serves response-cache hits inline (the future comes
            // back fulfilled), so warm repeats cost the drainer a get()
            // and a write, never a batcher round-trip.
            enqueue(msg->ticket, service.Submit(std::move(request)));
            break;
          }
          case PipeMsgKind::kStatsQuery: {
            PipeMsg out;
            out.kind = PipeMsgKind::kStatsReply;
            out.ticket = msg->ticket;
            out.payload = FormatStatsLine(CaptureStats(metrics));
            if (!writer.Write(out)) eof = true;
            break;
          }
          case PipeMsgKind::kResponse:
          case PipeMsgKind::kStatsReply:
            // Router-bound kinds arriving at a worker mean the router
            // has a bug; crash-only says die loudly.
            std::fprintf(stderr, "[shard %zu] unexpected pipe kind %u\n",
                         options.shard_id,
                         static_cast<unsigned>(msg->kind));
            eof = true;
            rc = 1;
            break;
        }
        if (eof) break;
      }
    }
  } catch (const std::exception& e) {
    // A torn pipe header or decoder fault: crash-only exit, the
    // supervisor respawns a fresh worker.
    std::fprintf(stderr, "[shard %zu] fatal: %s\n", options.shard_id,
                 e.what());
    rc = 1;
  }

  // Drain: everything admitted gets computed and written before exit —
  // a rolled worker finishes its in-flight tickets, which is what keeps
  // the soak ledger zero-loss through a SIGHUP roll.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    closing = true;
  }
  queue_cv.notify_all();
  for (std::thread& t : drainers) t.join();
  service.Drain();
  ::close(options.pipe_fd);
  return rc;
}

}  // namespace fadesched::service::shard
