// Line-protocol client: connect to a serve endpoint (Unix-domain or TCP),
// send request frames, read response lines. Used by the loadgen, the
// chaos transport, the service bench, and the loopback tests; simple by
// design — one in-flight request per connection.
//
// Every blocking point is poll-based with a deadline: connect, send, and
// recv all give up with util::TimeoutError (kTimeout, exit 3) instead of
// hanging forever on a stalled peer. The socket stays non-blocking for
// its whole life; deadlines are wall-clock budgets per operation, not
// per syscall, so a peer trickling one byte per tick cannot stretch an
// operation past its budget.
#pragma once

#include <string>

#include "service/protocol.hpp"
#include "service/request.hpp"

namespace fadesched::service {

struct ClientOptions {
  /// Budget for establishing a connection (seconds); 0 = no limit.
  double connect_timeout_seconds = 10.0;
  /// Budget for one SendRaw or ReadLine operation (seconds); 0 = no
  /// limit. A stalled `recv` surfaces as util::TimeoutError instead of
  /// blocking the caller forever.
  double io_timeout_seconds = 30.0;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions options) : options_(options) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket path or "host:port". Throws
  /// util::HarnessError: kTransient on connection failure, kTimeout when
  /// the connect deadline expires.
  void ConnectUnix(const std::string& path);
  void ConnectTcp(const std::string& host, int port);

  [[nodiscard]] bool Connected() const { return fd_ >= 0; }
  void Close();

  /// Half-close: shuts down the write side only, delivering EOF to the
  /// peer while keeping the read side open. The malformed-frame tests
  /// use this to observe the server's EOF-mid-frame error response.
  void ShutdownWrite();

  [[nodiscard]] const ClientOptions& Options() const { return options_; }

  /// Raw socket fd (-1 when disconnected). The socket is non-blocking
  /// for its whole life, so a caller may drive it through its own
  /// readiness loop — the multiplexed loadgen registers many Client fds
  /// with one epoll and owns all I/O on them while doing so.
  [[nodiscard]] int NativeHandle() const { return fd_; }

  /// Sends one frame and blocks (bounded by io_timeout_seconds) for the
  /// single response line. Throws util::HarnessError on transport
  /// failure, timeout, or malformed response.
  SchedulingResponse Call(const SchedulingRequest& request);

  /// Sends the bare STATS verb and parses the checksummed counter line —
  /// a point-in-time snapshot of the worker this connection landed on
  /// (under `supervise`, siblings have independent counters). Throws
  /// util::HarnessError on transport failure or a corrupt line.
  StatsSnapshot Stats();

  /// Raw variants (the bench uses these to measure serialization
  /// separately and the tests to send malformed frames).
  void SendRaw(const std::string& bytes);
  std::string ReadLine();

 private:
  void FinishConnect(const std::string& what);

  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace fadesched::service
