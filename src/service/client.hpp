// Blocking line-protocol client: connect to a serve endpoint (Unix-domain
// or TCP), send request frames, read response lines. Used by the loadgen,
// the service bench, and the loopback tests; simple by design — one
// in-flight request per connection.
#pragma once

#include <string>

#include "service/request.hpp"

namespace fadesched::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain socket path or "host:port". Throws
  /// util::HarnessError (kTransient) on connection failure.
  void ConnectUnix(const std::string& path);
  void ConnectTcp(const std::string& host, int port);

  [[nodiscard]] bool Connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one frame and blocks for the single response line. Throws
  /// util::HarnessError on transport failure or malformed response.
  SchedulingResponse Call(const SchedulingRequest& request);

  /// Raw variants (the bench uses these to measure serialization
  /// separately and the tests to send malformed frames).
  void SendRaw(const std::string& bytes);
  std::string ReadLine();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace fadesched::service
