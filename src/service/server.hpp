// Line-delimited socket front-end for the SchedulingService: one listener
// (Unix-domain socket or TCP loopback), one thread per connection, one
// response line per request frame.
//
// Shutdown is cooperative and graceful: the accept loop polls at a ~200 ms
// tick and exits when Stop() is called or util::ShutdownRequested() flips
// (the CLI installs a ScopedSignalGuard, so SIGTERM/SIGINT land here).
// In-flight requests complete and their responses are written before
// connections close; the service then drains its queue and joins its
// workers. `fadesched_cli serve` exits 0 after a graceful drain — CI pins
// that contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace fadesched::service {

struct ServerOptions {
  /// Non-empty → listen on this Unix-domain socket path (the file is
  /// created on Start and unlinked on shutdown). Empty → TCP.
  std::string unix_socket_path;
  /// TCP bind address; loopback by default (the service is a benchmark
  /// harness, not an internet-facing daemon).
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (resolved port available via Port()).
  int port = 0;

  /// Connection guards (the chaos layer's server-side defenses). A frame
  /// accumulating beyond `max_frame_bytes` — including a single line that
  /// long — is answered with a typed protocol error and the connection is
  /// closed; without the cap a hostile or corrupted peer could buffer
  /// unboundedly. A connection that has started a frame but delivers no
  /// byte for `read_deadline_seconds` (slow-loris) is evicted the same
  /// way; 0 disables the deadline. Idle connections *between* frames are
  /// never evicted — keepalive is legitimate.
  std::size_t max_frame_bytes = 1 << 20;
  double read_deadline_seconds = 30.0;

  /// ≥ 0 → adopt this already-bound, already-listening socket instead of
  /// binding one (the supervisor binds once and forks workers that share
  /// the fd, so the kernel load-balances accepts across them). The
  /// adopting server never unlinks a unix socket path — the fd's owner
  /// does. The listener is switched to non-blocking either way: with
  /// several processes polling one fd, an accept-race loser must get
  /// EAGAIN and return to its poll loop, not block outside it.
  int inherited_listen_fd = -1;

  /// Crash-injection test hook: when > 0, the process _exit(137)s
  /// immediately before writing its Nth scheduling response — the
  /// request was fully executed but never acknowledged, the worst spot
  /// for a crash. Drives the "killed mid-frame never acks; idempotent
  /// re-send lands on a sibling" drain-edge test. 0 = off.
  std::uint64_t chaos_abort_before_reply = 0;

  ServiceOptions service;
};

/// Binds + listens per `options` (unix path or TCP host:port) and returns
/// the non-blocking listener fd; `resolved_port` (may be null) receives
/// the ephemeral port for TCP. Throws util::HarnessError on failure.
/// Exposed so the supervisor can create the shared socket its workers
/// inherit.
int BindListenSocket(const ServerOptions& options, int* resolved_port);

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens; throws util::HarnessError on socket failure.
  void Start();

  /// Resolved TCP port (after Start; 0 for Unix-domain sockets).
  [[nodiscard]] int Port() const { return port_; }

  /// Accept/serve loop; blocks until Stop() or a guarded SIGINT/SIGTERM,
  /// then completes in-flight requests, drains the service, and returns.
  void Serve();

  /// Requests shutdown from any thread (idempotent).
  void Stop();

  [[nodiscard]] SchedulingService& Service() { return *service_; }

 private:
  void HandleConnection(int fd);
  void ReapFinishedConnections();
  [[nodiscard]] bool StopRequested() const;

  ServerOptions options_;
  std::unique_ptr<SchedulingService> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> replies_written_{0};  // chaos_abort hook
  std::vector<std::thread> connections_;
  // Connection threads announce completion here so the accept loop can
  // join them as it goes; without reaping, a reconnect-heavy workload
  // (the chaos soak retries by reconnecting) would pile up thousands of
  // finished-but-unjoined threads until shutdown.
  std::mutex finished_mutex_;
  std::vector<std::thread::id> finished_;
};

}  // namespace fadesched::service
