// Crash-only worker supervision for the serving tier.
//
// The supervisor forks N worker processes that share one listening socket
// (bound once by the caller, inherited by fd — the kernel load-balances
// accepts across the workers' poll loops), then runs a single-threaded
// control loop that only ever does four things:
//
//   * reap: waitpid(WNOHANG) notices dead workers. A non-zero or
//     signalled exit is a crash; the slot is respawned after a bounded
//     exponential backoff that resets once a worker survives
//     `stable_seconds`. A clean exit outside a rolling restart is
//     treated the same way (a worker has no business exiting on its own).
//   * circuit-break: more than `max_restarts_in_window` restarts inside
//     `restart_window_seconds` means the workers are flapping (crash on
//     boot, poisoned state); instead of burning CPU forever the breaker
//     opens, everything is torn down, and Run() returns with
//     breaker_open=true so the caller can exit non-zero.
//   * rolling restart (SIGHUP): one slot at a time — SIGTERM, wait for
//     the worker's graceful drain (in-flight requests complete, new
//     accepts race to the siblings), respawn, move on. At every instant
//     N-1 workers are accepting, which is why the chaos-soak ledger
//     stays zero-loss through a mid-soak SIGHUP.
//   * shutdown (Stop()/SIGTERM/SIGINT): SIGTERM to every worker, wait up
//     to `drain_grace_seconds`, escalate to SIGKILL, reap, return.
//
// Crash-only rationale: workers are the only state holders, and their
// state is a cache — so the recovery path IS the startup path. The
// supervisor never pickles or hands over state; it just re-forks. That
// makes the injected-SIGKILL drill (below) exercise the exact same code
// as a real segfault, OOM-kill, or deploy.
//
// Process-fault injection: a ProcessChaosOptions seed expands into a
// deterministic, time-sorted plan of SIGKILLs, SIGSTOP stalls, and
// startup crashes (same SplitMix64→Xoshiro idiom as the socket-level
// ChaosPlan, so one seed replays one recovery history). The plan is a
// plain vector — shrinking a failure is dropping events and re-running.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fadesched::service {

/// One scheduled process fault. `at_seconds` is relative to Run() start.
struct ProcessFaultEvent {
  enum class Kind { kKill, kStall, kStartupCrash };
  Kind kind = Kind::kKill;
  double at_seconds = 0.0;
  /// Preferred victim slot; if it happens to be down when the event
  /// fires, the first live worker is hit instead (the fault must land
  /// for `restarts == injected kills` to be assertable).
  std::size_t slot = 0;
  double stall_seconds = 0.0;  ///< kStall: SIGSTOP → SIGCONT gap
};

/// Seeded process-fault generator. kills/stalls are spread uniformly
/// over [0, window_seconds); startup_crashes poison the first N spawns
/// (the child _exit(77)s before serving), exercising the backoff and
/// breaker paths deterministically.
struct ProcessChaosOptions {
  std::uint64_t seed = 1;
  std::size_t kills = 0;
  std::size_t stalls = 0;
  std::size_t startup_crashes = 0;
  double window_seconds = 10.0;
  double stall_seconds = 0.2;

  void Validate() const;
};

/// Expands the options into a time-sorted plan (deterministic per seed).
std::vector<ProcessFaultEvent> BuildProcessFaultPlan(
    const ProcessChaosOptions& chaos, std::size_t num_workers);

/// One line per event ("t=1.234 slot=2 kill" / "... stall=0.200" /
/// "spawn=3 startup-crash"), sorted — byte-identical across runs of the
/// same seed, diffable like the socket-level FaultTrace.
std::string FormatProcessFaultPlan(const std::vector<ProcessFaultEvent>& plan);

/// Lifecycle callbacks for embedders that multiplex supervision with
/// their own event loop (the shard router). All fire on the supervising
/// thread/loop, never in the child.
struct SupervisorHooks {
  /// Immediately before fork() for `slot` — the router creates a fresh
  /// socketpair here so the child inherits its end.
  std::function<void(std::size_t slot)> prepare_spawn;
  /// After a successful fork, parent side.
  std::function<void(std::size_t slot, pid_t pid)> worker_spawned;
  /// A worker left its slot (reaped). `reason` is the slot's respawn
  /// reason ("crash", "clean-exit", "startup-crash", "rolled", ...); the
  /// router fails that shard's in-flight tickets and closes its pipe end
  /// here. Fires before the respawn is scheduled.
  std::function<void(std::size_t slot, const std::string& reason)> worker_down;
  /// Extra JSON fields for this slot's entry in the status report, e.g.
  /// `"ring_arc": 0.25, "live": true`. Must be valid JSON object-body
  /// fragments (no braces); empty string for none.
  std::function<std::string(std::size_t slot)> slot_annotation;
};

struct SupervisorOptions {
  std::size_t num_workers = 2;

  /// Crash-restart backoff: initial × multiplier^(consecutive crashes),
  /// capped at max; a worker alive for `stable_seconds` resets its
  /// slot's streak.
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  double stable_seconds = 5.0;

  /// Flap breaker: opening threshold, counted across all slots.
  std::size_t max_restarts_in_window = 8;
  double restart_window_seconds = 10.0;

  /// Shutdown/rolling-restart escalation: SIGTERM, then SIGKILL after
  /// this grace period.
  double drain_grace_seconds = 10.0;

  ProcessChaosOptions chaos;

  SupervisorHooks hooks;

  void Validate() const;
};

/// Per-slot line of the status report: who is (or last was) in the
/// slot, how many times it has been forked, and why the most recent
/// spawn happened — the CI shard drill asserts the killed slot (and only
/// it) reads "crash" while a SIGHUP roll marks every slot "rolled".
struct SlotStatus {
  std::size_t slot = 0;
  pid_t pid = -1;
  std::size_t spawns = 0;
  std::string last_respawn_reason;  ///< "initial", "crash", "rolled", ...
  std::string annotation;           ///< hooks.slot_annotation fragment
};

/// What happened over one Run(), dumped as JSON by `supervise
/// --status-out` and asserted by the CI crash drill.
struct SupervisorReport {
  std::size_t spawned = 0;          ///< total forks, initial set included
  std::size_t restarts = 0;         ///< crash-driven respawns
  std::size_t rolled = 0;           ///< rolling-restart respawns (SIGHUP)
  std::size_t crashes = 0;          ///< non-clean worker exits observed
  std::size_t startup_crashes = 0;  ///< injected boot failures
  std::size_t injected_kills = 0;
  std::size_t injected_stalls = 0;
  bool breaker_open = false;
  double wall_seconds = 0.0;
  std::vector<SlotStatus> slots;

  [[nodiscard]] std::string ToJson() const;
};

class Supervisor {
 public:
  /// Runs inside the forked child: typically builds a Server on the
  /// inherited listener fd and Serve()s. The return value becomes the
  /// worker's exit code. `slot` is the stable worker index,
  /// `spawn_ordinal` the global fork count before this one (stored in
  /// ServiceMetrics::worker_restarts so the STATS verb can report it).
  /// Must not return through supervisor state — the child _exit()s with
  /// the returned code immediately after.
  using WorkerMain =
      std::function<int(std::size_t slot, std::size_t spawn_ordinal)>;

  Supervisor(WorkerMain worker_main, SupervisorOptions options);

  /// Forks the initial workers and supervises until Stop(), a guarded
  /// SIGTERM/SIGINT, or the breaker opens. SIGHUP triggers a rolling
  /// restart. Workers running at exit are drained (SIGTERM → grace →
  /// SIGKILL). Not reentrant. Equivalent to Begin() + a Step() loop at
  /// the tick cadence + End().
  SupervisorReport Run();

  /// Stepwise API for embedders with their own event loop (the shard
  /// router multiplexes supervision ticks with epoll readiness — a
  /// blocking Run() could never coordinate ring-aware draining, because
  /// drain progress depends on that same loop pumping responses).
  ///
  /// Begin() installs the SIGHUP handler and forks the initial workers.
  /// Step() is one non-blocking supervision tick: reap, fire due faults,
  /// respawn due slots, escalate overdue slot shutdowns. End() drains
  /// everything, restores handlers, and returns the report. A SIGHUP
  /// between Step()s is NOT auto-handled — the embedder polls
  /// ConsumeHupRequest() and runs its own drain-aware roll via
  /// BeginSlotShutdown(); Run() wires the same flag to the built-in
  /// blocking roll.
  void Begin();
  void Step();
  SupervisorReport End();

  /// True once per delivered SIGHUP (clears the flag).
  [[nodiscard]] bool ConsumeHupRequest();

  /// Breaker / external stop state, for embedder loop conditions.
  [[nodiscard]] bool BreakerOpen() const { return report_.breaker_open; }
  [[nodiscard]] bool StopRequested() const;

  /// Pid of the worker currently in `slot` (-1 while between spawns).
  [[nodiscard]] pid_t SlotPid(std::size_t slot) const;

  /// Starts a graceful, expected shutdown of one slot: SIGTERM now,
  /// SIGKILL escalation after the drain grace (enforced by Step()). The
  /// exit is classified as `reason` (not a crash — no backoff, no
  /// breaker count; "rolled" also bumps report.rolled), and the slot
  /// respawns immediately after the reap. The embedder observes the
  /// sequence via hooks: worker_down(slot, reason) → prepare_spawn →
  /// worker_spawned.
  void BeginSlotShutdown(std::size_t slot, const std::string& reason);

  /// Requests shutdown from any thread (idempotent).
  void Stop();

 private:
  struct Slot {
    pid_t pid = -1;
    std::size_t consecutive_crashes = 0;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point respawn_at{};
    bool respawn_pending = false;
    bool startup_crash_next = false;
    /// BeginSlotShutdown state: the next exit is expected (classified as
    /// `pending_reason`, respawned without backoff); past
    /// `shutdown_deadline` Step() escalates to SIGKILL.
    bool shutting_down = false;
    std::chrono::steady_clock::time_point shutdown_deadline{};
    std::string pending_reason;
    /// Why the *next* spawn happens / why the last one happened.
    std::string next_spawn_reason = "initial";
    std::string last_respawn_reason;
    std::size_t spawns = 0;
  };

  void SpawnWorker(std::size_t slot_index);
  void ReapWorkers();
  void FillSlotStatus();
  void FireDueFaults();
  void HandleRollingRestart();
  void DrainAll();
  [[nodiscard]] double BackoffSeconds(std::size_t consecutive_crashes) const;
  void RecordRestartForBreaker();
  [[nodiscard]] std::size_t LiveWorkers() const;

  WorkerMain worker_main_;
  SupervisorOptions options_;
  SupervisorReport report_;
  std::vector<Slot> slots_;
  std::vector<ProcessFaultEvent> fault_plan_;
  std::size_t next_fault_ = 0;
  std::size_t startup_crashes_left_ = 0;
  /// {due time, slot, pid at SIGSTOP time} — SIGCONT is skipped if the
  /// slot's pid changed (the stalled worker died; never signal a reused
  /// pid).
  struct PendingCont {
    std::chrono::steady_clock::time_point due;
    std::size_t slot;
    pid_t pid;
  };
  std::vector<PendingCont> pending_conts_;
  std::vector<std::chrono::steady_clock::time_point> restart_times_;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<bool> stop_{false};
  bool began_ = false;
};

}  // namespace fadesched::service
