// Crash-only worker supervision for the serving tier.
//
// The supervisor forks N worker processes that share one listening socket
// (bound once by the caller, inherited by fd — the kernel load-balances
// accepts across the workers' poll loops), then runs a single-threaded
// control loop that only ever does four things:
//
//   * reap: waitpid(WNOHANG) notices dead workers. A non-zero or
//     signalled exit is a crash; the slot is respawned after a bounded
//     exponential backoff that resets once a worker survives
//     `stable_seconds`. A clean exit outside a rolling restart is
//     treated the same way (a worker has no business exiting on its own).
//   * circuit-break: more than `max_restarts_in_window` restarts inside
//     `restart_window_seconds` means the workers are flapping (crash on
//     boot, poisoned state); instead of burning CPU forever the breaker
//     opens, everything is torn down, and Run() returns with
//     breaker_open=true so the caller can exit non-zero.
//   * rolling restart (SIGHUP): one slot at a time — SIGTERM, wait for
//     the worker's graceful drain (in-flight requests complete, new
//     accepts race to the siblings), respawn, move on. At every instant
//     N-1 workers are accepting, which is why the chaos-soak ledger
//     stays zero-loss through a mid-soak SIGHUP.
//   * shutdown (Stop()/SIGTERM/SIGINT): SIGTERM to every worker, wait up
//     to `drain_grace_seconds`, escalate to SIGKILL, reap, return.
//
// Crash-only rationale: workers are the only state holders, and their
// state is a cache — so the recovery path IS the startup path. The
// supervisor never pickles or hands over state; it just re-forks. That
// makes the injected-SIGKILL drill (below) exercise the exact same code
// as a real segfault, OOM-kill, or deploy.
//
// Process-fault injection: a ProcessChaosOptions seed expands into a
// deterministic, time-sorted plan of SIGKILLs, SIGSTOP stalls, and
// startup crashes (same SplitMix64→Xoshiro idiom as the socket-level
// ChaosPlan, so one seed replays one recovery history). The plan is a
// plain vector — shrinking a failure is dropping events and re-running.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fadesched::service {

/// One scheduled process fault. `at_seconds` is relative to Run() start.
struct ProcessFaultEvent {
  enum class Kind { kKill, kStall, kStartupCrash };
  Kind kind = Kind::kKill;
  double at_seconds = 0.0;
  /// Preferred victim slot; if it happens to be down when the event
  /// fires, the first live worker is hit instead (the fault must land
  /// for `restarts == injected kills` to be assertable).
  std::size_t slot = 0;
  double stall_seconds = 0.0;  ///< kStall: SIGSTOP → SIGCONT gap
};

/// Seeded process-fault generator. kills/stalls are spread uniformly
/// over [0, window_seconds); startup_crashes poison the first N spawns
/// (the child _exit(77)s before serving), exercising the backoff and
/// breaker paths deterministically.
struct ProcessChaosOptions {
  std::uint64_t seed = 1;
  std::size_t kills = 0;
  std::size_t stalls = 0;
  std::size_t startup_crashes = 0;
  double window_seconds = 10.0;
  double stall_seconds = 0.2;

  void Validate() const;
};

/// Expands the options into a time-sorted plan (deterministic per seed).
std::vector<ProcessFaultEvent> BuildProcessFaultPlan(
    const ProcessChaosOptions& chaos, std::size_t num_workers);

/// One line per event ("t=1.234 slot=2 kill" / "... stall=0.200" /
/// "spawn=3 startup-crash"), sorted — byte-identical across runs of the
/// same seed, diffable like the socket-level FaultTrace.
std::string FormatProcessFaultPlan(const std::vector<ProcessFaultEvent>& plan);

struct SupervisorOptions {
  std::size_t num_workers = 2;

  /// Crash-restart backoff: initial × multiplier^(consecutive crashes),
  /// capped at max; a worker alive for `stable_seconds` resets its
  /// slot's streak.
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  double stable_seconds = 5.0;

  /// Flap breaker: opening threshold, counted across all slots.
  std::size_t max_restarts_in_window = 8;
  double restart_window_seconds = 10.0;

  /// Shutdown/rolling-restart escalation: SIGTERM, then SIGKILL after
  /// this grace period.
  double drain_grace_seconds = 10.0;

  ProcessChaosOptions chaos;

  void Validate() const;
};

/// What happened over one Run(), dumped as JSON by `supervise
/// --status-out` and asserted by the CI crash drill.
struct SupervisorReport {
  std::size_t spawned = 0;          ///< total forks, initial set included
  std::size_t restarts = 0;         ///< crash-driven respawns
  std::size_t rolled = 0;           ///< rolling-restart respawns (SIGHUP)
  std::size_t crashes = 0;          ///< non-clean worker exits observed
  std::size_t startup_crashes = 0;  ///< injected boot failures
  std::size_t injected_kills = 0;
  std::size_t injected_stalls = 0;
  bool breaker_open = false;
  double wall_seconds = 0.0;

  [[nodiscard]] std::string ToJson() const;
};

class Supervisor {
 public:
  /// Runs inside the forked child: typically builds a Server on the
  /// inherited listener fd and Serve()s. The return value becomes the
  /// worker's exit code. `slot` is the stable worker index,
  /// `spawn_ordinal` the global fork count before this one (stored in
  /// ServiceMetrics::worker_restarts so the STATS verb can report it).
  /// Must not return through supervisor state — the child _exit()s with
  /// the returned code immediately after.
  using WorkerMain =
      std::function<int(std::size_t slot, std::size_t spawn_ordinal)>;

  Supervisor(WorkerMain worker_main, SupervisorOptions options);

  /// Forks the initial workers and supervises until Stop(), a guarded
  /// SIGTERM/SIGINT, or the breaker opens. SIGHUP triggers a rolling
  /// restart. Workers running at exit are drained (SIGTERM → grace →
  /// SIGKILL). Not reentrant.
  SupervisorReport Run();

  /// Requests shutdown from any thread (idempotent).
  void Stop();

 private:
  struct Slot {
    pid_t pid = -1;
    std::size_t consecutive_crashes = 0;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point respawn_at{};
    bool respawn_pending = false;
    bool startup_crash_next = false;
  };

  void SpawnWorker(std::size_t slot_index);
  void ReapWorkers();
  void FireDueFaults();
  void HandleRollingRestart();
  void DrainAll();
  [[nodiscard]] double BackoffSeconds(std::size_t consecutive_crashes) const;
  void RecordRestartForBreaker();
  [[nodiscard]] std::size_t LiveWorkers() const;

  WorkerMain worker_main_;
  SupervisorOptions options_;
  SupervisorReport report_;
  std::vector<Slot> slots_;
  std::vector<ProcessFaultEvent> fault_plan_;
  std::size_t next_fault_ = 0;
  std::size_t startup_crashes_left_ = 0;
  /// {due time, slot, pid at SIGSTOP time} — SIGCONT is skipped if the
  /// slot's pid changed (the stalled worker died; never signal a reused
  /// pid).
  struct PendingCont {
    std::chrono::steady_clock::time_point due;
    std::size_t slot;
    pid_t pid;
  };
  std::vector<PendingCont> pending_conts_;
  std::vector<std::chrono::steady_clock::time_point> restart_times_;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<bool> stop_{false};
};

}  // namespace fadesched::service
