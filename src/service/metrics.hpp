// Service observability: lock-free counters + latency histograms, dumped
// as JSON.
//
// Everything here is written on the request hot path, so the counters are
// relaxed atomics and the histogram records into log-spaced atomic bins
// (3 bins per octave from 1 µs, ~26% resolution over ~16 orders of
// magnitude). Percentiles are derived from the bins at read time — an
// approximation that is deterministic for a fixed set of samples, which
// is what the smoke tests pin.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace fadesched::service {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency (thread-safe, wait-free).
  void Record(double seconds);

  [[nodiscard]] std::uint64_t Count() const;

  /// Approximate percentile (p in [0, 1]) in seconds: the geometric
  /// midpoint of the bin holding the p-quantile sample. 0 when empty.
  [[nodiscard]] double Percentile(double p) const;

  /// {"count": N, "p50_ms": ..., "p95_ms": ..., "p99_ms": ...}
  [[nodiscard]] std::string ToJson() const;

 private:
  // Bin 0 holds everything below 1 µs; the last bin everything above the
  // covered range. 3 bins/octave × 96 bins spans 1 µs … ~4.3e3 s.
  static constexpr int kBinsPerOctave = 3;
  static constexpr int kNumBins = 96;
  static int BinIndex(double seconds);
  static double BinMidSeconds(int bin);

  std::array<std::atomic<std::uint64_t>, kNumBins> bins_;
};

/// One counter per admission/execution/cache outcome. Monotonic; read
/// with relaxed loads (snapshots need not be mutually consistent).
struct ServiceMetrics {
  // Admission control. submitted counts every Submit call, so at
  // quiescence: submitted == admitted + shed + shed_overload +
  // rejected_draining, and admitted == completed + failed + timed_out.
  std::atomic<std::uint64_t> submitted{0};  ///< every Submit call
  std::atomic<std::uint64_t> admitted{0};   ///< accepted into the queue
  std::atomic<std::uint64_t> shed{0};       ///< rejected, queue full
  std::atomic<std::uint64_t> shed_overload{0};  ///< rejected by controller
  std::atomic<std::uint64_t> shed_cold{0};  ///< sheds that were cold-class
  std::atomic<std::uint64_t> rejected_draining{0};  ///< rejected, draining
  std::atomic<std::uint64_t> timed_out{0};  ///< deadline passed in queue

  // Execution.
  std::atomic<std::uint64_t> completed{0};  ///< handler returned ok
  std::atomic<std::uint64_t> failed{0};     ///< handler threw / error status

  // Cache.
  std::atomic<std::uint64_t> response_hits{0};
  std::atomic<std::uint64_t> response_misses{0};
  std::atomic<std::uint64_t> scenario_hits{0};
  std::atomic<std::uint64_t> scenario_misses{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  std::atomic<std::uint64_t> cache_collisions{0};

  // Connection guards (server-side chaos defenses).
  std::atomic<std::uint64_t> protocol_errors{0};   ///< malformed frames → ERR
  std::atomic<std::uint64_t> oversized_frames{0};  ///< max-frame guard fired
  std::atomic<std::uint64_t> evicted_slow{0};      ///< read-deadline evictions
  std::atomic<std::uint64_t> checksum_failures{0};  ///< check=/sum= mismatches

  // Chaos layer (client-side; populated by the fault-injecting transport
  // and the retrying client when handed this instance).
  std::atomic<std::uint64_t> chaos_injected{0};   ///< faults injected
  std::atomic<std::uint64_t> chaos_recovered{0};  ///< calls ok after ≥1 retry

  // Overload controller (src/service/overload.hpp). brownout_entries
  // counts idle→brownout transitions; brownout_builds counts engine
  // builds actually degraded to the fast backend.
  std::atomic<std::uint64_t> brownout_entries{0};
  std::atomic<std::uint64_t> brownout_builds{0};
  /// Worker-restart count inherited from the supervisor at fork time
  /// (how many restarts preceded this worker); 0 outside `supervise`.
  std::atomic<std::uint64_t> worker_restarts{0};

  // Gauges (instantaneous, not monotone — excluded from the
  // snapshot-consistency monotonicity test).
  std::atomic<std::uint64_t> queue_depth{0};
  std::atomic<std::uint64_t> queue_delay_ewma_us{0};
  std::atomic<std::uint64_t> brownout_active{0};  ///< 0 or 1

  LatencyHistogram queue_latency;    ///< enqueue → worker pickup
  LatencyHistogram service_latency;  ///< handler execution
  LatencyHistogram total_latency;    ///< enqueue → response ready
  // total_latency split by admission class: the overload controller's
  // whole point is that these two diverge under pressure (cold absorbs
  // the queueing, warm stays near its uncontended value), and that claim
  // is only checkable if the service itself keeps the split.
  LatencyHistogram warm_total_latency;  ///< enqueue → ready, warm class
  LatencyHistogram cold_total_latency;  ///< enqueue → ready, cold class

  ServiceMetrics() = default;
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  /// Full JSON document (counters + the three histograms).
  [[nodiscard]] std::string ToJson() const;

  /// Atomic (temp → fsync → rename) JSON dump; throws HarnessError on I/O
  /// failure.
  void DumpJson(const std::string& path) const;
};

}  // namespace fadesched::service
