#include "service/request.hpp"

#include <cstring>

#include "geom/vec2.hpp"
#include "util/check.hpp"

namespace fadesched::service {

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kError: return "error";
  }
  return "unknown";
}

int SchedulingResponse::ExitCode() const {
  if (Ok()) return util::kExitOk;
  return util::ExitCodeForError(error_kind);
}

std::uint64_t Fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

void AppendDouble(std::string& out, double value) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &value, sizeof(double));
  out.append(bytes, sizeof(double));
}

void AppendU64(std::string& out, std::uint64_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(value));
}

}  // namespace

Fingerprint FingerprintRequest(const SchedulingRequest& request) {
  FS_CHECK_MSG(!request.scheduler.empty(),
               "request carries no scheduler name");
  const net::LinkSet& links = request.scenario.links;
  const channel::ChannelParams& params = request.scenario.params;

  Fingerprint fp;
  std::string& blob = fp.canonical_scenario;
  blob.reserve(64 + links.Size() * 6 * sizeof(double));
  blob.append("fadesched-fp-v1");
  blob.push_back('\0');
  AppendDouble(blob, params.alpha);
  AppendDouble(blob, params.epsilon);
  AppendDouble(blob, params.gamma_th);
  AppendDouble(blob, params.tx_power);
  AppendDouble(blob, params.noise_power);
  AppendU64(blob, static_cast<std::uint64_t>(links.Size()));
  for (net::LinkId i = 0; i < links.Size(); ++i) {
    const geom::Vec2 sender = links.Sender(i);
    const geom::Vec2 receiver = links.Receiver(i);
    AppendDouble(blob, sender.x);
    AppendDouble(blob, sender.y);
    AppendDouble(blob, receiver.x);
    AppendDouble(blob, receiver.y);
    AppendDouble(blob, links.Rate(i));
    AppendDouble(blob, links.TxPower(i));
  }

  fp.scheduler = request.scheduler;
  fp.scenario_hash = Fnv1a64(fp.canonical_scenario);
  // Chain the scheduler name (plus a separator that cannot appear in a
  // name) so "rle" on scenario X never collides with "ldp" on X.
  fp.request_hash = Fnv1a64(fp.scheduler, Fnv1a64("\n#scheduler:",
                                                  fp.scenario_hash));
  return fp;
}

}  // namespace fadesched::service
