#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service {

namespace {

constexpr int kPollTickMs = 200;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw util::TransientError(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying short writes; false if the peer went
/// away (EPIPE et al.) — a vanished client is not a server error.
bool WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

int BindListenSocket(const ServerOptions& options, int* resolved_port) {
  int fd = -1;
  if (!options.unix_socket_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) ThrowErrno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw util::FatalError("unix socket path too long: " +
                             options.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      ThrowErrno("bind(" + options.unix_socket_path + ")");
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ThrowErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw util::FatalError("invalid bind address: " + options.host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      ThrowErrno("bind(" + options.host + ":" + std::to_string(options.port) +
                 ")");
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (resolved_port != nullptr &&
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
            0) {
      *resolved_port = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno("listen");
  }
  SetNonBlocking(fd);
  return fd;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<SchedulingService>(options_.service)) {}

Server::~Server() {
  Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty() && options_.inherited_listen_fd < 0) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

void Server::Start() {
  if (options_.inherited_listen_fd >= 0) {
    // A worker under the supervisor: the socket is already bound and
    // listening; just adopt it. Not ours to unlink on shutdown.
    listen_fd_ = options_.inherited_listen_fd;
    SetNonBlocking(listen_fd_);
    return;
  }
  listen_fd_ = BindListenSocket(options_, &port_);
}

bool Server::StopRequested() const {
  return stop_.load(std::memory_order_relaxed) || util::ShutdownRequested();
}

void Server::Serve() {
  FS_CHECK_MSG(listen_fd_ >= 0, "Serve() before Start()");
  while (!StopRequested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal landed — loop re-checks stop
      ThrowErrno("poll(listen)");
    }
    ReapFinishedConnections();
    if (ready == 0) continue;  // tick: re-check the stop flags
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: with the listener shared across worker processes, a
      // sibling can win the accept race between our poll and accept —
      // the non-blocking listener turns that into a harmless re-poll
      // instead of a block that would stop us noticing Stop().
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      ThrowErrno("accept");
    }
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
  // Stop accepting before draining: close the listener (and unlink the
  // unix path) so that clients retrying during the drain fail fast with a
  // typed connect error instead of hanging in a backlog nobody will ever
  // accept — the chaos soak counts those as unserved-after-drain, not
  // lost.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty() && options_.inherited_listen_fd < 0) {
    // Inherited sockets stay linked: a draining worker must not yank the
    // path out from under its siblings — the supervisor owns it.
    ::unlink(options_.unix_socket_path.c_str());
  }
  // Graceful drain: connections finish the frame they are serving, then
  // the batcher completes everything already queued.
  for (auto& connection : connections_) {
    if (connection.joinable()) connection.join();
  }
  connections_.clear();
  service_->Drain();
}

void Server::HandleConnection(int fd) {
  ServiceMetrics& metrics = service_->Metrics();
  FrameAssembler assembler;
  std::string buffer;
  char chunk[4096];
  bool peer_closed = false;
  auto last_byte = std::chrono::steady_clock::now();

  // Best-effort typed protocol error (connection-level failures carry the
  // "-" id: no request header was successfully attributed).
  const auto send_error = [&](util::ErrorKind kind,
                              const std::string& message) {
    SchedulingResponse response;
    response.status = ResponseStatus::kError;
    response.error_kind = kind;
    response.message = message;
    response.id = "-";
    return WriteAll(fd, FormatResponseLine(response) + "\n");
  };

  while (!peer_closed) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const bool mid_frame = !assembler.Empty() || !buffer.empty();
    if (ready == 0) {
      // Idle tick: only hang up between frames, never mid-frame — a
      // client that already sent half a request gets its answer.
      if (StopRequested() && !mid_frame) break;
      // Slow-loris guard: a peer that started a frame must keep bytes
      // coming; after read_deadline_seconds of mid-frame silence it is
      // told why and evicted.
      if (mid_frame && options_.read_deadline_seconds > 0.0) {
        const double stalled =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          last_byte)
                .count();
        if (stalled > options_.read_deadline_seconds) {
          metrics.evicted_slow.fetch_add(1, std::memory_order_relaxed);
          send_error(util::ErrorKind::kTimeout,
                     "read deadline: frame stalled after " +
                         std::to_string(assembler.Lines()) +
                         " line(s) with no byte for " +
                         std::to_string(options_.read_deadline_seconds) +
                         " s — connection evicted");
          break;
        }
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      peer_closed = true;
    } else {
      buffer.append(chunk, static_cast<std::size_t>(n));
      last_byte = std::chrono::steady_clock::now();
    }

    std::size_t line_end;
    while ((line_end = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, line_end);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer.erase(0, line_end + 1);
      if (assembler.Empty() && line == kStatsVerb) {
        // Metrics query, valid only between frames — inside a frame the
        // same bytes are scenario payload.
        if (!WriteAll(fd, FormatStatsLine(CaptureStats(metrics)) + "\n")) {
          peer_closed = true;
          break;
        }
        continue;
      }
      if (!assembler.Feed(line)) continue;

      SchedulingResponse response;
      try {
        response = service_->Execute(assembler.Parse());
      } catch (const util::HarnessError& e) {
        // Parse failures keep their taxonomy kind on the wire: a check=
        // mismatch is kTransient (corruption — the client should retry),
        // a malformed frame is kFatal (caller bug — it should not).
        if (e.kind() == util::ErrorKind::kTransient) {
          metrics.checksum_failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
        response.status = ResponseStatus::kError;
        response.error_kind = e.kind();
        response.message = e.what();
        response.id = "-";
      } catch (const std::exception& e) {
        metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        response.status = ResponseStatus::kError;
        response.error_kind = util::ErrorKind::kFatal;
        response.message = e.what();
        response.id = "-";
      }
      assembler.Reset();
      if (options_.chaos_abort_before_reply > 0 &&
          replies_written_.fetch_add(1, std::memory_order_relaxed) + 1 ==
              options_.chaos_abort_before_reply) {
        // Crash drill: die after executing but before acking — the
        // client must recover via an idempotent re-send to a sibling.
        // _Exit, not exit: a crash-only worker takes no cleanup path.
        std::_Exit(137);
      }
      if (!WriteAll(fd, FormatResponseLine(response) + "\n")) {
        peer_closed = true;
        break;
      }
    }

    // Max-frame guard (checked once per recv, so the effective cap has
    // one chunk of slack): reject instead of buffering unboundedly.
    const std::size_t frame_bytes = assembler.ByteSize() + buffer.size();
    if (!peer_closed && frame_bytes > options_.max_frame_bytes) {
      metrics.oversized_frames.fetch_add(1, std::memory_order_relaxed);
      send_error(util::ErrorKind::kFatal,
                 "request frame line " + std::to_string(assembler.Lines() + 1) +
                     ": frame exceeds max_frame_bytes=" +
                     std::to_string(options_.max_frame_bytes) + " (" +
                     std::to_string(frame_bytes) +
                     " bytes buffered) — rejected, connection closed");
      break;
    }

    if (peer_closed && !assembler.Empty() && !assembler.Done()) {
      // EOF mid-frame: best-effort error naming how far the frame got
      // (the peer may keep its read side open after shutdown(SHUT_WR)).
      metrics.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(util::ErrorKind::kFatal, assembler.Truncated());
    }
  }
  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(finished_mutex_);
    finished_.push_back(std::this_thread::get_id());
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::thread::id> done;
  {
    const std::lock_guard<std::mutex> lock(finished_mutex_);
    done.swap(finished_);
  }
  for (const std::thread::id id : done) {
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();  // the thread already announced completion — no wait
        connections_.erase(it);
        break;
      }
    }
  }
}

void Server::Stop() { stop_.store(true, std::memory_order_relaxed); }

}  // namespace fadesched::service
