#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/signal_guard.hpp"

namespace fadesched::service {

namespace {

constexpr int kPollTickMs = 200;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw util::TransientError(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying short writes; false if the peer went
/// away (EPIPE et al.) — a vanished client is not a server error.
bool WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<SchedulingService>(options_.service)) {}

Server::~Server() {
  Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

void Server::Start() {
  if (!options_.unix_socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) ThrowErrno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      throw util::FatalError("unix socket path too long: " +
                             options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ThrowErrno("bind(" + options_.unix_socket_path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) ThrowErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      throw util::FatalError("invalid bind address: " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ThrowErrno("bind(" + options_.host + ":" +
                 std::to_string(options_.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::listen(listen_fd_, 64) < 0) ThrowErrno("listen");
}

bool Server::StopRequested() const {
  return stop_.load(std::memory_order_relaxed) || util::ShutdownRequested();
}

void Server::Serve() {
  FS_CHECK_MSG(listen_fd_ >= 0, "Serve() before Start()");
  while (!StopRequested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal landed — loop re-checks stop
      ThrowErrno("poll(listen)");
    }
    if (ready == 0) continue;  // tick: re-check the stop flags
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      ThrowErrno("accept");
    }
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
  // Graceful drain: connections finish the frame they are serving, then
  // the batcher completes everything already queued.
  for (auto& connection : connections_) {
    if (connection.joinable()) connection.join();
  }
  connections_.clear();
  service_->Drain();
}

void Server::HandleConnection(int fd) {
  FrameAssembler assembler;
  std::string buffer;
  char chunk[4096];
  bool peer_closed = false;

  while (!peer_closed) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // Idle tick: only hang up between frames, never mid-frame — a
      // client that already sent half a request gets its answer.
      if (StopRequested() && assembler.Empty()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      peer_closed = true;
    } else {
      buffer.append(chunk, static_cast<std::size_t>(n));
    }

    std::size_t line_end;
    while ((line_end = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, line_end);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer.erase(0, line_end + 1);
      if (!assembler.Feed(line)) continue;

      SchedulingResponse response;
      try {
        response = service_->Execute(assembler.Parse());
      } catch (const std::exception& e) {
        response.status = ResponseStatus::kError;
        response.error_kind = util::ErrorKind::kFatal;
        response.message = e.what();
        if (response.id.empty()) response.id = "-";
      }
      assembler.Reset();
      if (!WriteAll(fd, FormatResponseLine(response) + "\n")) {
        peer_closed = true;
        break;
      }
    }

    if (peer_closed && !assembler.Empty() && !assembler.Done()) {
      // EOF mid-frame: best-effort error naming how far the frame got
      // (the peer may keep its read side open after shutdown(SHUT_WR)).
      SchedulingResponse response;
      response.status = ResponseStatus::kError;
      response.error_kind = util::ErrorKind::kFatal;
      response.message = assembler.Truncated();
      response.id = "-";
      WriteAll(fd, FormatResponseLine(response) + "\n");
    }
  }
  ::close(fd);
}

void Server::Stop() { stop_.store(true, std::memory_order_relaxed); }

}  // namespace fadesched::service
