// The scheduling service: fingerprint → response cache → scenario cache →
// registry-resolved scheduler, fronted by the RequestBatcher.
//
// Determinism contract: identical request content produces a byte-
// identical schedule whether it is computed fresh, recomputed after an
// eviction, or served from the response cache — the cache memoizes work,
// never changes answers. This holds because (a) the fingerprint is over
// canonical scenario bytes, (b) every scheduler is deterministic for a
// fixed instance, and (c) a cached engine is bit-identical to a rebuilt
// one (see channel::ObtainEngine).
//
// HandleNow() never throws: every failure is classified through the
// util::error taxonomy into a kError response, so a malformed or oversized
// instance poisons one response, not the worker thread.
#pragma once

#include <future>
#include <memory>

#include "service/batcher.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"
#include "service/scenario_cache.hpp"

namespace fadesched::service {

struct ServiceOptions {
  CacheOptions cache;
  BatcherOptions batcher;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceOptions options = {});

  /// The full request pipeline, synchronously on the calling thread
  /// (workers call this; tests and the bench may too). Never throws.
  SchedulingResponse HandleNow(const SchedulingRequest& request);

  /// Admission-controlled path through the batcher (see batcher.hpp for
  /// the shed/timeout contract). The future is always fulfilled. Submit
  /// fingerprints the request; a response-cache hit is served inline on
  /// the calling thread (the future comes back already fulfilled), so
  /// warm latency never rides the worker queue. Misses are classified
  /// warm/cold (a pure cache peek) for the two-tier shedder; under
  /// overload, cold requests — the ones that would trigger a full engine
  /// build — are shed first.
  std::future<SchedulingResponse> Submit(SchedulingRequest request);

  /// Submit + wait.
  SchedulingResponse Execute(SchedulingRequest request);

  /// Graceful shutdown: stop admission, finish queued + in-flight work.
  void Drain();

  [[nodiscard]] ServiceMetrics& Metrics() { return metrics_; }
  [[nodiscard]] ScenarioCache& Cache() { return *cache_; }
  [[nodiscard]] OverloadController& Overload() { return batcher_->Overload(); }

 private:
  ServiceMetrics metrics_;
  std::unique_ptr<ScenarioCache> cache_;
  std::unique_ptr<RequestBatcher> batcher_;
};

}  // namespace fadesched::service
