// Seeded load generator for the serve endpoint.
//
// A fixed pool of fuzzer-generated scenarios (pure in the seed) is
// replayed across C concurrent connections, either closed-loop (each
// connection fires its next request the moment the previous response
// lands) or open-loop (requests are released on a fixed global schedule
// of `rate_per_sec`, which keeps offered load constant even when the
// server slows down — the correct way to demonstrate shedding).
//
// `hot_fraction` carves the request stream into a warm tier (pool
// replays, cache-hot) and a cold tier (unique scenarios, guaranteed
// cache misses) so the two-tier shed policy is observable from the
// client side: the report carries per-class ok/shed counts and p50/95/99.
//
// Because requests use the pool index as their wire id, every OK response
// for pool entry k must be byte-identical across the whole run and across
// connections — the loadgen records the first OK line per entry and counts
// any later divergence in `determinism_mismatches`. CI asserts zero.
#pragma once

#include <cstdint>
#include <string>

namespace fadesched::service {

struct LoadgenOptions {
  /// Endpoint: non-empty unix_socket_path wins, else host:port.
  std::string unix_socket_path;
  std::string host = "127.0.0.1";
  int port = 0;

  std::size_t num_requests = 1000;
  std::size_t connections = 4;

  /// Distinct scenarios replayed round-robin; small pools stress the
  /// cache's hit path, large pools its eviction path.
  std::size_t pool_size = 16;
  /// Links per generated scenario.
  std::size_t links = 40;
  std::uint64_t seed = 1;

  std::string scheduler = "rle";
  /// Per-request queue deadline forwarded on the wire; 0 = server default.
  double deadline_seconds = 0.0;

  /// 0 = closed loop; > 0 = open loop at this many requests/second.
  double rate_per_sec = 0.0;

  /// Fraction of requests drawn from the warm pool (replayed round-robin,
  /// cache-hot after the first pass). The rest are *unique* scenarios —
  /// each sent exactly once, so every one misses the cache. The split is
  /// deterministic in the request index (Bresenham spread), independent
  /// of which connection draws the request.
  double hot_fraction = 1.0;

  /// When a SHED response carries a retry_after_ms hint, sleep the hint
  /// and re-send the same frame (up to max_shed_retries times) instead of
  /// abandoning the request — the polite-client behaviour the overload
  /// controller's hint is designed for.
  bool retry_on_shed = false;
  std::size_t max_shed_retries = 3;

  /// Multiplexed mode: one thread drives all `connections` sockets
  /// through epoll instead of one OS thread per connection. This is the
  /// harness that scales to hundreds of connections against the sharded
  /// tier; open- and closed-loop pacing and the shed-retry hint all work
  /// identically. Semantual difference worth knowing: a released request
  /// that finds every connection busy queues client-side — which is
  /// exactly the queueing the corrected (intended-start) latency makes
  /// visible.
  bool multiplex = false;

  /// > 0: every `drift_period` requests, one warm-pool entry (round
  /// robin) is replaced by a fresh scenario — a drifting working set, so
  /// affinity routing has to keep absorbing new fingerprints instead of
  /// serving a frozen pool. 0 = static pool.
  std::size_t drift_period = 0;
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t errors = 0;
  /// Re-sends after a SHED carrying a retry_after_ms hint (each request
  /// still counts exactly once in ok/shed/timed_out/errors — this is the
  /// extra wire traffic the backpressure cost).
  std::size_t retried = 0;
  std::size_t transport_failures = 0;
  /// OK responses whose bytes differ from the first OK response for the
  /// same pool entry — must be zero for a deterministic server.
  std::size_t determinism_mismatches = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;

  /// Client-observed send→response latency of OK responses, split by
  /// request class. Warm p99 is the overload controller's protected
  /// quantity: under 2× offered load it must stay near uncontended while
  /// the cold tier absorbs the shedding.
  std::size_t warm_ok = 0;
  std::size_t cold_ok = 0;
  std::size_t cold_shed = 0;
  std::size_t warm_shed = 0;
  double warm_p50_ms = 0.0, warm_p95_ms = 0.0, warm_p99_ms = 0.0;
  double cold_p50_ms = 0.0, cold_p95_ms = 0.0, cold_p99_ms = 0.0;

  /// Coordinated-omission-corrected latency: measured from the request's
  /// *intended* release instant on the open-loop schedule (start + i·Δ)
  /// rather than from the actual send. When the server (or a saturated
  /// client connection) slows down, sends lag the schedule and
  /// send-to-reply understates what an arrival actually waited — the
  /// corrected numbers include that client-side lag. In closed-loop runs
  /// intended == actual send, so the two coincide by construction.
  double warm_corrected_p50_ms = 0.0, warm_corrected_p95_ms = 0.0,
         warm_corrected_p99_ms = 0.0;
  double cold_corrected_p50_ms = 0.0, cold_corrected_p95_ms = 0.0,
         cold_corrected_p99_ms = 0.0;

  /// True when every request was answered, none diverged, and no
  /// transport failure occurred (shed/timeout are legitimate outcomes —
  /// they indicate load, not breakage).
  [[nodiscard]] bool Clean() const {
    return determinism_mismatches == 0 && transport_failures == 0 &&
           errors == 0;
  }

  [[nodiscard]] std::string ToJson() const;
};

/// Runs the load; throws util::HarnessError if no connection can be
/// established at all.
LoadgenReport RunLoadgen(const LoadgenOptions& options);

}  // namespace fadesched::service
