// Seeded load generator for the serve endpoint.
//
// A fixed pool of fuzzer-generated scenarios (pure in the seed) is
// replayed across C concurrent connections, either closed-loop (each
// connection fires its next request the moment the previous response
// lands) or open-loop (requests are released on a fixed global schedule
// of `rate_per_sec`, which keeps offered load constant even when the
// server slows down — the correct way to demonstrate shedding).
//
// Because requests use the pool index as their wire id, every OK response
// for pool entry k must be byte-identical across the whole run and across
// connections — the loadgen records the first OK line per entry and counts
// any later divergence in `determinism_mismatches`. CI asserts zero.
#pragma once

#include <cstdint>
#include <string>

namespace fadesched::service {

struct LoadgenOptions {
  /// Endpoint: non-empty unix_socket_path wins, else host:port.
  std::string unix_socket_path;
  std::string host = "127.0.0.1";
  int port = 0;

  std::size_t num_requests = 1000;
  std::size_t connections = 4;

  /// Distinct scenarios replayed round-robin; small pools stress the
  /// cache's hit path, large pools its eviction path.
  std::size_t pool_size = 16;
  /// Links per generated scenario.
  std::size_t links = 40;
  std::uint64_t seed = 1;

  std::string scheduler = "rle";
  /// Per-request queue deadline forwarded on the wire; 0 = server default.
  double deadline_seconds = 0.0;

  /// 0 = closed loop; > 0 = open loop at this many requests/second.
  double rate_per_sec = 0.0;
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  std::size_t errors = 0;
  std::size_t transport_failures = 0;
  /// OK responses whose bytes differ from the first OK response for the
  /// same pool entry — must be zero for a deterministic server.
  std::size_t determinism_mismatches = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;

  /// True when every request was answered, none diverged, and no
  /// transport failure occurred (shed/timeout are legitimate outcomes —
  /// they indicate load, not breakage).
  [[nodiscard]] bool Clean() const {
    return determinism_mismatches == 0 && transport_failures == 0 &&
           errors == 0;
  }

  [[nodiscard]] std::string ToJson() const;
};

/// Runs the load; throws util::HarnessError if no connection can be
/// established at all.
LoadgenReport RunLoadgen(const LoadgenOptions& options);

}  // namespace fadesched::service
