// Request/response types of the scheduling service, plus the canonical
// content fingerprint the cache is keyed by.
//
// A request is one `.scenario` instance (links + channel parameters, the
// same format the fuzzer's reproducers use) plus the name of a registered
// scheduler. Its fingerprint is a hash over the *canonical* serialization
// of that content — %.17g doubles, fixed key order, provenance stripped —
// so two requests that mean the same instance collide onto one cache
// entry no matter how their wire bytes were formatted. Responses are
// deterministic: identical request content yields a byte-identical
// schedule whether it was computed or served from cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/link_set.hpp"
#include "testing/corpus.hpp"
#include "util/error.hpp"

namespace fadesched::service {

struct SchedulingRequest {
  /// The instance: links + channel parameters (+ free-form description,
  /// which is provenance and explicitly NOT part of the fingerprint).
  fadesched::testing::ScenarioCase scenario;
  /// Registered scheduler name resolved at execution time.
  std::string scheduler = "rle";
  /// Admission deadline in seconds from enqueue; a request that waits
  /// longer is answered with a timeout instead of being executed. 0 = the
  /// batcher's default.
  double deadline_seconds = 0.0;
  /// Wire correlation tag (echoed in the response); not fingerprinted.
  std::string id;
};

/// What happened to a request. kOk carries a schedule; the other three
/// carry an error kind + single-line message. kShed and kTimeout are the
/// admission-control outcomes (queue full / deadline passed); kError is
/// an execution failure classified by the util::error taxonomy.
enum class ResponseStatus { kOk, kShed, kTimeout, kError };

/// Stable lowercase name ("ok", "shed", "timeout", "error").
const char* ResponseStatusName(ResponseStatus status);

struct SchedulingResponse {
  ResponseStatus status = ResponseStatus::kOk;
  /// Error taxonomy kind; meaningful iff status != kOk. Shed maps to
  /// transient (retry later), timeout to timeout, drain to interrupted.
  util::ErrorKind error_kind = util::ErrorKind::kFatal;
  /// Single-line human-readable failure description (empty on kOk).
  std::string message;
  /// Backoff hint on shed responses, derived from the live queue-delay
  /// EWMA (see overload.hpp). 0 = no hint; the wire format omits the
  /// token then, so pre-overload response lines stay byte-identical.
  double retry_after_ms = 0.0;

  net::Schedule schedule;       ///< chosen link ids, ascending
  double claimed_rate = 0.0;    ///< Σ λ over the schedule

  /// Served from the response cache (diagnostics only — deliberately not
  /// part of the wire format, so hit and miss responses stay
  /// byte-identical).
  bool cache_hit = false;
  std::string id;               ///< echoed request correlation tag

  [[nodiscard]] bool Ok() const { return status == ResponseStatus::kOk; }

  /// Process exit code a CLI caller should propagate for this response:
  /// 0 ok, 3 timeout, 1 shed/error (shed is transient — retry later).
  [[nodiscard]] int ExitCode() const;
};

/// 64-bit FNV-1a over `bytes`, chainable via `seed`.
std::uint64_t Fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 14695981039346656037ull);

/// Canonical content fingerprint of a request. `canonical_scenario` holds
/// the canonical bytes themselves so the cache can reject the (vanishing
/// but nonzero) chance of a 64-bit hash collision by exact comparison
/// instead of serving someone else's schedule.
///
/// The canonical form is a versioned binary serialization — every channel
/// parameter and per-link double memcpy'd raw, fixed field order, the
/// description stripped. Value-identical scenarios produce bit-identical
/// blobs (`.scenario` text stores %.17g, which round-trips doubles
/// exactly, so text-level and binary-level identity coincide), and
/// producing the blob is ~50× cheaper than re-serializing text — it IS
/// the response-cache hot path.
struct Fingerprint {
  std::uint64_t scenario_hash = 0;  ///< over the canonical blob
  std::uint64_t request_hash = 0;   ///< scenario_hash chained with scheduler
  std::string canonical_scenario;   ///< canonical binary blob (see above)
  std::string scheduler;            ///< scheduler name (response-cache key)
};

/// Canonicalizes and hashes. Deterministic: value-identical scenarios
/// produce identical canonical bytes and hashes; the description and the
/// request id are deliberately excluded.
Fingerprint FingerprintRequest(const SchedulingRequest& request);

}  // namespace fadesched::service
