#include "service/batcher.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

SchedulingResponse MakeFailure(ResponseStatus status, util::ErrorKind kind,
                               std::string message, const std::string& id) {
  SchedulingResponse response;
  response.status = status;
  response.error_kind = kind;
  response.message = std::move(message);
  response.id = id;
  return response;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RequestBatcher::RequestBatcher(Handler handler, BatcherOptions options,
                               ServiceMetrics* metrics)
    : handler_(std::move(handler)),
      options_(options),
      metrics_(metrics),
      overload_(options.overload, metrics) {
  FS_CHECK_MSG(handler_ != nullptr, "RequestBatcher needs a handler");
  FS_CHECK_MSG(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  if (options_.num_workers == 0) options_.num_workers = 1;
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    const bool warm_only = options_.reserve_warm_worker &&
                           options_.num_workers >= 2 && i == 0;
    workers_.emplace_back([this, warm_only] { WorkerLoop(warm_only); });
  }
}

RequestBatcher::~RequestBatcher() { Drain(); }

std::future<SchedulingResponse> RequestBatcher::Submit(SchedulingRequest request,
                                                       RequestClass cls) {
  std::promise<SchedulingResponse> promise;
  std::future<SchedulingResponse> future = promise.get_future();
  if (metrics_ != nullptr) {
    metrics_->submitted.fetch_add(1, std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      if (metrics_ != nullptr) {
        metrics_->rejected_draining.fetch_add(1, std::memory_order_relaxed);
      }
      promise.set_value(MakeFailure(
          ResponseStatus::kShed, util::ErrorKind::kInterrupted,
          "service draining — not accepting new requests", request.id));
      return future;
    }
    const AdmitDecision decision = overload_.Admit(
        cls, DepthLocked(), std::chrono::steady_clock::now());
    if (!decision.admit) {
      if (metrics_ != nullptr) {
        metrics_->shed_overload.fetch_add(1, std::memory_order_relaxed);
        if (cls == RequestClass::kCold) {
          metrics_->shed_cold.fetch_add(1, std::memory_order_relaxed);
        }
      }
      SchedulingResponse shed = MakeFailure(
          ResponseStatus::kShed, util::ErrorKind::kTransient,
          std::string("overloaded — shed ") +
              (cls == RequestClass::kCold ? "cold" : "warm") +
              " request, retry later",
          request.id);
      shed.retry_after_ms = decision.retry_after_ms;
      promise.set_value(std::move(shed));
      return future;
    }
    // Hard bounds: the shared capacity, plus a bulkhead on the cold lane.
    // Warm-priority dequeue starves the cold lane under warm pressure, so
    // without its own cap a pile of slow cold builds would fill the
    // shared bound and hard-shed *warm* admissions — the inversion of
    // what the two-tier shedder promises.
    const std::size_t cold_capacity =
        std::max<std::size_t>(1, options_.queue_capacity / 2);
    const bool cold_lane_full = cls == RequestClass::kCold &&
                                cold_queue_.size() >= cold_capacity;
    if (cold_lane_full || DepthLocked() >= options_.queue_capacity) {
      if (metrics_ != nullptr) {
        metrics_->shed.fetch_add(1, std::memory_order_relaxed);
        if (cls == RequestClass::kCold) {
          metrics_->shed_cold.fetch_add(1, std::memory_order_relaxed);
        }
      }
      SchedulingResponse shed = MakeFailure(
          ResponseStatus::kShed, util::ErrorKind::kTransient,
          cold_lane_full
              ? "cold lane full (" + std::to_string(cold_capacity) +
                    " pending builds) — shed, retry later"
              : "queue full (" + std::to_string(options_.queue_capacity) +
                    " pending) — shed, retry later",
          request.id);
      shed.retry_after_ms = overload_.RetryAfterMs();
      promise.set_value(std::move(shed));
      return future;
    }
    if (metrics_ != nullptr) {
      metrics_->admitted.fetch_add(1, std::memory_order_relaxed);
    }
    Item item;
    const double deadline_seconds = request.deadline_seconds > 0.0
                                        ? request.deadline_seconds
                                        : options_.default_deadline_seconds;
    item.deadline = util::Deadline::After(deadline_seconds);
    item.enqueued = std::chrono::steady_clock::now();
    item.request = std::move(request);
    item.promise = std::move(promise);
    item.cls = cls;
    (cls == RequestClass::kCold ? cold_queue_ : warm_queue_)
        .push_back(std::move(item));
    SetDepthGauge(DepthLocked());
  }
  // notify_all, not notify_one: workers are heterogeneous (a reserved
  // warm-only worker may be the one woken for a cold item, which it will
  // ignore), so a single notify can be swallowed by the wrong waiter.
  cv_.notify_all();
  return future;
}

SchedulingResponse RequestBatcher::Execute(SchedulingRequest request,
                                           RequestClass cls) {
  return Submit(std::move(request), cls).get();
}

void RequestBatcher::Reply(
    Item& item, SchedulingResponse response,
    std::chrono::steady_clock::time_point enqueued) const {
  if (metrics_ != nullptr) {
    const double seconds = SecondsSince(enqueued);
    metrics_->total_latency.Record(seconds);
    (item.cls == RequestClass::kCold ? metrics_->cold_total_latency
                                     : metrics_->warm_total_latency)
        .Record(seconds);
  }
  item.promise.set_value(std::move(response));
}

void RequestBatcher::WorkerLoop(bool warm_only) {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this, warm_only] {
        return draining_ ||
               (warm_only ? !warm_queue_.empty() : DepthLocked() > 0);
      });
      // Predicate held, so an empty view of the queue implies draining.
      // A reserved worker exits with colds still queued — the general
      // workers own them (reservation requires ≥ 2 workers).
      if (warm_only ? warm_queue_.empty() : DepthLocked() == 0) return;
      std::deque<Item>& lane =
          warm_queue_.empty() ? cold_queue_ : warm_queue_;
      item = std::move(lane.front());
      lane.pop_front();
      SetDepthGauge(DepthLocked());
    }

    const double queue_delay = SecondsSince(item.enqueued);
    overload_.ObserveQueueDelay(queue_delay, std::chrono::steady_clock::now());
    if (metrics_ != nullptr) {
      metrics_->queue_latency.Record(queue_delay);
    }

    if (item.deadline.Expired()) {
      if (metrics_ != nullptr) {
        metrics_->timed_out.fetch_add(1, std::memory_order_relaxed);
      }
      Reply(item,
            MakeFailure(ResponseStatus::kTimeout, util::ErrorKind::kTimeout,
                        "deadline expired while queued", item.request.id),
            item.enqueued);
      continue;
    }

    const auto service_start = std::chrono::steady_clock::now();
    SchedulingResponse response;
    try {
      response = handler_(item.request);
      response.id = item.request.id;
    } catch (...) {
      const util::ErrorKind kind =
          util::ClassifyException(std::current_exception());
      std::string what = "handler failed";
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      response = MakeFailure(ResponseStatus::kError, kind, std::move(what),
                             item.request.id);
    }
    if (metrics_ != nullptr) {
      metrics_->service_latency.Record(SecondsSince(service_start));
      if (response.Ok()) {
        metrics_->completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        metrics_->failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    Reply(item, std::move(response), item.enqueued);
  }
}

void RequestBatcher::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool RequestBatcher::Draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t RequestBatcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return DepthLocked();
}

void RequestBatcher::SetDepthGauge(std::size_t depth) const {
  if (metrics_ != nullptr) {
    metrics_->queue_depth.store(depth, std::memory_order_relaxed);
  }
}

}  // namespace fadesched::service
