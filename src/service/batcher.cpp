#include "service/batcher.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

SchedulingResponse MakeFailure(ResponseStatus status, util::ErrorKind kind,
                               std::string message, const std::string& id) {
  SchedulingResponse response;
  response.status = status;
  response.error_kind = kind;
  response.message = std::move(message);
  response.id = id;
  return response;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RequestBatcher::RequestBatcher(Handler handler, BatcherOptions options,
                               ServiceMetrics* metrics)
    : handler_(std::move(handler)), options_(options), metrics_(metrics) {
  FS_CHECK_MSG(handler_ != nullptr, "RequestBatcher needs a handler");
  FS_CHECK_MSG(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  if (options_.num_workers == 0) options_.num_workers = 1;
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RequestBatcher::~RequestBatcher() { Drain(); }

std::future<SchedulingResponse> RequestBatcher::Submit(
    SchedulingRequest request) {
  std::promise<SchedulingResponse> promise;
  std::future<SchedulingResponse> future = promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      if (metrics_ != nullptr) {
        metrics_->rejected_draining.fetch_add(1, std::memory_order_relaxed);
      }
      promise.set_value(MakeFailure(
          ResponseStatus::kShed, util::ErrorKind::kInterrupted,
          "service draining — not accepting new requests", request.id));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      if (metrics_ != nullptr) {
        metrics_->shed.fetch_add(1, std::memory_order_relaxed);
      }
      promise.set_value(MakeFailure(
          ResponseStatus::kShed, util::ErrorKind::kTransient,
          "queue full (" + std::to_string(options_.queue_capacity) +
              " pending) — shed, retry later",
          request.id));
      return future;
    }
    if (metrics_ != nullptr) {
      metrics_->admitted.fetch_add(1, std::memory_order_relaxed);
    }
    Item item;
    const double deadline_seconds = request.deadline_seconds > 0.0
                                        ? request.deadline_seconds
                                        : options_.default_deadline_seconds;
    item.deadline = util::Deadline::After(deadline_seconds);
    item.enqueued = std::chrono::steady_clock::now();
    item.request = std::move(request);
    item.promise = std::move(promise);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return future;
}

SchedulingResponse RequestBatcher::Execute(SchedulingRequest request) {
  return Submit(std::move(request)).get();
}

void RequestBatcher::Reply(
    Item& item, SchedulingResponse response,
    std::chrono::steady_clock::time_point enqueued) const {
  if (metrics_ != nullptr) {
    metrics_->total_latency.Record(SecondsSince(enqueued));
  }
  item.promise.set_value(std::move(response));
}

void RequestBatcher::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
    }

    if (metrics_ != nullptr) {
      metrics_->queue_latency.Record(SecondsSince(item.enqueued));
    }

    if (item.deadline.Expired()) {
      if (metrics_ != nullptr) {
        metrics_->timed_out.fetch_add(1, std::memory_order_relaxed);
      }
      Reply(item,
            MakeFailure(ResponseStatus::kTimeout, util::ErrorKind::kTimeout,
                        "deadline expired while queued", item.request.id),
            item.enqueued);
      continue;
    }

    const auto service_start = std::chrono::steady_clock::now();
    SchedulingResponse response;
    try {
      response = handler_(item.request);
      response.id = item.request.id;
    } catch (...) {
      const util::ErrorKind kind =
          util::ClassifyException(std::current_exception());
      std::string what = "handler failed";
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      response = MakeFailure(ResponseStatus::kError, kind, std::move(what),
                             item.request.id);
    }
    if (metrics_ != nullptr) {
      metrics_->service_latency.Record(SecondsSince(service_start));
      if (response.Ok()) {
        metrics_->completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        metrics_->failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    Reply(item, std::move(response), item.enqueued);
  }
}

void RequestBatcher::Drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool RequestBatcher::Draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t RequestBatcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace fadesched::service
