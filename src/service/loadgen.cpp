#include "service/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "testing/fuzzer.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

/// Request i is warm iff the Bresenham accumulator crosses an integer —
/// exactly round(n·hot_fraction) warm requests, spread evenly, and the
/// classification depends only on i (not on which connection draws it).
bool IsWarmIndex(std::size_t i, double hot_fraction) {
  return std::floor(static_cast<double>(i + 1) * hot_fraction) >
         std::floor(static_cast<double>(i) * hot_fraction);
}

struct RequestPlan {
  /// Pre-serialized frames: [0, pool_size) warm pool, then one unique
  /// frame per cold request.
  std::vector<std::string> frames;
  /// Per request index: frame to send and its tier.
  struct Slot {
    std::size_t frame = 0;
    bool cold = false;
  };
  std::vector<Slot> slots;
  std::size_t pool_size = 0;
};

RequestPlan BuildPlan(const LoadgenOptions& options) {
  fadesched::testing::FuzzerOptions fuzz;
  fuzz.min_links = options.links;
  fuzz.max_links = options.links;
  // Keep the pool on the paper's parameter defaults and uniform rates —
  // the loadgen measures the service, not scheduler edge cases.
  fuzz.extreme_params = false;
  fuzz.weighted_rates = false;
  fuzz.with_noise = false;
  fadesched::testing::ScenarioFuzzer fuzzer(options.seed, fuzz);

  RequestPlan plan;
  plan.pool_size = options.pool_size;
  plan.slots.resize(options.num_requests);

  auto serialize = [&](std::size_t case_index, std::string id) {
    SchedulingRequest request;
    request.scenario = fuzzer.Case(case_index);
    request.scheduler = options.scheduler;
    request.deadline_seconds = options.deadline_seconds;
    request.id = std::move(id);
    return FormatRequestFrame(request);
  };

  plan.frames.reserve(options.pool_size);
  for (std::size_t i = 0; i < options.pool_size; ++i) {
    plan.frames.push_back(serialize(i, "r" + std::to_string(i)));
  }

  std::size_t warm_ordinal = 0, cold_ordinal = 0;
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    if (IsWarmIndex(i, options.hot_fraction)) {
      plan.slots[i] = {warm_ordinal % options.pool_size, /*cold=*/false};
      ++warm_ordinal;
    } else {
      // Cold = a scenario no other request shares: fuzzer indices past
      // the pool are never replayed, so the server cannot have it cached.
      plan.frames.push_back(serialize(options.pool_size + cold_ordinal,
                                      "c" + std::to_string(cold_ordinal)));
      plan.slots[i] = {plan.frames.size() - 1, /*cold=*/true};
      ++cold_ordinal;
    }
  }
  return plan;
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"sent\": " << sent << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"shed\": " << shed << ",\n";
  out << "  \"timed_out\": " << timed_out << ",\n";
  out << "  \"errors\": " << errors << ",\n";
  out << "  \"retried\": " << retried << ",\n";
  out << "  \"transport_failures\": " << transport_failures << ",\n";
  out << "  \"determinism_mismatches\": " << determinism_mismatches << ",\n";
  out.precision(6);
  out << std::fixed;
  out << "  \"warm\": {\"ok\": " << warm_ok << ", \"shed\": " << warm_shed
      << ", \"p50_ms\": " << warm_p50_ms << ", \"p95_ms\": " << warm_p95_ms
      << ", \"p99_ms\": " << warm_p99_ms << "},\n";
  out << "  \"cold\": {\"ok\": " << cold_ok << ", \"shed\": " << cold_shed
      << ", \"p50_ms\": " << cold_p50_ms << ", \"p95_ms\": " << cold_p95_ms
      << ", \"p99_ms\": " << cold_p99_ms << "},\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"throughput_rps\": " << throughput_rps << "\n";
  out << "}\n";
  return out.str();
}

LoadgenReport RunLoadgen(const LoadgenOptions& options) {
  FS_CHECK_MSG(options.num_requests > 0, "num_requests must be positive");
  FS_CHECK_MSG(options.pool_size > 0, "pool_size must be positive");
  FS_CHECK_MSG(options.hot_fraction >= 0.0 && options.hot_fraction <= 1.0,
               "hot_fraction must be within [0, 1]");
  const std::size_t connections =
      options.connections > 0 ? options.connections : 1;

  const RequestPlan plan = BuildPlan(options);

  // First OK response line seen per warm pool entry; later OKs must
  // match. Cold scenarios are sent exactly once, so there is nothing to
  // cross-check for them.
  std::vector<std::string> expected(plan.pool_size);
  std::mutex expected_mutex;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, shed{0}, timed_out{0}, errors{0},
      retried{0}, transport{0}, mismatches{0};
  std::atomic<std::size_t> warm_ok{0}, cold_ok{0}, warm_shed{0}, cold_shed{0};
  LatencyHistogram warm_latency, cold_latency;

  const auto start = std::chrono::steady_clock::now();
  const bool open_loop = options.rate_per_sec > 0.0;
  const double interarrival =
      open_loop ? 1.0 / options.rate_per_sec : 0.0;

  std::atomic<std::size_t> connect_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      Client client;
      try {
        if (!options.unix_socket_path.empty()) {
          client.ConnectUnix(options.unix_socket_path);
        } else {
          client.ConnectTcp(options.host, options.port);
        }
      } catch (const std::exception&) {
        connect_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= options.num_requests) return;
        if (open_loop) {
          // Global schedule: request i is released at start + i·Δ no
          // matter which connection draws it.
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) * interarrival));
          std::this_thread::sleep_until(due);
        }
        const RequestPlan::Slot slot = plan.slots[i];
        const std::string& frame = plan.frames[slot.frame];

        SchedulingResponse response;
        std::string line;
        bool answered = false;
        const auto first_send = std::chrono::steady_clock::now();
        for (std::size_t attempt = 0;; ++attempt) {
          try {
            client.SendRaw(frame);
            line = client.ReadLine();
          } catch (const std::exception&) {
            transport.fetch_add(1, std::memory_order_relaxed);
            return;  // this connection is dead; others keep draining
          }
          try {
            response = ParseResponseLine(line);
          } catch (const std::exception&) {
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (response.status == ResponseStatus::kShed &&
              options.retry_on_shed && response.retry_after_ms > 0.0 &&
              attempt < options.max_shed_retries) {
            // Honor the server's hint, then re-send the identical frame;
            // the response cache makes the re-send idempotent.
            retried.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                response.retry_after_ms * 1e-3));
            continue;
          }
          answered = true;
          break;
        }
        if (!answered) continue;  // unparsable line already counted

        switch (response.status) {
          case ResponseStatus::kOk: {
            ok.fetch_add(1, std::memory_order_relaxed);
            // Latency is first-send → final OK: a retried request pays
            // its backoff in the client-observed percentile, as it
            // should.
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - first_send)
                    .count();
            if (slot.cold) {
              cold_ok.fetch_add(1, std::memory_order_relaxed);
              cold_latency.Record(seconds);
            } else {
              warm_ok.fetch_add(1, std::memory_order_relaxed);
              warm_latency.Record(seconds);
              std::lock_guard<std::mutex> lock(expected_mutex);
              std::string& first = expected[slot.frame];
              if (first.empty()) {
                first = line;
              } else if (first != line) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
          case ResponseStatus::kShed:
            shed.fetch_add(1, std::memory_order_relaxed);
            (slot.cold ? cold_shed : warm_shed)
                .fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kTimeout:
            timed_out.fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kError:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if (connect_failures.load() == connections) {
    throw util::TransientError("loadgen could not connect to the endpoint");
  }

  LoadgenReport report;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.ok = ok.load();
  report.shed = shed.load();
  report.timed_out = timed_out.load();
  report.errors = errors.load();
  report.retried = retried.load();
  report.transport_failures = transport.load();
  report.determinism_mismatches = mismatches.load();
  report.sent = report.ok + report.shed + report.timed_out + report.errors;
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0.0;
  report.warm_ok = warm_ok.load();
  report.cold_ok = cold_ok.load();
  report.warm_shed = warm_shed.load();
  report.cold_shed = cold_shed.load();
  report.warm_p50_ms = warm_latency.Percentile(0.50) * 1e3;
  report.warm_p95_ms = warm_latency.Percentile(0.95) * 1e3;
  report.warm_p99_ms = warm_latency.Percentile(0.99) * 1e3;
  report.cold_p50_ms = cold_latency.Percentile(0.50) * 1e3;
  report.cold_p95_ms = cold_latency.Percentile(0.95) * 1e3;
  report.cold_p99_ms = cold_latency.Percentile(0.99) * 1e3;
  return report;
}

}  // namespace fadesched::service
