#include "service/loadgen.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "testing/fuzzer.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

/// Request i is warm iff the Bresenham accumulator crosses an integer —
/// exactly round(n·hot_fraction) warm requests, spread evenly, and the
/// classification depends only on i (not on which connection draws it).
bool IsWarmIndex(std::size_t i, double hot_fraction) {
  return std::floor(static_cast<double>(i + 1) * hot_fraction) >
         std::floor(static_cast<double>(i) * hot_fraction);
}

struct RequestPlan {
  /// Pre-serialized frames: [0, pool_size) warm pool, then one unique
  /// frame per cold request.
  std::vector<std::string> frames;
  /// Per request index: frame to send and its tier.
  struct Slot {
    std::size_t frame = 0;
    bool cold = false;
  };
  std::vector<Slot> slots;
  std::size_t pool_size = 0;
};

RequestPlan BuildPlan(const LoadgenOptions& options) {
  fadesched::testing::FuzzerOptions fuzz;
  fuzz.min_links = options.links;
  fuzz.max_links = options.links;
  // Keep the pool on the paper's parameter defaults and uniform rates —
  // the loadgen measures the service, not scheduler edge cases.
  fuzz.extreme_params = false;
  fuzz.weighted_rates = false;
  fuzz.with_noise = false;
  fadesched::testing::ScenarioFuzzer fuzzer(options.seed, fuzz);

  RequestPlan plan;
  plan.pool_size = options.pool_size;
  plan.slots.resize(options.num_requests);

  auto serialize = [&](std::size_t case_index, std::string id) {
    SchedulingRequest request;
    request.scenario = fuzzer.Case(case_index);
    request.scheduler = options.scheduler;
    request.deadline_seconds = options.deadline_seconds;
    request.id = std::move(id);
    return FormatRequestFrame(request);
  };

  plan.frames.reserve(options.pool_size);
  for (std::size_t i = 0; i < options.pool_size; ++i) {
    plan.frames.push_back(serialize(i, "r" + std::to_string(i)));
  }

  // Drifting working set: the warm pool is a window that slides one
  // entry every `drift_period` requests. Drift scenarios draw from a
  // fuzzer index range disjoint from both the pool and the cold stream
  // so no scenario is accidentally shared across tiers.
  constexpr std::size_t kDriftCaseBase = 1u << 20;
  std::vector<std::size_t> pool_frames(options.pool_size);
  for (std::size_t k = 0; k < options.pool_size; ++k) pool_frames[k] = k;
  std::size_t drift_cursor = 0, drift_ordinal = 0;

  std::size_t warm_ordinal = 0, cold_ordinal = 0;
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    if (options.drift_period > 0 && i > 0 && i % options.drift_period == 0) {
      plan.frames.push_back(serialize(kDriftCaseBase + drift_ordinal,
                                      "d" + std::to_string(drift_ordinal)));
      pool_frames[drift_cursor] = plan.frames.size() - 1;
      drift_cursor = (drift_cursor + 1) % options.pool_size;
      ++drift_ordinal;
    }
    if (IsWarmIndex(i, options.hot_fraction)) {
      plan.slots[i] = {pool_frames[warm_ordinal % options.pool_size],
                       /*cold=*/false};
      ++warm_ordinal;
    } else {
      // Cold = a scenario no other request shares: fuzzer indices past
      // the pool are never replayed, so the server cannot have it cached.
      plan.frames.push_back(serialize(options.pool_size + cold_ordinal,
                                      "c" + std::to_string(cold_ordinal)));
      plan.slots[i] = {plan.frames.size() - 1, /*cold=*/true};
      ++cold_ordinal;
    }
  }
  return plan;
}

/// Multiplexed harness: one thread, `connections` sockets, one epoll.
///
/// Open-loop releases follow the same global start + i·Δ schedule as the
/// threaded path, but a released request that finds every connection busy
/// waits in a client-side ready queue instead of in sleep_until — its
/// corrected latency (reply − intended release) keeps charging while it
/// queues, which is the coordinated-omission story the report fields
/// exist to tell. Closed loop assigns the next request the instant a
/// connection goes idle (intended == send, corrected == raw).
///
/// Accounting mirrors the threaded path exactly: one outcome per request,
/// transport failure counted once per dead connection (its in-flight
/// request is abandoned, as when a loadgen thread dies), shed-retry
/// re-sends the identical frame after the hinted backoff without
/// resetting first_send.
LoadgenReport RunLoadgenMux(const LoadgenOptions& options,
                            const RequestPlan& plan) {
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::size_t index = 0;
    Clock::time_point intended{};
    Clock::time_point first_send{};
    std::size_t attempts = 0;
    bool sent_once = false;
  };
  struct MuxConn {
    std::unique_ptr<Client> client;
    int fd = -1;
    std::string in;    ///< bytes read, not yet a full line
    std::string out;   ///< bytes not yet accepted by the kernel
    bool want_write = false;
    bool busy = false;
    Pending current;
    Clock::time_point io_deadline = Clock::time_point::max();
  };

  const std::size_t connections =
      options.connections > 0 ? options.connections : 1;
  const bool open_loop = options.rate_per_sec > 0.0;
  const double interarrival = open_loop ? 1.0 / options.rate_per_sec : 0.0;

  std::size_t ok = 0, shed = 0, timed_out = 0, errors = 0, retried = 0,
              transport = 0, mismatches = 0;
  std::size_t warm_ok = 0, cold_ok = 0, warm_shed = 0, cold_shed = 0;
  LatencyHistogram warm_latency, cold_latency;
  LatencyHistogram warm_corrected, cold_corrected;
  std::vector<std::string> expected(plan.frames.size());

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    throw util::TransientError("loadgen epoll_create1 failed");
  }

  std::vector<MuxConn> conns;
  conns.reserve(connections);
  std::size_t live = 0;
  for (std::size_t c = 0; c < connections; ++c) {
    MuxConn conn;
    conn.client = std::make_unique<Client>();
    try {
      if (!options.unix_socket_path.empty()) {
        conn.client->ConnectUnix(options.unix_socket_path);
      } else {
        conn.client->ConnectTcp(options.host, options.port);
      }
    } catch (const std::exception&) {
      continue;  // counted below via live == 0 / partial fleet
    }
    conn.fd = conn.client->NativeHandle();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conns.size();
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conn.fd, &ev) < 0) {
      continue;
    }
    conns.push_back(std::move(conn));
    ++live;
  }
  if (live == 0) {
    ::close(epoll_fd);
    throw util::TransientError("loadgen could not connect to the endpoint");
  }

  const auto start = Clock::now();
  const auto due_at = [&](std::size_t i) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(i) * interarrival));
  };

  std::deque<Pending> ready;
  std::multimap<Clock::time_point, Pending> retries;
  std::size_t next_release = 0;
  std::size_t settled = 0;  ///< accounted (ok/shed/timeout/error) + abandoned

  const auto set_interest = [&](std::size_t idx) {
    MuxConn& conn = conns[idx];
    const bool want = !conn.out.empty();
    if (want == conn.want_write) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = idx;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  };

  // A dead connection abandons its in-flight request, exactly like a
  // loadgen thread dying mid-call: one transport failure, the request
  // settles without an outcome, siblings keep draining the plan.
  const auto kill_conn = [&](std::size_t idx) {
    MuxConn& conn = conns[idx];
    if (conn.fd < 0) return;
    ++transport;
    if (conn.busy) {
      conn.busy = false;
      ++settled;
    }
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    conn.client->Close();
    conn.fd = -1;
    --live;
  };

  /// Returns false when the connection died mid-flush.
  const auto flush_out = [&](std::size_t idx) {
    MuxConn& conn = conns[idx];
    std::size_t written = 0;
    while (written < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + written,
                               conn.out.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn.out.clear();
        kill_conn(idx);
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    conn.out.erase(0, written);
    set_interest(idx);
    return true;
  };

  const auto assign = [&](std::size_t idx, Pending pending) {
    MuxConn& conn = conns[idx];
    const auto now = Clock::now();
    if (!pending.sent_once) {
      pending.first_send = now;
      pending.sent_once = true;
      if (!open_loop) pending.intended = now;
    }
    conn.current = pending;
    conn.busy = true;
    const double budget = conn.client->Options().io_timeout_seconds;
    conn.io_deadline =
        budget > 0.0 ? now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(budget))
                     : Clock::time_point::max();
    conn.out += plan.frames[plan.slots[pending.index].frame];
    flush_out(idx);
  };

  const auto settle_line = [&](std::size_t idx, const std::string& line) {
    MuxConn& conn = conns[idx];
    if (!conn.busy) return;  // stray line; the server never volunteers one
    const Pending pending = conn.current;
    conn.busy = false;
    SchedulingResponse response;
    try {
      response = ParseResponseLine(line);
    } catch (const std::exception&) {
      ++errors;
      ++settled;
      return;
    }
    if (response.status == ResponseStatus::kShed && options.retry_on_shed &&
        response.retry_after_ms > 0.0 &&
        pending.attempts < options.max_shed_retries) {
      ++retried;
      Pending again = pending;
      ++again.attempts;
      retries.emplace(
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 response.retry_after_ms * 1e-3)),
          again);
      return;  // not settled yet — the backoff clock is running
    }
    const RequestPlan::Slot slot = plan.slots[pending.index];
    switch (response.status) {
      case ResponseStatus::kOk: {
        ++ok;
        const auto reply_at = Clock::now();
        const double seconds =
            std::chrono::duration<double>(reply_at - pending.first_send)
                .count();
        const double corrected =
            std::chrono::duration<double>(reply_at - pending.intended).count();
        if (slot.cold) {
          ++cold_ok;
          cold_latency.Record(seconds);
          cold_corrected.Record(corrected);
        } else {
          ++warm_ok;
          warm_latency.Record(seconds);
          warm_corrected.Record(corrected);
          std::string& first = expected[slot.frame];
          if (first.empty()) {
            first = line;
          } else if (first != line) {
            ++mismatches;
          }
        }
        break;
      }
      case ResponseStatus::kShed:
        ++shed;
        (slot.cold ? cold_shed : warm_shed) += 1;
        break;
      case ResponseStatus::kTimeout:
        ++timed_out;
        break;
      case ResponseStatus::kError:
        ++errors;
        break;
    }
    ++settled;
  };

  const auto drain_readable = [&](std::size_t idx) {
    MuxConn& conn = conns[idx];
    char chunk[16384];
    for (;;) {
      if (conn.fd < 0) return;
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        kill_conn(idx);
        return;
      }
      if (n == 0) {
        kill_conn(idx);
        return;
      }
      conn.in.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
    }
    std::size_t line_end;
    while ((line_end = conn.in.find('\n')) != std::string::npos) {
      std::string line = conn.in.substr(0, line_end);
      conn.in.erase(0, line_end + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      settle_line(idx, line);
    }
  };

  std::vector<epoll_event> events(64);
  while (settled < options.num_requests && live > 0) {
    const auto now = Clock::now();

    // Stage 1: move everything due into the ready queue. Retries first —
    // they were released before anything still waiting on the schedule.
    while (!retries.empty() && retries.begin()->first <= now) {
      ready.push_back(retries.begin()->second);
      retries.erase(retries.begin());
    }
    if (open_loop) {
      while (next_release < options.num_requests &&
             due_at(next_release) <= now) {
        Pending pending;
        pending.index = next_release;
        pending.intended = due_at(next_release);
        ready.push_back(pending);
        ++next_release;
      }
    } else {
      std::size_t idle = 0;
      for (const MuxConn& conn : conns) {
        if (conn.fd >= 0 && !conn.busy) ++idle;
      }
      while (next_release < options.num_requests && ready.size() < idle) {
        Pending pending;
        pending.index = next_release;
        ready.push_back(pending);
        ++next_release;
      }
    }

    // Stage 2: hand ready requests to idle connections.
    for (std::size_t idx = 0; idx < conns.size() && !ready.empty(); ++idx) {
      MuxConn& conn = conns[idx];
      if (conn.fd < 0 || conn.busy || !conn.out.empty()) continue;
      Pending pending = std::move(ready.front());
      ready.pop_front();
      assign(idx, pending);
    }

    // Released work that no live connection can ever take settles as
    // abandoned, otherwise the loop would spin forever on a dead fleet.
    if (live == 0) break;

    // Stage 3: wait for readiness, the next scheduled release, or the
    // supervision tick (io deadlines).
    int timeout_ms = 20;
    const auto clamp_to = [&](Clock::time_point when) {
      const auto delta =
          std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
              .count();
      const int ms = delta < 0 ? 0 : static_cast<int>(delta) + 1;
      if (ms < timeout_ms) timeout_ms = ms;
    };
    if (open_loop && next_release < options.num_requests) {
      clamp_to(due_at(next_release));
    }
    if (!retries.empty()) clamp_to(retries.begin()->first);
    if (!ready.empty()) timeout_ms = 0;

    const int n_ready =
        ::epoll_wait(epoll_fd, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n_ready < 0 && errno != EINTR) break;
    for (int e = 0; e < (n_ready > 0 ? n_ready : 0); ++e) {
      const std::size_t idx = static_cast<std::size_t>(events[e].data.u64);
      if (idx >= conns.size() || conns[idx].fd < 0) continue;
      if (events[e].events & (EPOLLERR | EPOLLHUP)) {
        // Let recv observe the error/EOF so half-delivered lines settle.
        drain_readable(idx);
        if (conns[idx].fd >= 0 && conns[idx].in.empty()) kill_conn(idx);
        continue;
      }
      if (events[e].events & EPOLLIN) drain_readable(idx);
      if (conns[idx].fd >= 0 && (events[e].events & EPOLLOUT)) {
        flush_out(idx);
      }
    }

    // Tick: enforce per-request I/O budgets like the threaded Client.
    const auto tick = Clock::now();
    for (std::size_t idx = 0; idx < conns.size(); ++idx) {
      MuxConn& conn = conns[idx];
      if (conn.fd >= 0 && conn.busy && tick > conn.io_deadline) {
        kill_conn(idx);
      }
    }
  }

  for (std::size_t idx = 0; idx < conns.size(); ++idx) {
    if (conns[idx].fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conns[idx].fd, nullptr);
      conns[idx].client->Close();
      conns[idx].fd = -1;
    }
  }
  ::close(epoll_fd);

  LoadgenReport report;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.ok = ok;
  report.shed = shed;
  report.timed_out = timed_out;
  report.errors = errors;
  report.retried = retried;
  report.transport_failures = transport;
  report.determinism_mismatches = mismatches;
  report.sent = ok + shed + timed_out + errors;
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0.0;
  report.warm_ok = warm_ok;
  report.cold_ok = cold_ok;
  report.warm_shed = warm_shed;
  report.cold_shed = cold_shed;
  report.warm_p50_ms = warm_latency.Percentile(0.50) * 1e3;
  report.warm_p95_ms = warm_latency.Percentile(0.95) * 1e3;
  report.warm_p99_ms = warm_latency.Percentile(0.99) * 1e3;
  report.cold_p50_ms = cold_latency.Percentile(0.50) * 1e3;
  report.cold_p95_ms = cold_latency.Percentile(0.95) * 1e3;
  report.cold_p99_ms = cold_latency.Percentile(0.99) * 1e3;
  report.warm_corrected_p50_ms = warm_corrected.Percentile(0.50) * 1e3;
  report.warm_corrected_p95_ms = warm_corrected.Percentile(0.95) * 1e3;
  report.warm_corrected_p99_ms = warm_corrected.Percentile(0.99) * 1e3;
  report.cold_corrected_p50_ms = cold_corrected.Percentile(0.50) * 1e3;
  report.cold_corrected_p95_ms = cold_corrected.Percentile(0.95) * 1e3;
  report.cold_corrected_p99_ms = cold_corrected.Percentile(0.99) * 1e3;
  return report;
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"sent\": " << sent << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"shed\": " << shed << ",\n";
  out << "  \"timed_out\": " << timed_out << ",\n";
  out << "  \"errors\": " << errors << ",\n";
  out << "  \"retried\": " << retried << ",\n";
  out << "  \"transport_failures\": " << transport_failures << ",\n";
  out << "  \"determinism_mismatches\": " << determinism_mismatches << ",\n";
  out.precision(6);
  out << std::fixed;
  out << "  \"warm\": {\"ok\": " << warm_ok << ", \"shed\": " << warm_shed
      << ", \"p50_ms\": " << warm_p50_ms << ", \"p95_ms\": " << warm_p95_ms
      << ", \"p99_ms\": " << warm_p99_ms
      << ", \"corrected_p50_ms\": " << warm_corrected_p50_ms
      << ", \"corrected_p95_ms\": " << warm_corrected_p95_ms
      << ", \"corrected_p99_ms\": " << warm_corrected_p99_ms << "},\n";
  out << "  \"cold\": {\"ok\": " << cold_ok << ", \"shed\": " << cold_shed
      << ", \"p50_ms\": " << cold_p50_ms << ", \"p95_ms\": " << cold_p95_ms
      << ", \"p99_ms\": " << cold_p99_ms
      << ", \"corrected_p50_ms\": " << cold_corrected_p50_ms
      << ", \"corrected_p95_ms\": " << cold_corrected_p95_ms
      << ", \"corrected_p99_ms\": " << cold_corrected_p99_ms << "},\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"throughput_rps\": " << throughput_rps << "\n";
  out << "}\n";
  return out.str();
}

LoadgenReport RunLoadgen(const LoadgenOptions& options) {
  FS_CHECK_MSG(options.num_requests > 0, "num_requests must be positive");
  FS_CHECK_MSG(options.pool_size > 0, "pool_size must be positive");
  FS_CHECK_MSG(options.hot_fraction >= 0.0 && options.hot_fraction <= 1.0,
               "hot_fraction must be within [0, 1]");
  const std::size_t connections =
      options.connections > 0 ? options.connections : 1;

  const RequestPlan plan = BuildPlan(options);
  if (options.multiplex) return RunLoadgenMux(options, plan);

  // First OK response line seen per replayed frame (pool + drift
  // entries); later OKs must match. Cold scenarios are sent exactly
  // once, so there is nothing to cross-check for them.
  std::vector<std::string> expected(plan.frames.size());
  std::mutex expected_mutex;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, shed{0}, timed_out{0}, errors{0},
      retried{0}, transport{0}, mismatches{0};
  std::atomic<std::size_t> warm_ok{0}, cold_ok{0}, warm_shed{0}, cold_shed{0};
  LatencyHistogram warm_latency, cold_latency;
  LatencyHistogram warm_corrected, cold_corrected;

  const auto start = std::chrono::steady_clock::now();
  const bool open_loop = options.rate_per_sec > 0.0;
  const double interarrival =
      open_loop ? 1.0 / options.rate_per_sec : 0.0;

  std::atomic<std::size_t> connect_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      Client client;
      try {
        if (!options.unix_socket_path.empty()) {
          client.ConnectUnix(options.unix_socket_path);
        } else {
          client.ConnectTcp(options.host, options.port);
        }
      } catch (const std::exception&) {
        connect_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= options.num_requests) return;
        std::chrono::steady_clock::time_point intended{};
        if (open_loop) {
          // Global schedule: request i is released at start + i·Δ no
          // matter which connection draws it.
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) * interarrival));
          std::this_thread::sleep_until(due);
          intended = due;
        }
        const RequestPlan::Slot slot = plan.slots[i];
        const std::string& frame = plan.frames[slot.frame];

        SchedulingResponse response;
        std::string line;
        bool answered = false;
        const auto first_send = std::chrono::steady_clock::now();
        if (!open_loop) intended = first_send;
        for (std::size_t attempt = 0;; ++attempt) {
          try {
            client.SendRaw(frame);
            line = client.ReadLine();
          } catch (const std::exception&) {
            transport.fetch_add(1, std::memory_order_relaxed);
            return;  // this connection is dead; others keep draining
          }
          try {
            response = ParseResponseLine(line);
          } catch (const std::exception&) {
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (response.status == ResponseStatus::kShed &&
              options.retry_on_shed && response.retry_after_ms > 0.0 &&
              attempt < options.max_shed_retries) {
            // Honor the server's hint, then re-send the identical frame;
            // the response cache makes the re-send idempotent.
            retried.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                response.retry_after_ms * 1e-3));
            continue;
          }
          answered = true;
          break;
        }
        if (!answered) continue;  // unparsable line already counted

        switch (response.status) {
          case ResponseStatus::kOk: {
            ok.fetch_add(1, std::memory_order_relaxed);
            // Latency is first-send → final OK: a retried request pays
            // its backoff in the client-observed percentile, as it
            // should.
            const auto reply_at = std::chrono::steady_clock::now();
            const double seconds =
                std::chrono::duration<double>(reply_at - first_send).count();
            const double corrected =
                std::chrono::duration<double>(reply_at - intended).count();
            if (slot.cold) {
              cold_ok.fetch_add(1, std::memory_order_relaxed);
              cold_latency.Record(seconds);
              cold_corrected.Record(corrected);
            } else {
              warm_ok.fetch_add(1, std::memory_order_relaxed);
              warm_latency.Record(seconds);
              warm_corrected.Record(corrected);
              std::lock_guard<std::mutex> lock(expected_mutex);
              std::string& first = expected[slot.frame];
              if (first.empty()) {
                first = line;
              } else if (first != line) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
          case ResponseStatus::kShed:
            shed.fetch_add(1, std::memory_order_relaxed);
            (slot.cold ? cold_shed : warm_shed)
                .fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kTimeout:
            timed_out.fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kError:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if (connect_failures.load() == connections) {
    throw util::TransientError("loadgen could not connect to the endpoint");
  }

  LoadgenReport report;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.ok = ok.load();
  report.shed = shed.load();
  report.timed_out = timed_out.load();
  report.errors = errors.load();
  report.retried = retried.load();
  report.transport_failures = transport.load();
  report.determinism_mismatches = mismatches.load();
  report.sent = report.ok + report.shed + report.timed_out + report.errors;
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0.0;
  report.warm_ok = warm_ok.load();
  report.cold_ok = cold_ok.load();
  report.warm_shed = warm_shed.load();
  report.cold_shed = cold_shed.load();
  report.warm_p50_ms = warm_latency.Percentile(0.50) * 1e3;
  report.warm_p95_ms = warm_latency.Percentile(0.95) * 1e3;
  report.warm_p99_ms = warm_latency.Percentile(0.99) * 1e3;
  report.cold_p50_ms = cold_latency.Percentile(0.50) * 1e3;
  report.cold_p95_ms = cold_latency.Percentile(0.95) * 1e3;
  report.cold_p99_ms = cold_latency.Percentile(0.99) * 1e3;
  report.warm_corrected_p50_ms = warm_corrected.Percentile(0.50) * 1e3;
  report.warm_corrected_p95_ms = warm_corrected.Percentile(0.95) * 1e3;
  report.warm_corrected_p99_ms = warm_corrected.Percentile(0.99) * 1e3;
  report.cold_corrected_p50_ms = cold_corrected.Percentile(0.50) * 1e3;
  report.cold_corrected_p95_ms = cold_corrected.Percentile(0.95) * 1e3;
  report.cold_corrected_p99_ms = cold_corrected.Percentile(0.99) * 1e3;
  return report;
}

}  // namespace fadesched::service
