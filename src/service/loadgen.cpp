#include "service/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/request.hpp"
#include "testing/fuzzer.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fadesched::service {

namespace {

std::vector<fadesched::testing::ScenarioCase> BuildPool(
    const LoadgenOptions& options) {
  fadesched::testing::FuzzerOptions fuzz;
  fuzz.min_links = options.links;
  fuzz.max_links = options.links;
  // Keep the pool on the paper's parameter defaults and uniform rates —
  // the loadgen measures the service, not scheduler edge cases.
  fuzz.extreme_params = false;
  fuzz.weighted_rates = false;
  fuzz.with_noise = false;
  fadesched::testing::ScenarioFuzzer fuzzer(options.seed, fuzz);
  std::vector<fadesched::testing::ScenarioCase> pool;
  pool.reserve(options.pool_size);
  for (std::size_t i = 0; i < options.pool_size; ++i) {
    pool.push_back(fuzzer.Case(i));
  }
  return pool;
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"sent\": " << sent << ",\n";
  out << "  \"ok\": " << ok << ",\n";
  out << "  \"shed\": " << shed << ",\n";
  out << "  \"timed_out\": " << timed_out << ",\n";
  out << "  \"errors\": " << errors << ",\n";
  out << "  \"transport_failures\": " << transport_failures << ",\n";
  out << "  \"determinism_mismatches\": " << determinism_mismatches << ",\n";
  out.precision(6);
  out << std::fixed;
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"throughput_rps\": " << throughput_rps << "\n";
  out << "}\n";
  return out.str();
}

LoadgenReport RunLoadgen(const LoadgenOptions& options) {
  FS_CHECK_MSG(options.num_requests > 0, "num_requests must be positive");
  FS_CHECK_MSG(options.pool_size > 0, "pool_size must be positive");
  const std::size_t connections =
      options.connections > 0 ? options.connections : 1;

  const std::vector<fadesched::testing::ScenarioCase> pool =
      BuildPool(options);

  // Pre-serialize every frame once: the loadgen should spend its time on
  // the wire, not re-formatting %.17g doubles per request.
  std::vector<std::string> frames(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    SchedulingRequest request;
    request.scenario = pool[i];
    request.scheduler = options.scheduler;
    request.deadline_seconds = options.deadline_seconds;
    request.id = "r" + std::to_string(i);
    frames[i] = FormatRequestFrame(request);
  }

  // First OK response line seen per pool entry; later OKs must match.
  std::vector<std::string> expected(pool.size());
  std::mutex expected_mutex;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, shed{0}, timed_out{0}, errors{0},
      transport{0}, mismatches{0};

  const auto start = std::chrono::steady_clock::now();
  const bool open_loop = options.rate_per_sec > 0.0;
  const double interarrival =
      open_loop ? 1.0 / options.rate_per_sec : 0.0;

  std::atomic<std::size_t> connect_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      Client client;
      try {
        if (!options.unix_socket_path.empty()) {
          client.ConnectUnix(options.unix_socket_path);
        } else {
          client.ConnectTcp(options.host, options.port);
        }
      } catch (const std::exception&) {
        connect_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= options.num_requests) return;
        if (open_loop) {
          // Global schedule: request i is released at start + i·Δ no
          // matter which connection draws it.
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) * interarrival));
          std::this_thread::sleep_until(due);
        }
        const std::size_t pool_index = i % pool.size();
        std::string line;
        try {
          client.SendRaw(frames[pool_index]);
          line = client.ReadLine();
        } catch (const std::exception&) {
          transport.fetch_add(1, std::memory_order_relaxed);
          return;  // this connection is dead; others keep draining
        }
        SchedulingResponse response;
        try {
          response = ParseResponseLine(line);
        } catch (const std::exception&) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        switch (response.status) {
          case ResponseStatus::kOk: {
            ok.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(expected_mutex);
            std::string& first = expected[pool_index];
            if (first.empty()) {
              first = line;
            } else if (first != line) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case ResponseStatus::kShed:
            shed.fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kTimeout:
            timed_out.fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseStatus::kError:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  if (connect_failures.load() == connections) {
    throw util::TransientError("loadgen could not connect to the endpoint");
  }

  LoadgenReport report;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.ok = ok.load();
  report.shed = shed.load();
  report.timed_out = timed_out.load();
  report.errors = errors.load();
  report.transport_failures = transport.load();
  report.determinism_mismatches = mismatches.load();
  report.sent = report.ok + report.shed + report.timed_out + report.errors;
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0.0;
  return report;
}

}  // namespace fadesched::service
