#include "service/service.hpp"

#include <exception>
#include <string>
#include <utility>

#include "sched/registry.hpp"
#include "util/error.hpp"

namespace fadesched::service {

SchedulingService::SchedulingService(ServiceOptions options)
    : cache_(std::make_unique<ScenarioCache>(options.cache, &metrics_)),
      batcher_(std::make_unique<RequestBatcher>(
          [this](const SchedulingRequest& request) {
            return HandleNow(request);
          },
          options.batcher, &metrics_)) {}

SchedulingResponse SchedulingService::HandleNow(
    const SchedulingRequest& request) {
  SchedulingResponse response;
  response.id = request.id;
  try {
    if (!sched::IsRegisteredScheduler(request.scheduler)) {
      response.status = ResponseStatus::kError;
      response.error_kind = util::ErrorKind::kFatal;
      response.message = "unknown scheduler '" + request.scheduler + "'";
      return response;
    }
    const Fingerprint fp = FingerprintRequest(request);

    if (cache_->LookupResponse(fp, &response)) {
      response.id = request.id;
      response.cache_hit = true;
      return response;
    }

    const ScenarioCache::ScenarioPtr entry =
        cache_->ObtainScenario(fp, request);
    channel::EngineOptions engine_options = entry->engine->Options();
    // Aliasing: the engine pointer shares the entry's lifetime, so an
    // eviction mid-schedule cannot free state the scheduler is reading.
    engine_options.shared = std::shared_ptr<const channel::InterferenceEngine>(
        entry, &*entry->engine);
    const sched::SchedulerPtr scheduler =
        sched::MakeScheduler(fp.scheduler, engine_options);

    const sched::ScheduleResult result =
        scheduler->Schedule(entry->links, entry->params);
    response.status = ResponseStatus::kOk;
    response.schedule = result.schedule;
    response.claimed_rate = result.claimed_rate;
    response.cache_hit = false;
    cache_->StoreResponse(fp, response);
    return response;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    response.status = ResponseStatus::kError;
    response.error_kind = util::ClassifyException(error);
    response.schedule.clear();
    response.claimed_rate = 0.0;
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      response.message = e.what();
    } catch (...) {
      response.message = "unknown failure";
    }
    return response;
  }
}

std::future<SchedulingResponse> SchedulingService::Submit(
    SchedulingRequest request) {
  return batcher_->Submit(std::move(request));
}

SchedulingResponse SchedulingService::Execute(SchedulingRequest request) {
  return batcher_->Execute(std::move(request));
}

void SchedulingService::Drain() { batcher_->Drain(); }

}  // namespace fadesched::service
