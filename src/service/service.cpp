#include "service/service.hpp"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "sched/registry.hpp"
#include "util/error.hpp"

namespace fadesched::service {

SchedulingService::SchedulingService(ServiceOptions options)
    : cache_(std::make_unique<ScenarioCache>(options.cache, &metrics_)),
      batcher_(std::make_unique<RequestBatcher>(
          [this](const SchedulingRequest& request) {
            return HandleNow(request);
          },
          options.batcher, &metrics_)) {}

SchedulingResponse SchedulingService::HandleNow(
    const SchedulingRequest& request) {
  SchedulingResponse response;
  response.id = request.id;
  try {
    if (!sched::IsRegisteredScheduler(request.scheduler)) {
      response.status = ResponseStatus::kError;
      response.error_kind = util::ErrorKind::kFatal;
      response.message = "unknown scheduler '" + request.scheduler + "'";
      return response;
    }
    const Fingerprint fp = FingerprintRequest(request);

    if (cache_->LookupResponse(fp, &response)) {
      response.id = request.id;
      response.cache_hit = true;
      return response;
    }

    // Brownout: while the overload controller says the queue delay is
    // critical, degrade this miss to a cheap build — the SIMD precision
    // ladder for matrix backends (keeps matrix-speed queries), the
    // tables-only build otherwise. Schedules are identical and factors
    // stay within the cross-backend ULP contract; hits are untouched.
    const bool degrade_build =
        batcher_ != nullptr && batcher_->Overload().Brownout();
    bool scenario_hit = false;
    const ScenarioCache::ScenarioPtr entry =
        cache_->ObtainScenario(fp, request, &scenario_hit, degrade_build);
    if (!scenario_hit && degrade_build) {
      metrics_.brownout_builds.fetch_add(1, std::memory_order_relaxed);
    }
    channel::EngineOptions engine_options = entry->engine->Options();
    // Aliasing: the engine pointer shares the entry's lifetime, so an
    // eviction mid-schedule cannot free state the scheduler is reading.
    engine_options.shared = std::shared_ptr<const channel::InterferenceEngine>(
        entry, &*entry->engine);
    const sched::SchedulerPtr scheduler =
        sched::MakeScheduler(fp.scheduler, engine_options);

    const sched::ScheduleResult result =
        scheduler->Schedule(entry->links, entry->params);
    response.status = ResponseStatus::kOk;
    response.schedule = result.schedule;
    response.claimed_rate = result.claimed_rate;
    response.cache_hit = false;
    cache_->StoreResponse(fp, response);
    return response;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    response.status = ResponseStatus::kError;
    response.error_kind = util::ClassifyException(error);
    response.schedule.clear();
    response.claimed_rate = 0.0;
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      response.message = e.what();
    } catch (...) {
      response.message = "unknown failure";
    }
    return response;
  }
}

std::future<SchedulingResponse> SchedulingService::Submit(
    SchedulingRequest request) {
  // Fingerprinting costs a canonical serialization (~µs), paid again
  // inside HandleNow on admitted requests — accepted: admission cannot
  // reuse it without threading cache state through the request, and
  // sheds/fast-path hits (the cases this exists for) never reach
  // HandleNow at all. A request whose fingerprint throws is submitted
  // kWarm so the handler, not the shedder, reports the real error.
  try {
    const auto submitted_at = std::chrono::steady_clock::now();
    const Fingerprint fp = FingerprintRequest(request);

    // Fast path: a resident response is a pure lookup, so it is served
    // inline on the caller thread. Routing it through the worker queue
    // would price every cache hit at the queue's current delay — the
    // exact coupling of warm latency to cold backlog that the two-tier
    // design exists to break. Under drain we fall through so the batcher
    // issues the canonical typed rejection and the admission ledger
    // stays consistent.
    SchedulingResponse response;
    if (!batcher_->Draining() &&
        cache_->LookupResponse(fp, &response, /*count_miss=*/false)) {
      response.id = request.id;
      response.cache_hit = true;
      metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
      metrics_.admitted.fetch_add(1, std::memory_order_relaxed);
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        submitted_at)
              .count();
      metrics_.service_latency.Record(seconds);
      metrics_.total_latency.Record(seconds);
      metrics_.warm_total_latency.Record(seconds);
      std::promise<SchedulingResponse> ready;
      ready.set_value(std::move(response));
      return ready.get_future();
    }

    const RequestClass cls =
        cache_->IsWarm(fp) ? RequestClass::kWarm : RequestClass::kCold;
    return batcher_->Submit(std::move(request), cls);
  } catch (...) {
    return batcher_->Submit(std::move(request), RequestClass::kWarm);
  }
}

SchedulingResponse SchedulingService::Execute(SchedulingRequest request) {
  return Submit(std::move(request)).get();
}

void SchedulingService::Drain() { batcher_->Drain(); }

}  // namespace fadesched::service
