#include "service/metrics.hpp"

#include <cmath>
#include <sstream>

#include "util/atomic_io.hpp"

namespace fadesched::service {

LatencyHistogram::LatencyHistogram() {
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BinIndex(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;  // includes NaN and sub-µs latencies
  const int bin = static_cast<int>(std::log2(micros) *
                                   static_cast<double>(kBinsPerOctave));
  return bin >= kNumBins ? kNumBins - 1 : bin;
}

double LatencyHistogram::BinMidSeconds(int bin) {
  // Geometric midpoint of [2^(bin/k), 2^((bin+1)/k)] µs.
  const double exponent =
      (static_cast<double>(bin) + 0.5) / static_cast<double>(kBinsPerOctave);
  return std::exp2(exponent) * 1e-6;
}

void LatencyHistogram::Record(double seconds) {
  bins_[static_cast<std::size_t>(BinIndex(seconds))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bin : bins_) total += bin.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::Percentile(double p) const {
  std::array<std::uint64_t, kNumBins> snapshot;
  std::uint64_t total = 0;
  for (int b = 0; b < kNumBins; ++b) {
    snapshot[static_cast<std::size_t>(b)] =
        bins_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<std::size_t>(b)];
  }
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the p-quantile sample, 1-based, ceil semantics.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBins; ++b) {
    seen += snapshot[static_cast<std::size_t>(b)];
    if (seen >= rank) return BinMidSeconds(b);
  }
  return BinMidSeconds(kNumBins - 1);
}

std::string LatencyHistogram::ToJson() const {
  std::ostringstream out;
  out.precision(4);
  out << std::fixed;
  out << "{\"count\": " << Count() << ", \"p50_ms\": "
      << Percentile(0.50) * 1e3 << ", \"p95_ms\": " << Percentile(0.95) * 1e3
      << ", \"p99_ms\": " << Percentile(0.99) * 1e3 << "}";
  return out.str();
}

std::string ServiceMetrics::ToJson() const {
  const auto get = [](const std::atomic<std::uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  std::ostringstream out;
  out << "{\n";
  out << "  \"submitted\": " << get(submitted) << ",\n";
  out << "  \"admitted\": " << get(admitted) << ",\n";
  out << "  \"shed\": " << get(shed) << ",\n";
  out << "  \"shed_overload\": " << get(shed_overload) << ",\n";
  out << "  \"shed_cold\": " << get(shed_cold) << ",\n";
  out << "  \"rejected_draining\": " << get(rejected_draining) << ",\n";
  out << "  \"timed_out\": " << get(timed_out) << ",\n";
  out << "  \"completed\": " << get(completed) << ",\n";
  out << "  \"failed\": " << get(failed) << ",\n";
  out << "  \"cache\": {\n";
  out << "    \"response_hits\": " << get(response_hits) << ",\n";
  out << "    \"response_misses\": " << get(response_misses) << ",\n";
  out << "    \"scenario_hits\": " << get(scenario_hits) << ",\n";
  out << "    \"scenario_misses\": " << get(scenario_misses) << ",\n";
  out << "    \"evictions\": " << get(cache_evictions) << ",\n";
  out << "    \"collisions\": " << get(cache_collisions) << "\n";
  out << "  },\n";
  out << "  \"guards\": {\n";
  out << "    \"protocol_errors\": " << get(protocol_errors) << ",\n";
  out << "    \"oversized_frames\": " << get(oversized_frames) << ",\n";
  out << "    \"evicted_slow\": " << get(evicted_slow) << ",\n";
  out << "    \"checksum_failures\": " << get(checksum_failures) << "\n";
  out << "  },\n";
  out << "  \"chaos\": {\n";
  out << "    \"injected\": " << get(chaos_injected) << ",\n";
  out << "    \"recovered\": " << get(chaos_recovered) << "\n";
  out << "  },\n";
  out << "  \"overload\": {\n";
  out << "    \"queue_depth\": " << get(queue_depth) << ",\n";
  out << "    \"queue_delay_ewma_us\": " << get(queue_delay_ewma_us) << ",\n";
  out << "    \"brownout_active\": " << get(brownout_active) << ",\n";
  out << "    \"brownout_entries\": " << get(brownout_entries) << ",\n";
  out << "    \"brownout_builds\": " << get(brownout_builds) << ",\n";
  out << "    \"worker_restarts\": " << get(worker_restarts) << "\n";
  out << "  },\n";
  out << "  \"queue_latency\": " << queue_latency.ToJson() << ",\n";
  out << "  \"service_latency\": " << service_latency.ToJson() << ",\n";
  out << "  \"total_latency\": " << total_latency.ToJson() << ",\n";
  out << "  \"warm_total_latency\": " << warm_total_latency.ToJson() << ",\n";
  out << "  \"cold_total_latency\": " << cold_total_latency.ToJson() << "\n";
  out << "}\n";
  return out.str();
}

void ServiceMetrics::DumpJson(const std::string& path) const {
  util::AtomicWriteFile(path, ToJson());
}

}  // namespace fadesched::service
