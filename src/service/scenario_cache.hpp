// Bounded-memory LRU cache of scheduling state, keyed by the canonical
// content fingerprint.
//
// Two levels share one byte budget and one recency list:
//
//   * scenario entries — the parsed LinkSet plus a built
//     channel::InterferenceEngine (the service's configured backend), so
//     a repeated or perturbed-then-repeated topology skips the O(N)
//     table / O(N²) matrix rebuild. Entries are handed out as
//     shared_ptr<const ...>, so eviction can never invalidate an engine a
//     worker is scheduling against.
//   * response entries — the completed SchedulingResponse for
//     (scenario, scheduler), so an identical repeat request skips
//     scheduling entirely.
//
// Hash collisions are rejected, not served: every entry stores the
// canonical bytes it was keyed by and a lookup compares them before
// declaring a hit (a 64-bit content hash makes collisions vanishingly
// rare; comparing makes serving a wrong schedule impossible).
//
// All operations are thread-safe behind one mutex; engine builds happen
// OUTSIDE the lock so a large miss cannot stall concurrent hits. Two
// threads missing on the same key may both build — the first insert wins,
// which is harmless because engine construction is deterministic.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "channel/batch_interference.hpp"
#include "channel/params.hpp"
#include "net/link_set.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"

namespace fadesched::service {

struct CacheOptions {
  /// Total budget across scenario and response entries. Inserting an
  /// over-budget entry evicts from the LRU tail first; a single entry
  /// larger than the whole budget is still admitted (and evicted as soon
  /// as anything newer lands) so a giant scenario cannot wedge the
  /// service.
  std::size_t capacity_bytes = 256ull << 20;

  /// Backend configuration for memoized engines. `shared` must be empty;
  /// the cache is the thing that fills it in.
  channel::EngineOptions engine;
};

class ScenarioCache {
 public:
  /// Memoized per-scenario state. Immutable after construction; the
  /// engine's internal LinkSet pointer targets `links`, which lives and
  /// dies with the entry.
  struct Scenario {
    net::LinkSet links;
    channel::ChannelParams params;
    std::string canonical_scenario;
    std::optional<channel::InterferenceEngine> engine;
    std::size_t cost_bytes = 0;
  };
  using ScenarioPtr = std::shared_ptr<const Scenario>;

  /// `metrics` may be null (the cache then keeps no counters).
  explicit ScenarioCache(CacheOptions options = {},
                         ServiceMetrics* metrics = nullptr);

  /// Returns the memoized state for `fp`, building (links copied out of
  /// `request.scenario`, engine constructed with the configured backend)
  /// and inserting on miss. Sets *hit accordingly when non-null.
  /// `degrade_build` cheapens the engine build for this miss only (the
  /// brownout path): a kMatrix backend keeps its matrix but builds it
  /// through the SIMD precision ladder; any other backend drops to the
  /// kTables tables-only build. Safe because the ladder stays inside the
  /// backends' accuracy contract and schedules are identical, so
  /// whichever entry lands first serves everyone correctly.
  ScenarioPtr ObtainScenario(const Fingerprint& fp,
                             const SchedulingRequest& request,
                             bool* hit = nullptr, bool degrade_build = false);

  /// True when serving `fp` would be cheap: its response or its built
  /// scenario is resident. A pure peek — no LRU touch, no counters — so
  /// admission-time classification cannot perturb eviction order or the
  /// hit-rate metrics.
  [[nodiscard]] bool IsWarm(const Fingerprint& fp) const;

  /// Response memoization. Lookup copies the stored response into *out
  /// (id/cache_hit fields left for the caller to stamp). Store ignores
  /// non-kOk responses — admission failures must not be replayed.
  /// `count_miss=false` is for pre-handler probes (the Submit fast path):
  /// a probe that misses hands the request to HandleNow, whose own lookup
  /// is the authoritative miss — counting both would double every cold
  /// request in the warm-hit-rate denominator.
  bool LookupResponse(const Fingerprint& fp, SchedulingResponse* out,
                      bool count_miss = true);
  void StoreResponse(const Fingerprint& fp, const SchedulingResponse& response);

  [[nodiscard]] std::size_t CurrentBytes() const;
  [[nodiscard]] std::size_t NumEntries() const;

  /// Drops everything (tests; administrative reset).
  void Clear();

  /// Cost model used for the byte budget, exposed for tests.
  static std::size_t EstimateScenarioBytes(const Scenario& scenario,
                                           const channel::EngineOptions& engine);

 private:
  // One LRU node covers either level; exactly one of scenario/response is
  // set. `guard` is the exact-match key (canonical bytes, plus the
  // scheduler name for responses).
  struct Node {
    std::uint64_t hash = 0;
    std::string guard;
    ScenarioPtr scenario;
    std::optional<SchedulingResponse> response;
    std::size_t cost_bytes = 0;
  };
  using LruList = std::list<Node>;

  /// Moves the node to the front (most recent). Caller holds the mutex.
  void TouchLocked(LruList::iterator it);
  /// Evicts LRU tail nodes until the budget holds. Caller holds the mutex.
  void EvictLocked();
  LruList::iterator FindLocked(std::uint64_t hash, const std::string& guard);

  void Bump(std::atomic<std::uint64_t> ServiceMetrics::* counter) const;

  CacheOptions options_;
  ServiceMetrics* metrics_;

  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_multimap<std::uint64_t, LruList::iterator> index_;
  std::size_t current_bytes_ = 0;
};

}  // namespace fadesched::service
