// Line-delimited wire protocol for the scheduling service. The payload is
// the `.scenario` corpus format itself, so any checked-in fuzz reproducer
// is directly servable and any served instance can be saved as a corpus
// file.
//
// Request frame (client → server):
//
//   REQUEST id=<token> scheduler=<name> [deadline=<seconds>] check=<16hex>
//   # fadesched scenario v1
//   ...                                  (testing::FormatScenario output)
//   END
//
// Response (server → client), exactly one line per request:
//
//   OK sum=<16hex> id=<token> rate=<%.17g> schedule=<i,j,k|->
//   ERR sum=<16hex> id=<token> status=<shed|timeout|error> kind=<..> msg=<..>
//
// Framing rules: the header names the request; the scenario payload runs
// until a line that is exactly `END` (no scenario line can be `END` — the
// format emits comments, `key = value` pairs, `links:` and CSV rows).
// Parse errors name the 1-based line within the frame; scenario-payload
// errors keep ParseScenario's own line/row numbers, offset-free, prefixed
// with the frame position. Responses are single-line by construction
// (messages have newlines flattened), which is what makes "byte-identical
// response" checkable with a line compare.
//
// Integrity (the chaos layer's corruption defense): `check=` is FNV-1a
// over the whole frame body with the check token itself spliced out
// (header tokens, newline, scenario payload — so a flipped bit in id=,
// scheduler=, deadline=, or any payload byte all mismatch); `sum=` is
// FNV-1a over the response line with its own sum token removed. `check=`
// is REQUIRED on request frames: a missing token on an otherwise
// well-formed header is itself answered as kTransient corruption,
// because a single flipped separator byte can merge the check token into
// its neighbour — optional integrity would be disabled exactly when it
// is needed (found by the chaos soak). `sum=` stays optional on parse
// for hand-written test lines. A mismatch of either throws a kTransient
// error (wire corruption is retryable, not a caller bug). Because a
// flipped bit can also yield a payload that still parses, the request
// checksum is verified *after* a successful scenario parse: parse errors
// keep their precise row diagnostics, and the checksum closes the
// corrupted-but-parseable hole.
// Besides scheduling frames, a connection may send the bare line `STATS`
// (no payload, no END) between frames; the server answers with one
// `STATS sum=<16hex> key=value ...` line — a consistent-enough snapshot
// of the worker's ServiceMetrics counters for monitoring and the
// snapshot-consistency tests.
#pragma once

#include <cstdint>
#include <string>

#include "service/metrics.hpp"
#include "service/request.hpp"

namespace fadesched::service {

/// Terminator line of a request frame.
inline constexpr const char* kFrameEnd = "END";

/// Single-line metrics query, valid only between frames.
inline constexpr const char* kStatsVerb = "STATS";

/// Point-in-time view of a worker's ServiceMetrics, as served by the
/// STATS verb. Counters are monotone; the last three are gauges.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;           ///< hard queue-full sheds
  std::uint64_t shed_overload = 0;  ///< adaptive controller sheds
  std::uint64_t shed_cold = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t brownout_entries = 0;
  std::uint64_t brownout_builds = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t response_hits = 0;    ///< whole-response cache hits
  std::uint64_t response_misses = 0;
  std::uint64_t scenario_hits = 0;    ///< warm-engine cache hits
  std::uint64_t scenario_misses = 0;
  std::uint64_t queue_depth = 0;           ///< gauge
  std::uint64_t queue_delay_ewma_us = 0;   ///< gauge
  std::uint64_t brownout_active = 0;       ///< gauge (0/1)

  /// Total sheds of any flavour (the "shed" term of the admission
  /// identity: submitted == admitted + Sheds() + rejected_draining).
  [[nodiscard]] std::uint64_t Sheds() const { return shed + shed_overload; }

  /// Fraction of completed lookups served from the response cache — the
  /// warm-locality figure the sharded tier's affinity routing maximizes.
  /// 0 when nothing has been looked up yet.
  [[nodiscard]] double WarmHitRate() const {
    const std::uint64_t total = response_hits + response_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(response_hits) /
                            static_cast<double>(total);
  }

  /// The counters as a JSON object — one key per STATS wire field plus
  /// the derived warm_hit_rate. What `fadesched_cli stats` prints, and
  /// what CI parses for its warm-hit-rate floor assertion.
  [[nodiscard]] std::string ToJson() const;
};

/// Accumulates `from` into `into`, counter by counter. Used by the shard
/// router's STATS fan-out: per-shard snapshots sum into one tier-wide
/// line. Gauges sum too (queue_depth is additive across shards;
/// queue_delay_ewma_us and brownout_active become tier totals — callers
/// wanting a mean divide by the shard count).
void AccumulateStats(StatsSnapshot& into, const StatsSnapshot& from);

/// Relaxed-load snapshot of the counters this protocol exports.
StatsSnapshot CaptureStats(const ServiceMetrics& metrics);

/// Formats/parses the STATS response line (sum=-protected like every
/// other response). Parse throws util::HarnessError: kTransient on a
/// checksum mismatch, kFatal on structural errors.
std::string FormatStatsLine(const StatsSnapshot& snapshot);
StatsSnapshot ParseStatsLine(const std::string& line);

/// Serializes a request as a full frame (header + scenario + END), ready
/// to write to a socket. Requires a non-empty id without spaces.
std::string FormatRequestFrame(const SchedulingRequest& request);

/// Parses a complete frame (header line through the line before END).
/// Throws util::HarnessError naming the offending 1-based frame line on
/// malformed input: kFatal for structural errors (a caller bug),
/// kTransient for a missing or mismatching check= (wire corruption).
SchedulingRequest ParseRequestFrame(const std::string& frame);

/// Formats the single response line (no trailing newline). Deliberately
/// omits cache_hit so hit and miss responses are byte-identical.
std::string FormatResponseLine(const SchedulingResponse& response);

/// Parses a response line produced by FormatResponseLine. Throws
/// util::HarnessError (kFatal) on malformed input.
SchedulingResponse ParseResponseLine(const std::string& line);

/// Incremental frame assembler for a line-oriented transport: feed lines
/// as they arrive; Done() flips when the END terminator lands. Reuse via
/// Reset(). A frame abandoned mid-way (connection closed before END) is
/// reported by Truncated(), which names how many lines arrived.
class FrameAssembler {
 public:
  /// Consumes one line (without its newline). Returns true when this line
  /// completed the frame.
  bool Feed(const std::string& line);

  [[nodiscard]] bool Done() const { return done_; }
  [[nodiscard]] bool Empty() const { return lines_ == 0; }

  /// Bytes accumulated so far (the server's max-frame guard sums this
  /// with its unscanned buffer) and lines fed (named in guard errors).
  [[nodiscard]] std::size_t ByteSize() const { return frame_.size(); }
  [[nodiscard]] std::size_t Lines() const { return lines_; }

  /// Parses the assembled frame (requires Done()).
  [[nodiscard]] SchedulingRequest Parse() const;

  /// Raw frame bytes accumulated so far (each fed line + '\n'). The shard
  /// router forwards this verbatim to a worker instead of re-serializing,
  /// so the worker sees — and checksums — exactly what the client sent.
  [[nodiscard]] const std::string& Body() const { return frame_; }

  /// Error message for a frame cut off before END ("truncated request
  /// frame after N line(s) — missing END terminator").
  [[nodiscard]] std::string Truncated() const;

  void Reset();

 private:
  std::string frame_;
  std::size_t lines_ = 0;
  bool done_ = false;
};

}  // namespace fadesched::service
